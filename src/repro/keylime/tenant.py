"""The Keylime tenant: the operator's management interface.

The tenant is Keylime's command-line tool; here it is a thin façade
that performs the multi-step onboarding (register at the registrar,
install a policy at the verifier, start polling) and the operator
actions the experiments need (push an updated policy, resolve a failed
attestation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.keylime.agent import KeylimeAgent
from repro.keylime.policy import RuntimePolicy
from repro.keylime.registrar import KeylimeRegistrar
from repro.keylime.verifier import AgentState, KeylimeVerifier


@dataclass(frozen=True)
class OnboardReport:
    """Summary of one agent onboarding."""

    agent_id: str
    policy_lines: int


class KeylimeTenant:
    """Operator-facing orchestration over registrar + verifier."""

    def __init__(self, registrar: KeylimeRegistrar, verifier: KeylimeVerifier) -> None:
        self.registrar = registrar
        self.verifier = verifier

    def onboard(
        self,
        agent: KeylimeAgent,
        policy: RuntimePolicy,
        poll_interval: float = 2.0,
        start_polling: bool = True,
    ) -> OnboardReport:
        """Register the agent and start continuous attestation."""
        self.registrar.register(agent)
        self.verifier.add_agent(agent, policy)
        if start_polling:
            self.verifier.start_polling(agent.agent_id, poll_interval)
        return OnboardReport(agent_id=agent.agent_id, policy_lines=policy.line_count())

    def push_policy(self, agent_id: str, policy: RuntimePolicy) -> None:
        """Install an updated runtime policy for the agent."""
        self.verifier.update_policy(agent_id, policy)

    def resolve_failure(self, agent_id: str, updated_policy: RuntimePolicy | None = None) -> None:
        """Operator workflow for a failed agent.

        Optionally installs a corrected policy, then restarts the
        attestation from the top of the log.  Without a corrected
        policy the restart will halt on the same entry again (P2).
        """
        if updated_policy is not None:
            self.verifier.update_policy(agent_id, updated_policy)
        self.verifier.restart_attestation(agent_id)

    def status(self, agent_id: str) -> AgentState:
        """Verifier-side state for the agent."""
        return self.verifier.state_of(agent_id)
