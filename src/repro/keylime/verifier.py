"""The Keylime verifier: the attestation loop.

Each poll of an agent performs the four steps of Fig 1:

1. **Challenge** -- a fresh random nonce; the agent returns a TPM quote
   over PCR 10 bound to that nonce plus the new IMA log entries.
2. **Quote validation** -- signature by the registrar-validated AK,
   nonce binding, PCR digest consistency.
3. **Log replay** -- the new entries' template hashes are recomputed
   and folded into the running PCR-10 replay; a mismatch with the
   quoted value means the log was tampered with in flight or at rest.
4. **Policy evaluation** -- each new entry is checked against the
   runtime policy (excludes, then allowlist).

The steps themselves live in :mod:`repro.keylime.pipeline` as
composable stage objects; this module is the thin orchestrator around
them: agent lifecycle, polling schedules, failure side-effects
(revocation fan-out, audit append, event emission) and telemetry
roll-ups.

Failure behaviour is the paper's **P2**: the stock verifier processes
entries *sequentially and stops at the first policy failure*, marks the
agent failed, and **stops polling** -- leaving an incomplete attestation
log.  Restarting attestation replays the log from scratch, hits the same
unresolved failure, and halts again.  The ``continue_on_failure`` switch
implements the proposed **M2** fix: every entry is always evaluated and
polling never stops, so later malicious entries still surface.  Both are
pipeline configuration (:class:`repro.keylime.pipeline
.VerificationPipeline`), not verifier branches.

Policy verdicts are memoised through a
:class:`repro.keylime.policy.VerdictCache` (enabled by default, and
shareable across every agent of a fleet); ``update_policy`` bumps the
policy's generation stamp so a cached verdict can never outlive the
policy state that produced it.
"""

from __future__ import annotations

from time import perf_counter

from repro.common.clock import Scheduler
from repro.common.errors import IntegrityError, NotFoundError, StateError
from repro.common.events import EventLog
from repro.common.hexutil import zero_digest
from repro.common.rng import SeededRng
from repro.keylime.agent import KeylimeAgent
from repro.keylime.audit import AuditLog
from repro.keylime.measuredboot import MeasuredBootPolicy
from repro.keylime.pipeline import (
    POLLABLE_STATES,
    AgentSlot,
    AgentState,
    AttestationFailure,
    AttestationResult,
    FailureKind,
    RoundContext,
    VerificationPipeline,
    push_stages,
)
from repro.keylime.policy import RuntimePolicy, VerdictCache
from repro.keylime.registrar import KeylimeRegistrar
from repro.keylime.retrypolicy import RetryPolicy
from repro.keylime.revocation import RevocationEvent, RevocationNotifier
from repro.keylime.transport import (
    PushAgentClient,
    PushSession,
    PushSessionState,
    PushVerdict,
    negotiation_from_json,
    negotiation_reply_to_json,
    submission_from_json,
    verdict_to_json,
)
from repro.obs import runtime as obs
from repro.obs.tracing import exemplar_of
from repro.tpm.pcr import IMA_PCR_INDEX

__all__ = [
    "AgentSlot",
    "AgentState",
    "AttestationFailure",
    "AttestationResult",
    "FailureKind",
    "KeylimeVerifier",
    "POLLABLE_STATES",
    "RetryPolicy",
]

#: Default freshness window of a push session: a nonce minted at
#: negotiation must be answered within this many simulated seconds.
DEFAULT_PUSH_SESSION_TTL = 30.0

#: How many terminal push sessions the verifier remembers for
#: replay-of-session rejection before the oldest are forgotten.
PUSH_SESSION_RETENTION = 4096

#: Backwards-compatible alias; the slot dataclass moved to the pipeline
#: module alongside the stages that mutate it.
_AgentSlot = AgentSlot


class KeylimeVerifier:
    """The trusted verifier service."""

    def __init__(
        self,
        registrar: KeylimeRegistrar,
        scheduler: Scheduler,
        rng: SeededRng,
        events: EventLog | None = None,
        continue_on_failure: bool = False,
        notifier: RevocationNotifier | None = None,
        audit: AuditLog | None = None,
        pipeline: VerificationPipeline | None = None,
        verdict_cache: VerdictCache | None = None,
        cache_verdicts: bool = True,
        retry_policy: RetryPolicy | None = None,
        quarantine_after: int = 3,
        push_session_ttl: float = DEFAULT_PUSH_SESSION_TTL,
    ) -> None:
        """Build the verifier.

        *pipeline* defaults to the stock Fig 1 stage sequence.
        *verdict_cache* installs a shared cache (a fleet passes one
        cache for all of its nodes); with ``None`` the verifier creates
        its own, and ``cache_verdicts=False`` disables memoisation
        entirely (every entry is evaluated from scratch).

        *retry_policy* enables the transient-fault retry path: wire
        errors are retried with backoff and an exhausted budget routes
        the node into SUSPECT instead of halting its polling.  A node
        entering its *quarantine_after*-th suspect window escalates to
        QUARANTINED (polling stops, loudly).  With ``retry_policy=None``
        the wire gets exactly one attempt per round, as before -- but a
        transient error still degrades the round rather than crashing
        the poll tick.

        *push_session_ttl* bounds the freshness window of a push-mode
        nonce: a session negotiated at ``t`` rejects submissions after
        ``t + ttl`` (and the reaper turns the silence into a degraded
        round).
        """
        self.registrar = registrar
        self.scheduler = scheduler
        self.rng = rng.fork("verifier")
        # Dedicated jitter stream: forked hash-based (no parent draws),
        # and only ever drawn from when a retry actually happens -- so
        # installing the retry layer cannot perturb a clean run.
        self._retry_rng = rng.fork("retry-jitter")
        self.retry_policy = retry_policy
        if quarantine_after < 1:
            raise ValueError(f"quarantine_after must be >= 1, got {quarantine_after}")
        self.quarantine_after = quarantine_after
        self.events = events if events is not None else EventLog()
        self.pipeline = (
            pipeline if pipeline is not None
            else VerificationPipeline(continue_on_failure=continue_on_failure)
        )
        if pipeline is not None and continue_on_failure:
            self.pipeline.continue_on_failure = True
        self.notifier = notifier
        self.audit = audit
        if verdict_cache is not None:
            self.verdict_cache: VerdictCache | None = verdict_cache
        else:
            self.verdict_cache = VerdictCache() if cache_verdicts else None
        self._slots: dict[str, AgentSlot] = {}
        # Push-mode state.  Session ids come from their own forked
        # stream so opening push sessions never perturbs the nonce
        # sequence (which must match pull mode draw-for-draw for the
        # verdict-equivalence guarantee).
        if push_session_ttl <= 0:
            raise ValueError(f"push_session_ttl must be > 0, got {push_session_ttl}")
        self.push_session_ttl = push_session_ttl
        self._session_rng = rng.fork("push-sessions")
        self._push_sessions: dict[str, PushSession] = {}
        self._push_clients: dict[str, PushAgentClient] = {}
        self._last_push_result: AttestationResult | None = None
        self.push_pipeline = VerificationPipeline(
            stages=push_stages(),
            continue_on_failure=self.pipeline.continue_on_failure,
        )

    @property
    def continue_on_failure(self) -> bool:
        """The P2-vs-M2 switch; delegated to the pipeline configuration."""
        return self.pipeline.continue_on_failure

    @continue_on_failure.setter
    def continue_on_failure(self, value: bool) -> None:
        self.pipeline.continue_on_failure = value
        self.push_pipeline.continue_on_failure = value

    # -- agent management ---------------------------------------------------

    def add_agent(
        self,
        agent: KeylimeAgent,
        policy: RuntimePolicy,
        measured_boot: MeasuredBootPolicy | None = None,
    ) -> None:
        """Start attesting *agent* against *policy* (must be registered).

        With a *measured_boot* policy the verifier widens its quotes to
        the boot PCRs and checks them against the golden values on
        every poll.
        """
        self.registrar.lookup(agent.agent_id)  # raises when unknown
        self._slots[agent.agent_id] = AgentSlot(
            agent=agent, policy=policy, measured_boot=measured_boot
        )

    def remove_agent(self, agent_id: str) -> None:
        """Stop attesting *agent_id* and forget its slot.

        The shard-migration half of :meth:`add_agent`: the agent's
        state has been exported for another verifier, so this one must
        stop answering for it.  Open push sessions are closed first
        (``discarded`` outcome, terminal record kept), so a submission
        against a pre-migration session is rejected as a replay here
        and as an unknown session on the new verifier -- the evidence
        can never verify twice.  The registrar record is untouched:
        migration is not de-enrollment.
        """
        self._slot(agent_id)  # raises when unknown
        self.discard_push_sessions(agent_id)
        del self._slots[agent_id]

    def _slot(self, agent_id: str) -> AgentSlot:
        try:
            return self._slots[agent_id]
        except KeyError:
            raise NotFoundError(f"verifier is not attesting agent {agent_id!r}") from None

    def state_of(self, agent_id: str) -> AgentState:
        """Current lifecycle state for the agent."""
        return self._slot(agent_id).state

    def failures_of(self, agent_id: str) -> list[AttestationFailure]:
        """All failures recorded for the agent so far."""
        return list(self._slot(agent_id).failures)

    def results_of(self, agent_id: str) -> list[AttestationResult]:
        """All per-poll results for the agent so far."""
        return list(self._slot(agent_id).results)

    def verified_entries_of(self, agent_id: str) -> int:
        """The agent's replay offset: IMA entries verified so far."""
        return self._slot(agent_id).verified_entries

    def policy_of(self, agent_id: str) -> RuntimePolicy:
        """The runtime policy currently applied to the agent."""
        return self._slot(agent_id).policy

    def update_policy(self, agent_id: str, policy: RuntimePolicy) -> None:
        """Install a new runtime policy (the dynamic generator's push).

        The replay state is untouched: already-verified entries are not
        re-evaluated against the new policy (matching Keylime, which
        only checks entries as they stream in).  The policy's generation
        stamp is bumped so any verdicts cached under the previous state
        become unreachable.
        """
        self._slot(agent_id).policy = policy
        policy.bump_generation()
        self.events.emit(
            self.scheduler.clock.now, "keylime.verifier", "policy.updated",
            agent=agent_id, lines=policy.line_count(),
        )

    def restart_attestation(self, agent_id: str) -> None:
        """Operator action: restart a failed agent from scratch.

        Keylime re-attests from the top of the log, so an unresolved
        failure will halt it again -- the loop described under P2.
        """
        slot = self._slot(agent_id)
        slot.state = AgentState.ATTESTING
        slot.verified_entries = 0
        slot.replay_aggregate = zero_digest("sha256")
        slot.last_reset_count = None
        # Degraded-mode bookkeeping resets too: the operator gets a
        # fresh quarantine budget along with the fresh replay state.
        slot.suspect_since = None
        slot.suspect_windows = 0
        # Any open push session dies with the restart: its nonce was
        # minted against the pre-reset replay position, and a stale
        # nonce must never verify after the reboot reset.
        self.discard_push_sessions(agent_id)
        self.events.emit(
            self.scheduler.clock.now, "keylime.verifier", "attestation.restarted",
            agent=agent_id,
        )

    # -- polling -----------------------------------------------------------

    def start_polling(self, agent_id: str, interval: float) -> None:
        """Poll the agent every *interval* simulated seconds."""
        slot = self._slot(agent_id)

        def tick() -> None:
            # SUSPECT nodes keep getting polled (the anti-P2 invariant:
            # transient noise must never silently stop the attestation
            # history); only FAILED/STOPPED/QUARANTINED go quiet.
            if slot.state in POLLABLE_STATES:
                self.poll(agent_id)

        slot.stop_polling = self.scheduler.every(
            interval, tick, label=f"poll:{agent_id}"
        )

    def stop_polling(self, agent_id: str) -> None:
        """Cancel the periodic poll for the agent.

        Idempotent: a second call (or a call for an agent that was never
        scheduled) is a no-op, and cancelling never rewrites a FAILED or
        QUARANTINED agent's state -- only a still-pollable agent
        (ATTESTING or SUSPECT) becomes STOPPED.
        """
        slot = self._slot(agent_id)
        cancel = slot.stop_polling
        if cancel is not None:
            slot.stop_polling = None
            cancel()
            if slot.state in POLLABLE_STATES:
                slot.state = AgentState.STOPPED

    def poll(self, agent_id: str) -> AttestationResult:
        """One full attestation round against the agent.

        With telemetry active (:mod:`repro.obs`), the round is traced as
        a ``verifier.poll`` root span with one child per pipeline stage
        (``verifier.challenge``, ``verifier.quote_verify``,
        ``verifier.log_replay``, ``verifier.policy_eval``), updates the
        poll-latency histogram and outcome counters, and records the
        per-stage ``verifier_stage_wall_seconds{stage}`` breakdown.
        """
        telemetry = obs.get()
        wall_start = perf_counter()
        with telemetry.tracer.span("verifier.poll", agent=agent_id) as span:
            result = self._poll_once(agent_id, telemetry)
            span.set_attribute("ok", result.ok)
            span.set_attribute("entries", result.entries_processed)
        registry = telemetry.registry
        registry.histogram(
            "verifier_poll_wall_seconds", "Wall-clock latency of one verifier poll",
        ).observe(perf_counter() - wall_start, exemplar=exemplar_of(span))
        outcome = "ok" if result.ok else ("degraded" if result.transient else "failed")
        registry.counter(
            "verifier_polls_total", "Attestation rounds executed", ("result",),
        ).labels(result=outcome).inc()
        self._observe_round(agent_id, result, registry)
        return result

    def _observe_round(self, agent_id: str, result: AttestationResult, registry) -> None:
        """Round telemetry shared by the pull and push paths.

        Heartbeat signals for the health layer: when each agent was
        last attested and last verified clean, on the simulated clock.
        The coverage-gap detector (obs.health) alarms on their age --
        and because *both* delivery modes update the same gauges, the
        anti-P2 alarm is mode-blind.
        """
        now = self.scheduler.clock.now
        registry.gauge(
            "verifier_agent_last_poll_sim_seconds",
            "Simulated time of the agent's most recent attestation round",
            ("agent",),
        ).labels(agent=agent_id).set(now)
        if result.ok:
            registry.gauge(
                "verifier_agent_last_ok_sim_seconds",
                "Simulated time of the agent's most recent successful attestation",
                ("agent",),
            ).labels(agent=agent_id).set(now)
        if result.entries_processed:
            registry.counter(
                "verifier_entries_evaluated_total",
                "IMA entries evaluated against the runtime policy",
            ).inc(result.entries_processed)
        if result.entries_skipped:
            registry.counter(
                "verifier_entries_skipped_total",
                "IMA entries never policy-checked (halt-on-failure, P2)",
            ).inc(result.entries_skipped)

    def _poll_once(self, agent_id: str, telemetry) -> AttestationResult:
        slot = self._slot(agent_id)
        ctx = RoundContext(
            agent_id=agent_id,
            slot=slot,
            record=self.registrar.lookup(agent_id),
            now=self.scheduler.clock.now,
            rng=self.rng,
            tracer=telemetry.tracer,
            cache=self.verdict_cache,
            retry_policy=self.retry_policy,
            retry_rng=self._retry_rng,
        )
        result = self.pipeline.run(ctx, telemetry.registry)
        return self._conclude_round(slot, agent_id, result)

    def _conclude_round(
        self, slot: AgentSlot, agent_id: str, result: AttestationResult
    ) -> AttestationResult:
        """Route one round's result to its side effects.

        Shared verbatim by the pull and push paths: audit append, event
        emission, SUSPECT recovery, and the degraded/failed state
        machinery are functions of the *result*, never of how the
        evidence travelled.
        """
        if result.ok:
            slot.results.append(result)
            if self.audit is not None:
                self.audit.append(
                    result.time, agent_id, ok=True,
                    detail={"entries": result.entries_processed},
                )
            self.events.emit(
                result.time, "keylime.verifier", "attestation.ok",
                agent=agent_id, entries=result.entries_processed,
            )
            if slot.state is AgentState.SUSPECT:
                self._recover(slot, result.time)
            return result
        if result.transient:
            return self._record_degraded_round(slot, result)
        return self._record_failed_round(slot, result)

    # -- push mode ---------------------------------------------------------

    def open_push_session_of(self, agent_id: str) -> PushSession | None:
        """The agent's currently open push session, if any."""
        for session in self._push_sessions.values():
            if session.agent_id == agent_id and session.is_open:
                return session
        return None

    def push_sessions_of(self, agent_id: str) -> list[PushSession]:
        """Every remembered push session for the agent, oldest first."""
        return [
            session for session in self._push_sessions.values()
            if session.agent_id == agent_id
        ]

    def discard_push_sessions(self, agent_id: str) -> int:
        """Close every open push session for the agent; returns the count.

        Called by :meth:`restart_attestation` (a stale nonce must not
        verify after a reboot reset) and usable directly by operators.
        The terminal record is kept, so a late submission against the
        discarded session is rejected as a replay.
        """
        count = 0
        for session in self._push_sessions.values():
            if session.agent_id == agent_id and session.is_open:
                session.close("discarded")
                self._count_session_outcome("discarded")
                count += 1
        if count:
            self.events.emit(
                self.scheduler.clock.now, "keylime.verifier",
                "push.session.discarded", agent=agent_id, sessions=count,
            )
        return count

    def _count_session_outcome(self, outcome: str) -> None:
        registry = obs.get().registry
        registry.counter(
            "verifier_push_sessions_total",
            "Push sessions reaching a terminal state, by outcome",
            ("outcome",),
        ).labels(outcome=outcome).inc()
        self._set_open_sessions_gauge(registry)

    def _set_open_sessions_gauge(self, registry) -> None:
        registry.gauge(
            "verifier_push_sessions_open",
            "Push sessions currently awaiting an agent submission",
        ).set(sum(1 for session in self._push_sessions.values() if session.is_open))

    def _trim_sessions(self) -> None:
        """Bound the terminal-session memory used for replay rejection."""
        excess = len(self._push_sessions) - PUSH_SESSION_RETENTION
        if excess <= 0:
            return
        for session_id in [
            session_id
            for session_id, session in self._push_sessions.items()
            if not session.is_open
        ][:excess]:
            del self._push_sessions[session_id]

    def negotiate_push(self, blob: str | bytes) -> str:
        """Push step 1 endpoint: open a session for an announcing agent.

        Decodes the capability announcement (strictly -- any malformed
        frame is an :class:`IntegrityError`), validates the agent with
        the registrar, supersedes any session the agent left dangling,
        mints the round's nonce, and returns the serialised
        :class:`~repro.keylime.transport.NegotiationReply`.

        The delta offset is chosen here, from the announced boot count:
        a boot count matching the verifier's last seen reset count
        continues at ``verified_entries``; a changed one restarts the
        fetch at zero (the quote's own reset counter still makes the
        final call during verification -- the announcement is a hint,
        not a security input).
        """
        telemetry = obs.get()
        request = negotiation_from_json(blob)
        agent_id = request.agent_id
        slot = self._slot(agent_id)
        if slot.state not in POLLABLE_STATES:
            raise StateError(
                f"agent {agent_id} is {slot.state.value}; push negotiation refused"
            )
        now = self.scheduler.clock.now
        with telemetry.tracer.remote_context(request.traceparent):
            with telemetry.tracer.span(
                "verifier.push_negotiate", agent=agent_id
            ) as span:
                self.registrar.note_capabilities(
                    agent_id, request.capabilities, now=now
                )
                if "sha256" not in request.capabilities.hash_algorithms:
                    raise IntegrityError(
                        f"agent {agent_id} announced no sha256 bank; "
                        "cannot negotiate a verifiable session"
                    )
                previous = self.open_push_session_of(agent_id)
                if previous is not None:
                    previous.close("superseded")
                    self._count_session_outcome("superseded")
                offset = slot.verified_entries
                if (
                    slot.last_reset_count is not None
                    and request.capabilities.boot_count != slot.last_reset_count
                ):
                    offset = 0
                selection = [IMA_PCR_INDEX]
                if slot.measured_boot is not None:
                    selection = sorted(
                        set(selection) | set(slot.measured_boot.pcr_selection)
                    )
                session = PushSession(
                    session_id=f"ps-{self._session_rng.hexid(12)}",
                    agent_id=agent_id,
                    nonce=self.rng.hexid(20),
                    offset=offset,
                    pcr_selection=tuple(selection),
                    algorithm="sha256",
                    created_at=now,
                    expires_at=now + self.push_session_ttl,
                    boot_count=request.capabilities.boot_count,
                )
                session.advance(PushSessionState.NEGOTIATED)
                self._push_sessions[session.session_id] = session
                self._trim_sessions()
                span.set_attribute("session", session.session_id)
                span.set_attribute("offset", offset)
        self._set_open_sessions_gauge(telemetry.registry)
        self.events.emit(
            now, "keylime.verifier", "push.session.negotiated",
            agent=agent_id, session=session.session_id, offset=offset,
        )
        return negotiation_reply_to_json(session.reply())

    def submit_push(self, blob: str | bytes) -> str:
        """Push step 2/3 endpoint: verify a submission, return the verdict.

        Protocol-level rejections -- malformed frame, unknown session,
        agent/session mismatch, replayed session, expired session --
        raise :class:`IntegrityError` *without* touching the agent's
        attestation record: an attacker replaying captured evidence must
        not be able to fail (or pass) the agent on its behalf.  A
        well-formed submission against a live session consumes the
        session and runs the shared verification pipeline; its result
        flows through exactly the side-effect path a pull round uses.
        """
        telemetry = obs.get()
        wall_start = perf_counter()
        submission = submission_from_json(blob)
        session = self._push_sessions.get(submission.session_id)
        if session is None:
            raise IntegrityError(
                f"unknown push session {submission.session_id!r}"
            )
        if session.agent_id != submission.agent_id:
            raise IntegrityError(
                f"push session {session.session_id} belongs to "
                f"{session.agent_id}, not {submission.agent_id}"
            )
        now = self.scheduler.clock.now
        session.ensure_submittable(now)
        session.advance(PushSessionState.SUBMITTED)
        slot = self._slot(session.agent_id)
        with telemetry.tracer.span(
            "verifier.push_verify", agent=session.agent_id,
            session=session.session_id,
        ) as span:
            result = self._ingest_push(slot, session, submission.evidence, telemetry)
            span.set_attribute("ok", result.ok)
            span.set_attribute("entries", result.entries_processed)
        if result.ok:
            session.advance(PushSessionState.VERIFIED)
            session.outcome = "verified"
            self._count_session_outcome("verified")
        else:
            session.advance(PushSessionState.FAILED)
            session.outcome = "degraded" if result.transient else "failed"
            self._count_session_outcome(session.outcome)
        registry = telemetry.registry
        registry.histogram(
            "verifier_push_round_wall_seconds",
            "Wall-clock latency of one push submission verification",
        ).observe(perf_counter() - wall_start, exemplar=exemplar_of(span))
        outcome = "ok" if result.ok else ("degraded" if result.transient else "failed")
        registry.counter(
            "verifier_push_rounds_total",
            "Push attestation rounds verified", ("result",),
        ).labels(result=outcome).inc()
        self._observe_round(session.agent_id, result, registry)
        self._last_push_result = result
        return verdict_to_json(
            PushVerdict(
                session_id=session.session_id,
                ok=result.ok,
                state=slot.state.value,
                entries_processed=result.entries_processed,
                next_offset=slot.verified_entries,
                failures=tuple(
                    failure.kind.value for failure in result.failures
                ),
            )
        )

    def _ingest_push(
        self, slot: AgentSlot, session: PushSession, evidence, telemetry
    ) -> AttestationResult:
        """Run the shared pipeline over a submitted evidence bundle."""
        self.push_pipeline.continue_on_failure = self.pipeline.continue_on_failure
        ctx = RoundContext(
            agent_id=session.agent_id,
            slot=slot,
            record=self.registrar.lookup(session.agent_id),
            now=self.scheduler.clock.now,
            rng=self.rng,
            tracer=telemetry.tracer,
            cache=self.verdict_cache,
            retry_policy=self.retry_policy,
            retry_rng=self._retry_rng,
            nonce=session.nonce,
            selection=list(session.pcr_selection),
            evidence=evidence,
        )
        result = self.push_pipeline.run(ctx, telemetry.registry)
        return self._conclude_round(slot, session.agent_id, result)

    def reap_push_sessions(self, now: float | None = None) -> list[str]:
        """Expire overdue push sessions; the verifier tick's only push job.

        Every open session past its ``expires_at`` closes as
        ``expired`` and -- when the agent is still attestable -- records
        a *degraded* round, feeding the same SUSPECT/quarantine
        machinery a pull-mode transport failure would.  The silence of
        a dead push agent therefore surfaces exactly like a dead wire
        did before: loudly, and without a silent attestation-log gap.
        """
        if now is None:
            now = self.scheduler.clock.now
        registry = obs.get().registry
        reaped: list[str] = []
        for session in list(self._push_sessions.values()):
            if not session.is_open or now <= session.expires_at:
                continue
            session.close("expired")
            self._count_session_outcome("expired")
            reaped.append(session.session_id)
            self.events.emit(
                now, "keylime.verifier", "push.session.expired",
                agent=session.agent_id, session=session.session_id,
                negotiated_at=session.created_at,
            )
            slot = self._slots.get(session.agent_id)
            if slot is None or slot.state not in POLLABLE_STATES:
                continue
            result = AttestationResult(
                time=now,
                ok=False,
                entries_processed=0,
                entries_skipped=0,
                failures=(),
                transient=True,
                transport_error=(
                    f"push session {session.session_id} expired unanswered "
                    f"(negotiated at t={session.created_at})"
                ),
            )
            self._record_degraded_round(slot, result)
            self._observe_round(session.agent_id, result, registry)
        return reaped

    def push_client(
        self,
        agent_id: str,
        negotiate_channel=None,
        submit_channel=None,
    ) -> PushAgentClient:
        """The (cached) push client driving this agent's cadence.

        The client talks to this verifier's endpoints directly; the
        optional channel hooks inject the chaos layer into either leg.
        """
        client = self._push_clients.get(agent_id)
        if client is None:
            slot = self._slot(agent_id)
            client = PushAgentClient(
                slot.agent,
                negotiate=self.negotiate_push,
                submit=self.submit_push,
                retry_policy=self.retry_policy,
                retry_rng=self._retry_rng,
                negotiate_channel=negotiate_channel,
                submit_channel=submit_channel,
            )
            self._push_clients[agent_id] = client
        return client

    def push_round(self, agent_id: str) -> AttestationResult | None:
        """Drive one complete push exchange for the agent.

        The push analogue of :meth:`poll`: returns the round's
        :class:`AttestationResult`, or ``None`` when the exchange never
        produced one (delivery abandoned or the submission was rejected
        at the protocol layer) -- in which case the session is left for
        :meth:`reap_push_sessions` to account for.
        """
        self._last_push_result = None
        verdict = self.push_client(agent_id).run_round()
        if verdict is None:
            return None
        return self._last_push_result

    def _transition(self, slot: AgentSlot, to_state: AgentState, now: float) -> None:
        """Move the slot between lifecycle states, with a metrics trail."""
        from_state = slot.state
        slot.state = to_state
        obs.get().registry.counter(
            "verifier_state_transitions_total",
            "Agent lifecycle transitions on the verifier",
            ("from_state", "to_state"),
        ).labels(from_state=from_state.value, to_state=to_state.value).inc()

    def _recover(self, slot: AgentSlot, now: float) -> None:
        """A SUSPECT node attested clean again: back to ATTESTING."""
        outage = now - slot.suspect_since if slot.suspect_since is not None else 0.0
        slot.suspect_since = None
        self._transition(slot, AgentState.ATTESTING, now)
        self.events.emit(
            now, "keylime.verifier", "node.recovered",
            agent=slot.agent.agent_id, outage_seconds=outage,
            suspect_windows=slot.suspect_windows,
        )

    def _record_degraded_round(
        self, slot: AgentSlot, result: AttestationResult
    ) -> AttestationResult:
        """Side effects of a degraded (transient-exhausted) round.

        Nothing here treats the round as a verdict: no FAILED state, no
        failure counter, no revocation for the round itself.  The node
        moves (or stays) SUSPECT and -- critically -- keeps being
        polled.  Only the *quarantine_after*-th suspect window escalates
        to QUARANTINED, which does stop polling but announces the
        coverage gap it opens (event + revocation with reason
        ``degraded_transport``) instead of leaving the silent log gap
        the paper's P2 describes.
        """
        now = result.time
        agent_id = slot.agent.agent_id
        slot.results.append(result)
        obs.get().registry.counter(
            "verifier_degraded_rounds_total",
            "Attestation rounds abandoned after exhausting transport retries",
        ).inc()
        if self.audit is not None:
            self.audit.append(
                now, agent_id, ok=False,
                detail={
                    "degraded": True,
                    "transport_error": result.transport_error,
                    "retry_attempts": result.retry_attempts,
                },
            )
        self.events.emit(
            now, "keylime.verifier", "attestation.degraded",
            agent=agent_id, error=result.transport_error,
            retry_attempts=result.retry_attempts,
        )
        if slot.state is AgentState.ATTESTING:
            slot.suspect_windows += 1
            slot.suspect_since = now
            if slot.suspect_windows >= self.quarantine_after:
                self._quarantine(slot, now)
            else:
                self._transition(slot, AgentState.SUSPECT, now)
                self.events.emit(
                    now, "keylime.verifier", "node.suspect",
                    agent=agent_id, window=slot.suspect_windows,
                    error=result.transport_error,
                )
        return result

    def _quarantine(self, slot: AgentSlot, now: float) -> None:
        """Escalate a repeatedly-degraded node to operator attention."""
        agent_id = slot.agent.agent_id
        cancel = slot.stop_polling
        if cancel is not None:
            slot.stop_polling = None
            cancel()
        self._transition(slot, AgentState.QUARANTINED, now)
        self.events.emit(
            now, "keylime.verifier", "node.quarantined",
            agent=agent_id, suspect_windows=slot.suspect_windows,
        )
        if self.notifier is not None:
            self.notifier.notify(
                RevocationEvent(
                    time=now,
                    agent_id=agent_id,
                    reason="degraded_transport",
                    detail=(
                        f"agent entered its {slot.suspect_windows}th suspect "
                        "window; transport considered unreliable"
                    ),
                    path=None,
                )
            )

    def _record_failed_round(
        self, slot: AgentSlot, result: AttestationResult
    ) -> AttestationResult:
        """Side effects of a failed round: audit, revocation, halt."""
        failures = list(result.failures)
        now = result.time
        slot.failures.extend(failures)
        failure_counter = obs.get().registry.counter(
            "verifier_failures_total", "Attestation failures by kind", ("kind",),
        )
        for failure in failures:
            failure_counter.labels(kind=failure.kind.value).inc()
        slot.results.append(result)
        if self.audit is not None:
            self.audit.append(
                now, slot.agent.agent_id, ok=False,
                detail={"failures": [failure.detail for failure in failures]},
            )
        if self.notifier is not None:
            for failure in failures:
                self.notifier.notify(
                    RevocationEvent(
                        time=now,
                        agent_id=slot.agent.agent_id,
                        reason=failure.kind.value,
                        detail=failure.detail,
                        path=(
                            failure.policy_failure.path
                            if failure.policy_failure is not None else None
                        ),
                    )
                )
        for failure in failures:
            self.events.emit(
                now, "keylime.verifier", f"attestation.failed.{failure.kind.value}",
                agent=slot.agent.agent_id, detail=failure.detail,
                path=(failure.policy_failure.path if failure.policy_failure else None),
            )
        if not self.continue_on_failure:
            slot.state = AgentState.FAILED
            self.events.emit(
                now, "keylime.verifier", "polling.halted",
                agent=slot.agent.agent_id,
            )
        return result
