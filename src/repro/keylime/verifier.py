"""The Keylime verifier: the attestation loop.

Each poll of an agent performs the four steps of Fig 1:

1. **Challenge** -- a fresh random nonce; the agent returns a TPM quote
   over PCR 10 bound to that nonce plus the new IMA log entries.
2. **Quote validation** -- signature by the registrar-validated AK,
   nonce binding, PCR digest consistency.
3. **Log replay** -- the new entries' template hashes are recomputed
   and folded into the running PCR-10 replay; a mismatch with the
   quoted value means the log was tampered with in flight or at rest.
4. **Policy evaluation** -- each new entry is checked against the
   runtime policy (excludes, then allowlist).

The steps themselves live in :mod:`repro.keylime.pipeline` as
composable stage objects; this module is the thin orchestrator around
them: agent lifecycle, polling schedules, failure side-effects
(revocation fan-out, audit append, event emission) and telemetry
roll-ups.

Failure behaviour is the paper's **P2**: the stock verifier processes
entries *sequentially and stops at the first policy failure*, marks the
agent failed, and **stops polling** -- leaving an incomplete attestation
log.  Restarting attestation replays the log from scratch, hits the same
unresolved failure, and halts again.  The ``continue_on_failure`` switch
implements the proposed **M2** fix: every entry is always evaluated and
polling never stops, so later malicious entries still surface.  Both are
pipeline configuration (:class:`repro.keylime.pipeline
.VerificationPipeline`), not verifier branches.

Policy verdicts are memoised through a
:class:`repro.keylime.policy.VerdictCache` (enabled by default, and
shareable across every agent of a fleet); ``update_policy`` bumps the
policy's generation stamp so a cached verdict can never outlive the
policy state that produced it.
"""

from __future__ import annotations

from time import perf_counter

from repro.common.clock import Scheduler
from repro.common.errors import NotFoundError
from repro.common.events import EventLog
from repro.common.hexutil import zero_digest
from repro.common.rng import SeededRng
from repro.keylime.agent import KeylimeAgent
from repro.keylime.audit import AuditLog
from repro.keylime.measuredboot import MeasuredBootPolicy
from repro.keylime.pipeline import (
    POLLABLE_STATES,
    AgentSlot,
    AgentState,
    AttestationFailure,
    AttestationResult,
    FailureKind,
    RoundContext,
    VerificationPipeline,
)
from repro.keylime.policy import RuntimePolicy, VerdictCache
from repro.keylime.registrar import KeylimeRegistrar
from repro.keylime.retrypolicy import RetryPolicy
from repro.keylime.revocation import RevocationEvent, RevocationNotifier
from repro.obs import runtime as obs
from repro.obs.tracing import exemplar_of

__all__ = [
    "AgentSlot",
    "AgentState",
    "AttestationFailure",
    "AttestationResult",
    "FailureKind",
    "KeylimeVerifier",
    "POLLABLE_STATES",
    "RetryPolicy",
]

#: Backwards-compatible alias; the slot dataclass moved to the pipeline
#: module alongside the stages that mutate it.
_AgentSlot = AgentSlot


class KeylimeVerifier:
    """The trusted verifier service."""

    def __init__(
        self,
        registrar: KeylimeRegistrar,
        scheduler: Scheduler,
        rng: SeededRng,
        events: EventLog | None = None,
        continue_on_failure: bool = False,
        notifier: RevocationNotifier | None = None,
        audit: AuditLog | None = None,
        pipeline: VerificationPipeline | None = None,
        verdict_cache: VerdictCache | None = None,
        cache_verdicts: bool = True,
        retry_policy: RetryPolicy | None = None,
        quarantine_after: int = 3,
    ) -> None:
        """Build the verifier.

        *pipeline* defaults to the stock Fig 1 stage sequence.
        *verdict_cache* installs a shared cache (a fleet passes one
        cache for all of its nodes); with ``None`` the verifier creates
        its own, and ``cache_verdicts=False`` disables memoisation
        entirely (every entry is evaluated from scratch).

        *retry_policy* enables the transient-fault retry path: wire
        errors are retried with backoff and an exhausted budget routes
        the node into SUSPECT instead of halting its polling.  A node
        entering its *quarantine_after*-th suspect window escalates to
        QUARANTINED (polling stops, loudly).  With ``retry_policy=None``
        the wire gets exactly one attempt per round, as before -- but a
        transient error still degrades the round rather than crashing
        the poll tick.
        """
        self.registrar = registrar
        self.scheduler = scheduler
        self.rng = rng.fork("verifier")
        # Dedicated jitter stream: forked hash-based (no parent draws),
        # and only ever drawn from when a retry actually happens -- so
        # installing the retry layer cannot perturb a clean run.
        self._retry_rng = rng.fork("retry-jitter")
        self.retry_policy = retry_policy
        if quarantine_after < 1:
            raise ValueError(f"quarantine_after must be >= 1, got {quarantine_after}")
        self.quarantine_after = quarantine_after
        self.events = events if events is not None else EventLog()
        self.pipeline = (
            pipeline if pipeline is not None
            else VerificationPipeline(continue_on_failure=continue_on_failure)
        )
        if pipeline is not None and continue_on_failure:
            self.pipeline.continue_on_failure = True
        self.notifier = notifier
        self.audit = audit
        if verdict_cache is not None:
            self.verdict_cache: VerdictCache | None = verdict_cache
        else:
            self.verdict_cache = VerdictCache() if cache_verdicts else None
        self._slots: dict[str, AgentSlot] = {}

    @property
    def continue_on_failure(self) -> bool:
        """The P2-vs-M2 switch; delegated to the pipeline configuration."""
        return self.pipeline.continue_on_failure

    @continue_on_failure.setter
    def continue_on_failure(self, value: bool) -> None:
        self.pipeline.continue_on_failure = value

    # -- agent management ---------------------------------------------------

    def add_agent(
        self,
        agent: KeylimeAgent,
        policy: RuntimePolicy,
        measured_boot: MeasuredBootPolicy | None = None,
    ) -> None:
        """Start attesting *agent* against *policy* (must be registered).

        With a *measured_boot* policy the verifier widens its quotes to
        the boot PCRs and checks them against the golden values on
        every poll.
        """
        self.registrar.lookup(agent.agent_id)  # raises when unknown
        self._slots[agent.agent_id] = AgentSlot(
            agent=agent, policy=policy, measured_boot=measured_boot
        )

    def _slot(self, agent_id: str) -> AgentSlot:
        try:
            return self._slots[agent_id]
        except KeyError:
            raise NotFoundError(f"verifier is not attesting agent {agent_id!r}") from None

    def state_of(self, agent_id: str) -> AgentState:
        """Current lifecycle state for the agent."""
        return self._slot(agent_id).state

    def failures_of(self, agent_id: str) -> list[AttestationFailure]:
        """All failures recorded for the agent so far."""
        return list(self._slot(agent_id).failures)

    def results_of(self, agent_id: str) -> list[AttestationResult]:
        """All per-poll results for the agent so far."""
        return list(self._slot(agent_id).results)

    def policy_of(self, agent_id: str) -> RuntimePolicy:
        """The runtime policy currently applied to the agent."""
        return self._slot(agent_id).policy

    def update_policy(self, agent_id: str, policy: RuntimePolicy) -> None:
        """Install a new runtime policy (the dynamic generator's push).

        The replay state is untouched: already-verified entries are not
        re-evaluated against the new policy (matching Keylime, which
        only checks entries as they stream in).  The policy's generation
        stamp is bumped so any verdicts cached under the previous state
        become unreachable.
        """
        self._slot(agent_id).policy = policy
        policy.bump_generation()
        self.events.emit(
            self.scheduler.clock.now, "keylime.verifier", "policy.updated",
            agent=agent_id, lines=policy.line_count(),
        )

    def restart_attestation(self, agent_id: str) -> None:
        """Operator action: restart a failed agent from scratch.

        Keylime re-attests from the top of the log, so an unresolved
        failure will halt it again -- the loop described under P2.
        """
        slot = self._slot(agent_id)
        slot.state = AgentState.ATTESTING
        slot.verified_entries = 0
        slot.replay_aggregate = zero_digest("sha256")
        slot.last_reset_count = None
        # Degraded-mode bookkeeping resets too: the operator gets a
        # fresh quarantine budget along with the fresh replay state.
        slot.suspect_since = None
        slot.suspect_windows = 0
        self.events.emit(
            self.scheduler.clock.now, "keylime.verifier", "attestation.restarted",
            agent=agent_id,
        )

    # -- polling -----------------------------------------------------------

    def start_polling(self, agent_id: str, interval: float) -> None:
        """Poll the agent every *interval* simulated seconds."""
        slot = self._slot(agent_id)

        def tick() -> None:
            # SUSPECT nodes keep getting polled (the anti-P2 invariant:
            # transient noise must never silently stop the attestation
            # history); only FAILED/STOPPED/QUARANTINED go quiet.
            if slot.state in POLLABLE_STATES:
                self.poll(agent_id)

        slot.stop_polling = self.scheduler.every(
            interval, tick, label=f"poll:{agent_id}"
        )

    def stop_polling(self, agent_id: str) -> None:
        """Cancel the periodic poll for the agent.

        Idempotent: a second call (or a call for an agent that was never
        scheduled) is a no-op, and cancelling never rewrites a FAILED or
        QUARANTINED agent's state -- only a still-pollable agent
        (ATTESTING or SUSPECT) becomes STOPPED.
        """
        slot = self._slot(agent_id)
        cancel = slot.stop_polling
        if cancel is not None:
            slot.stop_polling = None
            cancel()
            if slot.state in POLLABLE_STATES:
                slot.state = AgentState.STOPPED

    def poll(self, agent_id: str) -> AttestationResult:
        """One full attestation round against the agent.

        With telemetry active (:mod:`repro.obs`), the round is traced as
        a ``verifier.poll`` root span with one child per pipeline stage
        (``verifier.challenge``, ``verifier.quote_verify``,
        ``verifier.log_replay``, ``verifier.policy_eval``), updates the
        poll-latency histogram and outcome counters, and records the
        per-stage ``verifier_stage_wall_seconds{stage}`` breakdown.
        """
        telemetry = obs.get()
        wall_start = perf_counter()
        with telemetry.tracer.span("verifier.poll", agent=agent_id) as span:
            result = self._poll_once(agent_id, telemetry)
            span.set_attribute("ok", result.ok)
            span.set_attribute("entries", result.entries_processed)
        registry = telemetry.registry
        registry.histogram(
            "verifier_poll_wall_seconds", "Wall-clock latency of one verifier poll",
        ).observe(perf_counter() - wall_start, exemplar=exemplar_of(span))
        outcome = "ok" if result.ok else ("degraded" if result.transient else "failed")
        registry.counter(
            "verifier_polls_total", "Attestation rounds executed", ("result",),
        ).labels(result=outcome).inc()
        # Heartbeat signals for the health layer: when each agent was
        # last polled and last verified clean, on the simulated clock.
        # The coverage-gap detector (obs.health) alarms on their age.
        now = self.scheduler.clock.now
        registry.gauge(
            "verifier_agent_last_poll_sim_seconds",
            "Simulated time of the agent's most recent attestation round",
            ("agent",),
        ).labels(agent=agent_id).set(now)
        if result.ok:
            registry.gauge(
                "verifier_agent_last_ok_sim_seconds",
                "Simulated time of the agent's most recent successful attestation",
                ("agent",),
            ).labels(agent=agent_id).set(now)
        if result.entries_processed:
            registry.counter(
                "verifier_entries_evaluated_total",
                "IMA entries evaluated against the runtime policy",
            ).inc(result.entries_processed)
        if result.entries_skipped:
            registry.counter(
                "verifier_entries_skipped_total",
                "IMA entries never policy-checked (halt-on-failure, P2)",
            ).inc(result.entries_skipped)
        return result

    def _poll_once(self, agent_id: str, telemetry) -> AttestationResult:
        slot = self._slot(agent_id)
        ctx = RoundContext(
            agent_id=agent_id,
            slot=slot,
            record=self.registrar.lookup(agent_id),
            now=self.scheduler.clock.now,
            rng=self.rng,
            tracer=telemetry.tracer,
            cache=self.verdict_cache,
            retry_policy=self.retry_policy,
            retry_rng=self._retry_rng,
        )
        result = self.pipeline.run(ctx, telemetry.registry)
        if result.ok:
            slot.results.append(result)
            if self.audit is not None:
                self.audit.append(
                    result.time, agent_id, ok=True,
                    detail={"entries": result.entries_processed},
                )
            self.events.emit(
                result.time, "keylime.verifier", "attestation.ok",
                agent=agent_id, entries=result.entries_processed,
            )
            if slot.state is AgentState.SUSPECT:
                self._recover(slot, result.time)
            return result
        if result.transient:
            return self._record_degraded_round(slot, result)
        return self._record_failed_round(slot, result)

    def _transition(self, slot: AgentSlot, to_state: AgentState, now: float) -> None:
        """Move the slot between lifecycle states, with a metrics trail."""
        from_state = slot.state
        slot.state = to_state
        obs.get().registry.counter(
            "verifier_state_transitions_total",
            "Agent lifecycle transitions on the verifier",
            ("from_state", "to_state"),
        ).labels(from_state=from_state.value, to_state=to_state.value).inc()

    def _recover(self, slot: AgentSlot, now: float) -> None:
        """A SUSPECT node attested clean again: back to ATTESTING."""
        outage = now - slot.suspect_since if slot.suspect_since is not None else 0.0
        slot.suspect_since = None
        self._transition(slot, AgentState.ATTESTING, now)
        self.events.emit(
            now, "keylime.verifier", "node.recovered",
            agent=slot.agent.agent_id, outage_seconds=outage,
            suspect_windows=slot.suspect_windows,
        )

    def _record_degraded_round(
        self, slot: AgentSlot, result: AttestationResult
    ) -> AttestationResult:
        """Side effects of a degraded (transient-exhausted) round.

        Nothing here treats the round as a verdict: no FAILED state, no
        failure counter, no revocation for the round itself.  The node
        moves (or stays) SUSPECT and -- critically -- keeps being
        polled.  Only the *quarantine_after*-th suspect window escalates
        to QUARANTINED, which does stop polling but announces the
        coverage gap it opens (event + revocation with reason
        ``degraded_transport``) instead of leaving the silent log gap
        the paper's P2 describes.
        """
        now = result.time
        agent_id = slot.agent.agent_id
        slot.results.append(result)
        obs.get().registry.counter(
            "verifier_degraded_rounds_total",
            "Attestation rounds abandoned after exhausting transport retries",
        ).inc()
        if self.audit is not None:
            self.audit.append(
                now, agent_id, ok=False,
                detail={
                    "degraded": True,
                    "transport_error": result.transport_error,
                    "retry_attempts": result.retry_attempts,
                },
            )
        self.events.emit(
            now, "keylime.verifier", "attestation.degraded",
            agent=agent_id, error=result.transport_error,
            retry_attempts=result.retry_attempts,
        )
        if slot.state is AgentState.ATTESTING:
            slot.suspect_windows += 1
            slot.suspect_since = now
            if slot.suspect_windows >= self.quarantine_after:
                self._quarantine(slot, now)
            else:
                self._transition(slot, AgentState.SUSPECT, now)
                self.events.emit(
                    now, "keylime.verifier", "node.suspect",
                    agent=agent_id, window=slot.suspect_windows,
                    error=result.transport_error,
                )
        return result

    def _quarantine(self, slot: AgentSlot, now: float) -> None:
        """Escalate a repeatedly-degraded node to operator attention."""
        agent_id = slot.agent.agent_id
        cancel = slot.stop_polling
        if cancel is not None:
            slot.stop_polling = None
            cancel()
        self._transition(slot, AgentState.QUARANTINED, now)
        self.events.emit(
            now, "keylime.verifier", "node.quarantined",
            agent=agent_id, suspect_windows=slot.suspect_windows,
        )
        if self.notifier is not None:
            self.notifier.notify(
                RevocationEvent(
                    time=now,
                    agent_id=agent_id,
                    reason="degraded_transport",
                    detail=(
                        f"agent entered its {slot.suspect_windows}th suspect "
                        "window; transport considered unreliable"
                    ),
                    path=None,
                )
            )

    def _record_failed_round(
        self, slot: AgentSlot, result: AttestationResult
    ) -> AttestationResult:
        """Side effects of a failed round: audit, revocation, halt."""
        failures = list(result.failures)
        now = result.time
        slot.failures.extend(failures)
        failure_counter = obs.get().registry.counter(
            "verifier_failures_total", "Attestation failures by kind", ("kind",),
        )
        for failure in failures:
            failure_counter.labels(kind=failure.kind.value).inc()
        slot.results.append(result)
        if self.audit is not None:
            self.audit.append(
                now, slot.agent.agent_id, ok=False,
                detail={"failures": [failure.detail for failure in failures]},
            )
        if self.notifier is not None:
            for failure in failures:
                self.notifier.notify(
                    RevocationEvent(
                        time=now,
                        agent_id=slot.agent.agent_id,
                        reason=failure.kind.value,
                        detail=failure.detail,
                        path=(
                            failure.policy_failure.path
                            if failure.policy_failure is not None else None
                        ),
                    )
                )
        for failure in failures:
            self.events.emit(
                now, "keylime.verifier", f"attestation.failed.{failure.kind.value}",
                agent=slot.agent.agent_id, detail=failure.detail,
                path=(failure.policy_failure.path if failure.policy_failure else None),
            )
        if not self.continue_on_failure:
            slot.state = AgentState.FAILED
            self.events.emit(
                now, "keylime.verifier", "polling.halted",
                agent=slot.agent.agent_id,
            )
        return result
