"""The Keylime verifier: the attestation loop.

Each poll of an agent performs the four steps of Fig 1:

1. **Challenge** -- a fresh random nonce; the agent returns a TPM quote
   over PCR 10 bound to that nonce plus the new IMA log entries.
2. **Quote validation** -- signature by the registrar-validated AK,
   nonce binding, PCR digest consistency.
3. **Log replay** -- the new entries' template hashes are recomputed
   and folded into the running PCR-10 replay; a mismatch with the
   quoted value means the log was tampered with in flight or at rest.
4. **Policy evaluation** -- each new entry is checked against the
   runtime policy (excludes, then allowlist).

Failure behaviour is the paper's **P2**: the stock verifier processes
entries *sequentially and stops at the first policy failure*, marks the
agent failed, and **stops polling** -- leaving an incomplete attestation
log.  Restarting attestation replays the log from scratch, hits the same
unresolved failure, and halts again.  The ``continue_on_failure`` switch
implements the proposed **M2** fix: every entry is always evaluated and
polling never stops, so later malicious entries still surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from time import perf_counter

from repro.common.clock import Scheduler
from repro.common.errors import NotFoundError
from repro.common.events import EventLog
from repro.common.hexutil import zero_digest
from repro.common.rng import SeededRng
from repro.kernelsim.ima import ImaLogEntry, template_hash
from repro.keylime.agent import KeylimeAgent
from repro.keylime.audit import AuditLog
from repro.keylime.measuredboot import MeasuredBootPolicy
from repro.keylime.policy import EntryVerdict, PolicyFailure, RuntimePolicy
from repro.obs import runtime as obs
from repro.keylime.registrar import KeylimeRegistrar
from repro.keylime.revocation import RevocationEvent, RevocationNotifier
from repro.tpm.pcr import IMA_PCR_INDEX
from repro.tpm.quote import QuoteVerificationError, verify_quote


def _is_violation_entry(entry: ImaLogEntry) -> bool:
    """True for IMA violation entries (zero template + zero filedata)."""
    from repro.kernelsim.ima import VIOLATION_FILEDATA_HASH, VIOLATION_TEMPLATE_HASH

    return (
        entry.template_hash == VIOLATION_TEMPLATE_HASH
        and entry.filedata_hash == VIOLATION_FILEDATA_HASH
    )


class AgentState(Enum):
    """Verifier-side lifecycle of an attested agent."""

    ATTESTING = "attesting"
    FAILED = "failed"
    STOPPED = "stopped"


class FailureKind(Enum):
    """Why an attestation round failed."""

    INVALID_QUOTE = "invalid_quote"
    LOG_TAMPERED = "log_tampered"
    PCR_MISMATCH = "pcr_mismatch"
    MEASURED_BOOT = "measured_boot"
    POLICY = "policy"


@dataclass(frozen=True)
class AttestationFailure:
    """One recorded failure, with enough detail for the experiments."""

    time: float
    kind: FailureKind
    detail: str
    policy_failure: PolicyFailure | None = None


@dataclass(frozen=True)
class AttestationResult:
    """Outcome of one poll."""

    time: float
    ok: bool
    entries_processed: int
    entries_skipped: int  # entries after a halt (never policy-checked)
    failures: tuple[AttestationFailure, ...] = ()


@dataclass
class _AgentSlot:
    agent: KeylimeAgent
    policy: RuntimePolicy
    measured_boot: MeasuredBootPolicy | None = None
    state: AgentState = AgentState.ATTESTING
    verified_entries: int = 0
    replay_aggregate: str = field(default_factory=lambda: zero_digest("sha256"))
    last_reset_count: int | None = None
    failures: list[AttestationFailure] = field(default_factory=list)
    results: list[AttestationResult] = field(default_factory=list)
    stop_polling: object | None = None  # callable from Scheduler.every


class KeylimeVerifier:
    """The trusted verifier service."""

    def __init__(
        self,
        registrar: KeylimeRegistrar,
        scheduler: Scheduler,
        rng: SeededRng,
        events: EventLog | None = None,
        continue_on_failure: bool = False,
        notifier: RevocationNotifier | None = None,
        audit: AuditLog | None = None,
    ) -> None:
        self.registrar = registrar
        self.scheduler = scheduler
        self.rng = rng.fork("verifier")
        self.events = events if events is not None else EventLog()
        self.continue_on_failure = continue_on_failure
        self.notifier = notifier
        self.audit = audit
        self._slots: dict[str, _AgentSlot] = {}

    # -- agent management ---------------------------------------------------

    def add_agent(
        self,
        agent: KeylimeAgent,
        policy: RuntimePolicy,
        measured_boot: MeasuredBootPolicy | None = None,
    ) -> None:
        """Start attesting *agent* against *policy* (must be registered).

        With a *measured_boot* policy the verifier widens its quotes to
        the boot PCRs and checks them against the golden values on
        every poll.
        """
        self.registrar.lookup(agent.agent_id)  # raises when unknown
        self._slots[agent.agent_id] = _AgentSlot(
            agent=agent, policy=policy, measured_boot=measured_boot
        )

    def _slot(self, agent_id: str) -> _AgentSlot:
        try:
            return self._slots[agent_id]
        except KeyError:
            raise NotFoundError(f"verifier is not attesting agent {agent_id!r}") from None

    def state_of(self, agent_id: str) -> AgentState:
        """Current lifecycle state for the agent."""
        return self._slot(agent_id).state

    def failures_of(self, agent_id: str) -> list[AttestationFailure]:
        """All failures recorded for the agent so far."""
        return list(self._slot(agent_id).failures)

    def results_of(self, agent_id: str) -> list[AttestationResult]:
        """All per-poll results for the agent so far."""
        return list(self._slot(agent_id).results)

    def policy_of(self, agent_id: str) -> RuntimePolicy:
        """The runtime policy currently applied to the agent."""
        return self._slot(agent_id).policy

    def update_policy(self, agent_id: str, policy: RuntimePolicy) -> None:
        """Install a new runtime policy (the dynamic generator's push).

        The replay state is untouched: already-verified entries are not
        re-evaluated against the new policy (matching Keylime, which
        only checks entries as they stream in).
        """
        self._slot(agent_id).policy = policy
        self.events.emit(
            self.scheduler.clock.now, "keylime.verifier", "policy.updated",
            agent=agent_id, lines=policy.line_count(),
        )

    def restart_attestation(self, agent_id: str) -> None:
        """Operator action: restart a failed agent from scratch.

        Keylime re-attests from the top of the log, so an unresolved
        failure will halt it again -- the loop described under P2.
        """
        slot = self._slot(agent_id)
        slot.state = AgentState.ATTESTING
        slot.verified_entries = 0
        slot.replay_aggregate = zero_digest("sha256")
        slot.last_reset_count = None
        self.events.emit(
            self.scheduler.clock.now, "keylime.verifier", "attestation.restarted",
            agent=agent_id,
        )

    # -- polling -----------------------------------------------------------

    def start_polling(self, agent_id: str, interval: float) -> None:
        """Poll the agent every *interval* simulated seconds."""
        slot = self._slot(agent_id)

        def tick() -> None:
            if slot.state is AgentState.ATTESTING:
                self.poll(agent_id)

        slot.stop_polling = self.scheduler.every(
            interval, tick, label=f"poll:{agent_id}"
        )

    def stop_polling(self, agent_id: str) -> None:
        """Cancel the periodic poll for the agent."""
        slot = self._slot(agent_id)
        if callable(slot.stop_polling):
            slot.stop_polling()
            slot.stop_polling = None
        if slot.state is AgentState.ATTESTING:
            slot.state = AgentState.STOPPED

    def poll(self, agent_id: str) -> AttestationResult:
        """One full attestation round against the agent.

        With telemetry active (:mod:`repro.obs`), the round is traced as
        a ``verifier.poll`` root span with one child per protocol phase
        (``verifier.challenge``, ``verifier.quote_verify``,
        ``verifier.log_replay``, ``verifier.policy_eval``), and updates
        the poll-latency histogram and outcome counters.
        """
        telemetry = obs.get()
        wall_start = perf_counter()
        with telemetry.tracer.span("verifier.poll", agent=agent_id) as span:
            result = self._poll_once(agent_id, telemetry)
            span.set_attribute("ok", result.ok)
            span.set_attribute("entries", result.entries_processed)
        registry = telemetry.registry
        registry.histogram(
            "verifier_poll_wall_seconds", "Wall-clock latency of one verifier poll",
        ).observe(perf_counter() - wall_start)
        registry.counter(
            "verifier_polls_total", "Attestation rounds executed", ("result",),
        ).labels(result="ok" if result.ok else "failed").inc()
        # Heartbeat signals for the health layer: when each agent was
        # last polled and last verified clean, on the simulated clock.
        # The coverage-gap detector (obs.health) alarms on their age.
        now = self.scheduler.clock.now
        registry.gauge(
            "verifier_agent_last_poll_sim_seconds",
            "Simulated time of the agent's most recent attestation round",
            ("agent",),
        ).labels(agent=agent_id).set(now)
        if result.ok:
            registry.gauge(
                "verifier_agent_last_ok_sim_seconds",
                "Simulated time of the agent's most recent successful attestation",
                ("agent",),
            ).labels(agent=agent_id).set(now)
        if result.entries_processed:
            registry.counter(
                "verifier_entries_evaluated_total",
                "IMA entries evaluated against the runtime policy",
            ).inc(result.entries_processed)
        if result.entries_skipped:
            registry.counter(
                "verifier_entries_skipped_total",
                "IMA entries never policy-checked (halt-on-failure, P2)",
            ).inc(result.entries_skipped)
        return result

    def _poll_once(self, agent_id: str, telemetry) -> AttestationResult:
        slot = self._slot(agent_id)
        now = self.scheduler.clock.now
        record = self.registrar.lookup(agent_id)
        tracer = telemetry.tracer

        # Step 1: challenge the agent with a fresh nonce.
        with tracer.span("verifier.challenge"):
            nonce = self.rng.hexid(20)
            selection = [IMA_PCR_INDEX]
            if slot.measured_boot is not None:
                selection = sorted(
                    set(selection) | set(slot.measured_boot.pcr_selection)
                )
            evidence = slot.agent.attest(
                nonce, offset=slot.verified_entries, pcr_selection=selection
            )

        # Step 2: quote validation.
        with tracer.span("verifier.quote_verify"):
            try:
                verify_quote(evidence.quote, record.ak_public, nonce)
            except QuoteVerificationError as exc:
                return self._fail_round(
                    slot, now,
                    [AttestationFailure(now, FailureKind.INVALID_QUOTE, str(exc))],
                    entries_processed=0, entries_skipped=len(evidence.ima_log_lines),
                )

        # Reboot detection: PCRs and the log restarted from zero.
        if slot.last_reset_count != evidence.quote.reset_count:
            slot.replay_aggregate = zero_digest("sha256")
            slot.verified_entries = 0
            slot.last_reset_count = evidence.quote.reset_count
            if evidence.offset != 0:
                with tracer.span("verifier.challenge", reattest=True):
                    nonce = self.rng.hexid(20)
                    evidence = slot.agent.attest(
                        nonce, offset=0, pcr_selection=selection
                    )
                with tracer.span("verifier.quote_verify", reattest=True):
                    try:
                        verify_quote(evidence.quote, record.ak_public, nonce)
                    except QuoteVerificationError as exc:
                        return self._fail_round(
                            slot, now,
                            [AttestationFailure(
                                now, FailureKind.INVALID_QUOTE, str(exc)
                            )],
                            entries_processed=0,
                            entries_skipped=len(evidence.ima_log_lines),
                        )

        # Measured boot: the quoted boot PCRs must match the golden set.
        if slot.measured_boot is not None:
            with tracer.span("verifier.measured_boot"):
                mismatches = slot.measured_boot.verify(evidence.quote.pcr_values)
            if mismatches:
                return self._fail_round(
                    slot, now,
                    [
                        AttestationFailure(
                            now, FailureKind.MEASURED_BOOT,
                            f"boot PCR {mismatch.index} diverges from golden "
                            f"value ({mismatch.actual[:16]}... != "
                            f"{mismatch.expected[:16]}...)",
                        )
                        for mismatch in mismatches
                    ],
                    entries_processed=0,
                    entries_skipped=len(evidence.ima_log_lines),
                )

        # Step 3: parse and replay the new entries.
        with tracer.span(
            "verifier.log_replay", lines=len(evidence.ima_log_lines)
        ):
            entries: list[ImaLogEntry] = []
            for line in evidence.ima_log_lines:
                try:
                    entry = ImaLogEntry.from_line(line)
                except ValueError as exc:
                    return self._fail_round(
                        slot, now,
                        [AttestationFailure(now, FailureKind.LOG_TAMPERED, str(exc))],
                        entries_processed=len(entries),
                        entries_skipped=len(evidence.ima_log_lines) - len(entries),
                    )
                if not _is_violation_entry(entry):
                    expected = template_hash(entry.filedata_hash, entry.path)
                    if entry.template_hash != expected:
                        return self._fail_round(
                            slot, now,
                            [AttestationFailure(
                                now, FailureKind.LOG_TAMPERED,
                                f"template hash mismatch at {entry.path}",
                            )],
                            entries_processed=len(entries),
                            entries_skipped=len(evidence.ima_log_lines) - len(entries),
                        )
                entries.append(entry)

            aggregate = slot.replay_aggregate
            from repro.common.hexutil import extend_digest
            from repro.kernelsim.ima import VIOLATION_EXTEND_VALUE

            for entry in entries:
                if _is_violation_entry(entry):
                    # Violations log zeros but extend 0xFF (kernel rule).
                    aggregate = extend_digest(
                        "sha256", aggregate, VIOLATION_EXTEND_VALUE
                    )
                else:
                    aggregate = extend_digest("sha256", aggregate, entry.template_hash)
            quoted = evidence.quote.pcr_values[IMA_PCR_INDEX]
            if aggregate != quoted:
                return self._fail_round(
                    slot, now,
                    [AttestationFailure(
                        now, FailureKind.PCR_MISMATCH,
                        f"IMA log replay {aggregate[:16]}... does not match quoted "
                        f"PCR10 {quoted[:16]}...",
                    )],
                    entries_processed=0, entries_skipped=len(entries),
                )
            slot.replay_aggregate = aggregate
            slot.verified_entries = evidence.offset + len(entries)

        # Step 4: policy evaluation (sequential; halts on failure unless M2).
        with tracer.span("verifier.policy_eval") as policy_span:
            failures: list[AttestationFailure] = []
            processed = 0
            skipped = 0
            for index, entry in enumerate(entries):
                verdict, policy_failure = slot.policy.evaluate_entry(entry)
                processed += 1
                if verdict.is_failure and policy_failure is not None:
                    failures.append(
                        AttestationFailure(
                            now, FailureKind.POLICY,
                            policy_failure.describe(), policy_failure=policy_failure,
                        )
                    )
                    if not self.continue_on_failure:
                        skipped = len(entries) - index - 1
                        break
            policy_span.set_attribute("entries", processed)
            policy_span.set_attribute("failures", len(failures))

        if failures:
            return self._fail_round(
                slot, now, failures,
                entries_processed=processed, entries_skipped=skipped,
            )

        result = AttestationResult(
            time=now, ok=True, entries_processed=processed, entries_skipped=0
        )
        slot.results.append(result)
        if self.audit is not None:
            self.audit.append(now, agent_id, ok=True, detail={"entries": processed})
        self.events.emit(
            now, "keylime.verifier", "attestation.ok",
            agent=agent_id, entries=processed,
        )
        return result

    def _fail_round(
        self,
        slot: _AgentSlot,
        now: float,
        failures: list[AttestationFailure],
        entries_processed: int,
        entries_skipped: int,
    ) -> AttestationResult:
        slot.failures.extend(failures)
        failure_counter = obs.get().registry.counter(
            "verifier_failures_total", "Attestation failures by kind", ("kind",),
        )
        for failure in failures:
            failure_counter.labels(kind=failure.kind.value).inc()
        result = AttestationResult(
            time=now, ok=False,
            entries_processed=entries_processed,
            entries_skipped=entries_skipped,
            failures=tuple(failures),
        )
        slot.results.append(result)
        if self.audit is not None:
            self.audit.append(
                now, slot.agent.agent_id, ok=False,
                detail={"failures": [failure.detail for failure in failures]},
            )
        if self.notifier is not None:
            for failure in failures:
                self.notifier.notify(
                    RevocationEvent(
                        time=now,
                        agent_id=slot.agent.agent_id,
                        reason=failure.kind.value,
                        detail=failure.detail,
                        path=(
                            failure.policy_failure.path
                            if failure.policy_failure is not None else None
                        ),
                    )
                )
        for failure in failures:
            self.events.emit(
                now, "keylime.verifier", f"attestation.failed.{failure.kind.value}",
                agent=slot.agent.agent_id, detail=failure.detail,
                path=(failure.policy_failure.path if failure.policy_failure else None),
            )
        if not self.continue_on_failure:
            slot.state = AgentState.FAILED
            self.events.emit(
                now, "keylime.verifier", "polling.halted",
                agent=slot.agent.agent_id,
            )
        return result
