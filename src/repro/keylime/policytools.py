"""Operator tooling for runtime policies: diff, statistics, lint.

The paper's operational lessons distil into tooling needs the upstream
project is now growing: operators must *see* what a policy update
changed (diff), understand what a policy covers (statistics), and be
warned about the exclusion patterns that created P1 in the first place
("any rules that elect to skip attestation should be cautiously used --
especially wildcards of directories or filesystems").  This module
provides those three tools.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.keylime.policy import RuntimePolicy, exclude_fast_path

#: Writable locations an exclude should never blanket-cover; each is a
#: place the paper (or its attack corpus) demonstrates payload staging.
RISKY_EXCLUDE_TARGETS = (
    ("/tmp", "P1: world-writable, on the root filesystem, attack-stageable"),
    ("/var/tmp", "P1: world-writable, persists across reboots"),
    ("/dev/shm", "P3-adjacent: world-writable tmpfs"),
    ("/home", "user-writable; payloads can hide in home directories"),
    ("/usr/local", "commonly root-writable without package management"),
)


@dataclass(frozen=True)
class PolicyDiff:
    """What changed between two policies."""

    added_paths: tuple[str, ...]
    removed_paths: tuple[str, ...]
    changed_paths: tuple[str, ...]  # present in both, digest sets differ
    added_excludes: tuple[str, ...]
    removed_excludes: tuple[str, ...]

    @property
    def is_empty(self) -> bool:
        """True when the policies are equivalent."""
        return not (
            self.added_paths or self.removed_paths or self.changed_paths
            or self.added_excludes or self.removed_excludes
        )

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"+{len(self.added_paths)} paths, -{len(self.removed_paths)} paths, "
            f"~{len(self.changed_paths)} changed, "
            f"excludes +{len(self.added_excludes)}/-{len(self.removed_excludes)}"
        )


def diff_policies(old: RuntimePolicy, new: RuntimePolicy) -> PolicyDiff:
    """Structural diff from *old* to *new*."""
    old_digests = old.digests
    new_digests = new.digests
    old_paths = set(old_digests)
    new_paths = set(new_digests)
    changed = tuple(sorted(
        path for path in old_paths & new_paths
        if set(old_digests[path]) != set(new_digests[path])
    ))
    return PolicyDiff(
        added_paths=tuple(sorted(new_paths - old_paths)),
        removed_paths=tuple(sorted(old_paths - new_paths)),
        changed_paths=changed,
        added_excludes=tuple(
            pattern for pattern in new.excludes if pattern not in old.excludes
        ),
        removed_excludes=tuple(
            pattern for pattern in old.excludes if pattern not in new.excludes
        ),
    )


@dataclass(frozen=True)
class PolicyStatistics:
    """Coverage statistics for one policy."""

    paths: int
    digests: int
    multi_digest_paths: int  # paths mid-update (several accepted hashes)
    excludes: int
    size_bytes: int
    top_directories: tuple[tuple[str, int], ...]


def policy_statistics(policy: RuntimePolicy, top_n: int = 10) -> PolicyStatistics:
    """Summarise what *policy* covers."""
    digests = policy.digests
    directories: dict[str, int] = {}
    multi = 0
    for path, values in digests.items():
        if len(values) > 1:
            multi += 1
        parts = path.rsplit("/", 1)
        directory = parts[0] if len(parts) == 2 and parts[0] else "/"
        directories[directory] = directories.get(directory, 0) + 1
    top = tuple(
        sorted(directories.items(), key=lambda item: (-item[1], item[0]))[:top_n]
    )
    return PolicyStatistics(
        paths=len(digests),
        digests=policy.line_count(),
        multi_digest_paths=multi,
        excludes=len(policy.excludes),
        size_bytes=policy.size_bytes(),
        top_directories=top,
    )


def policy_from_ima_log(
    log_entries,
    excludes: tuple[str, ...] = (),
    name: str = "bootstrap-policy",
) -> RuntimePolicy:
    """Bootstrap an allowlist from a trusted machine's measurement list.

    The equivalent of ``keylime-policy create runtime
    --ima-measurement-list``: every measured (path, digest) pair from a
    *known-good* run becomes an accepted entry.  Boot aggregates and
    violation entries are skipped -- neither is a file content to
    allowlist.  Inherits the method's caveat, which is the paper's
    starting point: the snapshot trusts whatever happened to run, and
    rots as soon as the system updates.
    """
    policy = RuntimePolicy(excludes=list(excludes), name=name)
    for entry in log_entries:
        if entry.path == "boot_aggregate":
            continue
        digest = entry.filedata_hash.split(":", 1)[-1]
        if digest == "0" * 64:
            continue  # violation entry
        if policy.is_excluded(entry.path):
            continue
        policy.add_digest(entry.path, digest)
    return policy


@dataclass(frozen=True)
class ExcludeWarning:
    """One lint finding about an exclude pattern."""

    pattern: str
    target: str
    reason: str

    def describe(self) -> str:
        """Human-readable warning line."""
        return f"exclude {self.pattern!r} covers {self.target}: {self.reason}"


def lint_excludes(policy: RuntimePolicy) -> list[ExcludeWarning]:
    """Flag exclude patterns that cover attack-stageable locations.

    A pattern is flagged when it matches a risky directory itself or a
    representative path inside it -- i.e. when executing a payload
    there would be skipped by the verifier, the precondition of the
    paper's P1 evasions (see docs/THREATMODEL.md, residual gap 3).

    Two additional findings target the verification pipeline's
    anchored-prefix fast path (``repro.keylime.policy.ExcludeIndex``):

    * an **unanchored** pattern (no leading ``^``) or a ``.*``-leading
      one can never be answered by the prefix index, so every IMA entry
      of every poll pays a regex scan for it;
    * a ``.*``-leading pattern additionally matches its suffix *anywhere*
      in the filesystem -- the wildcard-exclusion over-breadth the paper
      warns about, one directory short of P1.
    """
    warnings = []
    for pattern in policy.excludes:
        try:
            compiled = re.compile(pattern)
        except re.error:
            warnings.append(
                ExcludeWarning(
                    pattern=pattern, target="<invalid>",
                    reason="pattern does not compile; verifier behaviour undefined",
                )
            )
            continue
        for target, reason in RISKY_EXCLUDE_TARGETS:
            probe = f"{target}/payload"
            if compiled.match(target) or compiled.match(probe):
                warnings.append(
                    ExcludeWarning(pattern=pattern, target=target, reason=reason)
                )
        stripped = pattern[1:] if pattern.startswith("^") else pattern
        if stripped.startswith(".*"):
            warnings.append(
                ExcludeWarning(
                    pattern=pattern, target="<fast-path>",
                    reason=(
                        ".*-leading pattern matches anywhere in the tree "
                        "(wildcard over-breadth, P1-adjacent) and defeats "
                        "the anchored-prefix fast path: every entry pays "
                        "a regex scan"
                    ),
                )
            )
        elif not pattern.startswith("^"):
            warnings.append(
                ExcludeWarning(
                    pattern=pattern, target="<fast-path>",
                    reason=(
                        "unanchored pattern defeats the anchored-prefix "
                        "fast path; anchor it (^/dir(/.*)?$) so the "
                        "exclude index can answer it without a regex scan"
                    ),
                )
            )
    return warnings


def fast_path_coverage(policy: RuntimePolicy) -> tuple[int, int]:
    """(fast-path patterns, regex-fallback patterns) for *policy*.

    A convenience wrapper over the policy's compiled
    :class:`~repro.keylime.policy.ExcludeIndex`; the classification
    itself is :func:`repro.keylime.policy.exclude_fast_path`.
    """
    fast = sum(1 for pattern in policy.excludes if exclude_fast_path(pattern))
    return fast, len(policy.excludes) - fast
