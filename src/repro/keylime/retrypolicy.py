"""Retry policy for attestation rounds: backoff, timeouts, and the line
retries must never cross.

The paper's FP study shows how easily operational noise is misread as
integrity failure; the P2 study shows the opposite disease (halt on the
first anomaly and go blind).  The retry layer draws the line between
the two with a *hard classifier*:

* :class:`~repro.common.errors.TransientTransportError` -- drop, delay
  past the attempt timeout, partition -- is **retryable**: the wire
  failed, the prover said nothing, so re-asking is sound.
* :class:`~repro.common.errors.IntegrityError` -- corrupt payload,
  stale replay, bad quote -- is **never retried** and fails the round
  exactly as an un-retried round would.  Retrying would hand an
  attacker a laundering primitive: tamper, get "re-asked", serve clean
  evidence, repeat.  (See docs/THREATMODEL.md.)

Backoff is capped exponential with deterministic jitter drawn from a
:class:`repro.common.rng.SeededRng` stream, so a seeded chaos run's
retry schedule is reproducible byte-for-byte.  The backoff durations
are computed and *recorded* (metrics, span attributes) but do not
advance the simulated clock: the discrete-event scheduler owns time,
and retries resolve within their poll tick -- the per-attempt timeout
is enforced against injected delay by the fault layer instead.  A real
deployment passes a ``sleep`` callable to actually wait.

Observability: every attempt lands in
``verifier_retry_attempts_total{outcome}`` (``ok`` / ``transient`` /
``exhausted`` / ``integrity``) and every *re*-attempt runs inside a
``verifier.retry`` span (attributes: attempt number, backoff) nested
under the enclosing ``verifier.poll``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.common.errors import IntegrityError, TransientTransportError
from repro.common.rng import SeededRng

T = TypeVar("T")

#: Default per-attempt delivery timeout (seconds of simulated latency).
DEFAULT_ATTEMPT_TIMEOUT = 2.0


class RetryBudgetExceeded(TransientTransportError):
    """Every attempt failed transiently; the round is degraded.

    Still a :class:`TransientTransportError` (callers that only care
    about the taxonomy need one ``except``), but carries the attempt
    count and the final error for events and metrics.
    """

    def __init__(self, attempts: int, last: TransientTransportError) -> None:
        super().__init__(
            f"transport failed {attempts} attempt(s), giving up: {last}",
            kind=last.kind,
        )
        self.attempts = attempts
        self.last = last


def classify(exc: Exception) -> str:
    """The hard classifier: ``"transient"``, ``"integrity"`` or ``"other"``.

    Ordering matters conceptually: nothing may ever make an integrity
    failure look retryable, so :class:`IntegrityError` wins even if a
    future subclass were to multiply-inherit both bases.
    """
    if isinstance(exc, IntegrityError):
        return "integrity"
    if isinstance(exc, TransientTransportError):
        return "transient"
    return "other"


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``max_attempts`` bounds total tries (1 = no retries).  Attempt *n*'s
    backoff before retrying is ``min(cap, base * 2**(n-1))`` scaled by a
    jitter factor uniform in ``[1 - jitter, 1 + jitter]`` drawn from the
    caller's seeded stream.  ``attempt_timeout`` is the per-attempt
    delivery deadline the fault layer enforces against injected delay.
    """

    max_attempts: int = 4
    base_backoff: float = 0.5
    backoff_cap: float = 8.0
    jitter: float = 0.1
    attempt_timeout: float = DEFAULT_ATTEMPT_TIMEOUT

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff < 0 or self.backoff_cap < 0:
            raise ValueError("backoff durations must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff_for(self, attempt: int, rng: SeededRng | None = None) -> float:
        """Seconds to back off after failed attempt *attempt* (1-based)."""
        raw = min(self.backoff_cap, self.base_backoff * (2.0 ** (attempt - 1)))
        if self.jitter and rng is not None:
            raw *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return raw

    def run(
        self,
        attempt_fn: Callable[[], T],
        rng: SeededRng | None = None,
        tracer=None,
        registry=None,
        sleep: Callable[[float], None] | None = None,
    ) -> T:
        """Execute *attempt_fn* under this policy.

        Returns its result; raises :class:`RetryBudgetExceeded` when
        every attempt failed transiently, and re-raises
        :class:`IntegrityError` immediately (never retried).  *rng* is
        the jitter stream -- with no faults in play it is never drawn
        from, which preserves clean-run bit-identity.
        """
        attempts_counter = None
        if registry is not None:
            attempts_counter = registry.counter(
                "verifier_retry_attempts_total",
                "Attestation wire attempts by outcome",
                labelnames=("outcome",),
            )

        def count(outcome: str) -> None:
            if attempts_counter is not None:
                attempts_counter.labels(outcome=outcome).inc()

        last_error: TransientTransportError | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                if attempt == 1:
                    result = attempt_fn()
                else:
                    backoff = self.backoff_for(attempt - 1, rng)
                    if sleep is not None:
                        sleep(backoff)
                    if tracer is None:
                        result = attempt_fn()
                    else:
                        with tracer.span(
                            "verifier.retry", attempt=attempt,
                            backoff_seconds=round(backoff, 4),
                        ) as span:
                            result = attempt_fn()
                            span.set_attribute("recovered", True)
            except IntegrityError:
                count("integrity")
                raise
            except TransientTransportError as exc:
                last_error = exc
                if attempt == self.max_attempts:
                    count("exhausted")
                    raise RetryBudgetExceeded(attempt, exc) from exc
                count("transient")
                continue
            count("ok")
            return result
        raise RetryBudgetExceeded(self.max_attempts, last_error)  # unreachable
