"""Keylime runtime policies: allowlist + excludes.

A runtime policy is what the verifier checks IMA entries against:

* ``digests`` -- path -> list of accepted SHA-256 hex digests (a path
  accumulates several digests as updates append new versions, which is
  how the dynamic generator keeps the system in-policy *during* the
  update window);
* ``excludes`` -- regular expressions; an IMA entry whose path matches
  any of them is skipped entirely.

The exclude list in :data:`IBM_STYLE_EXCLUDES` reproduces the study's
initial policy: it skips ``/tmp`` and friends "to improve attestation
efficiency and reduce false positives" -- and is exactly the paper's
**P1**.

The JSON encoding follows the shape of Keylime's runtime policy format
(a ``digests`` map and an ``excludes`` list) so the policy files the
experiments write look like the real thing.
"""

from __future__ import annotations

import itertools
import json
import re
from dataclasses import dataclass
from enum import Enum

from repro.common.errors import ConfigurationError
from repro.common.hexutil import is_hex_digest, sha256_hex
from repro.kernelsim.ima import ImaLogEntry, VIOLATION_TEMPLATE_HASH
from repro.kernelsim.kernel import Machine

#: Process-wide ids so verdict caches can key on a policy's identity
#: without holding a reference to it.
_POLICY_UIDS = itertools.count(1)

#: Characters that disqualify an exclude body from the literal fast path.
_REGEX_METACHARS = frozenset(".^$*+?{}[]|()\\")


def exclude_fast_path(pattern: str) -> tuple[str, str] | None:
    """Decompose an anchored-literal exclude into its fast-path form.

    Returns ``(kind, literal)`` for the recognised shapes, ``None`` when
    the pattern needs the regex fallback:

    * ``^LIT$`` -> ``("exact", LIT)`` -- the path itself;
    * ``^LIT(/.*)?$`` -> ``("tree", LIT)`` -- the path or anything below it
      (the shape of every directory exclude in :data:`IBM_STYLE_EXCLUDES`);
    * ``^LIT/.*$`` -> ``("children", LIT)`` -- strictly below the path;
    * ``^LIT`` -> ``("prefix", LIT)`` -- raw prefix (no end anchor).
    """
    if not pattern.startswith("^"):
        return None
    body = pattern[1:]
    if body.endswith("(/.*)?$"):
        kind, body = "tree", body[: -len("(/.*)?$")]
    elif body.endswith("/.*$"):
        kind, body = "children", body[: -len("/.*$")]
    elif body.endswith("$"):
        kind, body = "exact", body[:-1]
    else:
        kind = "prefix"
    if not body or any(ch in _REGEX_METACHARS for ch in body):
        return None
    return kind, body


class ExcludeIndex:
    """Compiled exclude patterns behind a two-tier matcher.

    Anchored-literal patterns (the overwhelmingly common shape -- see
    :func:`exclude_fast_path`) are answered with set membership and
    string-prefix checks; everything else falls back to compiled
    regexes, preserving ``re.match`` semantics exactly.
    """

    def __init__(self, patterns: list[str] | None = None) -> None:
        self.rebuild(patterns or [])

    def rebuild(self, patterns: list[str]) -> None:
        """Recompile the index from scratch (mutations are rare)."""
        exact: set[str] = set()
        prefixes: list[str] = []
        regexes: list[re.Pattern[str]] = []
        fast = 0
        for pattern in patterns:
            decomposed = exclude_fast_path(pattern)
            if decomposed is None:
                regexes.append(re.compile(pattern))
                continue
            fast += 1
            kind, literal = decomposed
            if kind == "exact":
                exact.add(literal)
            elif kind == "tree":
                exact.add(literal)
                prefixes.append(literal + "/")
            elif kind == "children":
                prefixes.append(literal + "/")
            else:  # prefix
                prefixes.append(literal)
        self._exact = exact
        self._prefixes = tuple(prefixes)
        self._regexes = tuple(regexes)
        self.fast_path_count = fast
        self.fallback_count = len(regexes)

    def matches(self, path: str) -> bool:
        """True when any exclude pattern matches *path*."""
        if path in self._exact:
            return True
        for prefix in self._prefixes:
            if path.startswith(prefix):
                return True
        for regex in self._regexes:
            if regex.match(path):
                return True
        return False

#: Exclude patterns of the study's initial (IBM Research) policy.  The
#: /tmp exclusion is P1; the others are the usual noise suppressors.
IBM_STYLE_EXCLUDES = (
    r"^/tmp(/.*)?$",
    r"^/var/tmp(/.*)?$",
    r"^/run(/.*)?$",
    r"^/var/log(/.*)?$",
    r"^/usr/local(/.*)?$",
    r"^/home/[^/]+/\.cache(/.*)?$",
)

#: Entry name IMA gives the first post-boot record.
BOOT_AGGREGATE_PATH = "boot_aggregate"


class EntryVerdict(Enum):
    """Per-entry evaluation outcome."""

    ACCEPT = "accept"
    EXCLUDED = "excluded"
    BOOT_AGGREGATE = "boot_aggregate"
    HASH_MISMATCH = "hash_mismatch"
    NOT_IN_POLICY = "not_in_policy"
    VIOLATION = "violation"

    @property
    def is_failure(self) -> bool:
        """True for the verdicts that fail attestation."""
        return self in (
            EntryVerdict.HASH_MISMATCH,
            EntryVerdict.NOT_IN_POLICY,
            EntryVerdict.VIOLATION,
        )


@dataclass(frozen=True)
class PolicyFailure:
    """One failed policy check (becomes an attestation failure)."""

    verdict: EntryVerdict
    path: str
    measured_digest: str
    expected_digests: tuple[str, ...] = ()

    def describe(self) -> str:
        """Human-readable description, mirroring Keylime's error strings."""
        if self.verdict is EntryVerdict.HASH_MISMATCH:
            return (
                f"hash mismatch for {self.path}: measured "
                f"{self.measured_digest[:16]}..., policy has "
                f"{len(self.expected_digests)} accepted digest(s)"
            )
        if self.verdict is EntryVerdict.VIOLATION:
            return f"IMA measurement violation: {self.path}"
        return f"file not found in policy: {self.path}"


class RuntimePolicy:
    """An allowlist policy with exclude patterns."""

    def __init__(
        self,
        digests: dict[str, list[str]] | None = None,
        excludes: list[str] | None = None,
        name: str = "runtime-policy",
    ) -> None:
        self.name = name
        self.uid = next(_POLICY_UIDS)
        self.generation = 0
        self._digests: dict[str, list[str]] = {}
        self._digest_sets: dict[str, set[str]] = {}
        for path, values in (digests or {}).items():
            for value in values:
                self.add_digest(path, value)
        self.excludes: list[str] = list(excludes or [])
        self._exclude_index = ExcludeIndex(self.excludes)
        self.generation = 0  # construction is generation zero

    # -- construction / mutation ------------------------------------------

    def bump_generation(self) -> int:
        """Advance the generation stamp, invalidating cached verdicts.

        Every mutating method calls this; :class:`VerdictCache` keys on
        ``(uid, generation, ...)`` so a bump makes all previously cached
        verdicts unreachable without touching the cache itself.
        """
        self.generation += 1
        return self.generation

    def add_digest(self, path: str, digest: str) -> bool:
        """Add an accepted digest for *path*; returns True when new."""
        if not is_hex_digest(digest, "sha256"):
            raise ConfigurationError(
                f"policy digest for {path!r} is not sha256 hex: {digest!r}"
            )
        bucket = self._digest_sets.get(path)
        if bucket is not None and digest in bucket:
            return False
        if bucket is None:
            self._digest_sets[path] = {digest}
            self._digests[path] = [digest]
        else:
            bucket.add(digest)
            self._digests[path].append(digest)
        self.bump_generation()
        return True

    def add_exclude(self, pattern: str) -> None:
        """Add an exclude regex."""
        self.excludes.append(pattern)
        self._exclude_index.rebuild(self.excludes)
        self.bump_generation()

    def remove_exclude(self, pattern: str) -> None:
        """Remove an exclude regex (mitigation M1 narrows the excludes)."""
        if pattern in self.excludes:
            self.excludes.remove(pattern)
            self._exclude_index.rebuild(self.excludes)
            self.bump_generation()

    def merge_measurements(self, measurements: dict[str, str]) -> int:
        """Append path -> digest pairs; returns the number of new entries.

        This is the dynamic generator's append operation: existing
        digests are retained so the machine stays in-policy during the
        update window (Section III-C, policy-file consistency).
        """
        added = 0
        for path, digest in measurements.items():
            if self.add_digest(path, digest):
                added += 1
        return added

    def dedupe_for_paths(self, keep: dict[str, str]) -> int:
        """Post-update dedup: for each path in *keep*, drop other digests.

        Returns the number of digests removed.  The paper performs this
        after the update settles, shrinking the policy back down.

        A path whose wanted digest is *not* already in the policy is
        left untouched: dedup only ever narrows the allowlist, it never
        admits content the generator has not measured (otherwise an
        out-of-band install -- the incident scenario -- would be
        laundered into the policy by the cleanup step).
        """
        removed = 0
        for path, digest in keep.items():
            bucket = self._digest_sets.get(path)
            if bucket is None or digest not in bucket:
                continue
            before = len(bucket)
            self._digests[path] = [digest]
            self._digest_sets[path] = {digest}
            removed += before - 1
        if removed:
            self.bump_generation()
        return removed

    # -- queries ------------------------------------------------------------

    @property
    def digests(self) -> dict[str, list[str]]:
        """path -> accepted digests (a shallow copy)."""
        return {path: list(values) for path, values in self._digests.items()}

    def digests_for(self, path: str) -> tuple[str, ...]:
        """Accepted digests for *path* (empty when absent)."""
        return tuple(self._digests.get(path, ()))

    def covers_path(self, path: str) -> bool:
        """True when the policy has an allowlist entry for *path*."""
        return path in self._digests

    def is_excluded(self, path: str) -> bool:
        """True when any exclude pattern matches *path*.

        Answered by the :class:`ExcludeIndex` -- anchored-literal
        patterns cost a set/prefix probe, the rest a regex scan.
        """
        return self._exclude_index.matches(path)

    @property
    def exclude_index(self) -> ExcludeIndex:
        """The compiled exclude matcher (introspection / lint)."""
        return self._exclude_index

    def line_count(self) -> int:
        """Number of (path, digest) lines -- the unit of Fig 5 / E9."""
        return sum(len(values) for values in self._digests.values())

    def size_bytes(self) -> int:
        """Approximate on-disk size: one '<sha256>  <path>' line per digest."""
        total = 0
        for path, values in self._digests.items():
            total += len(values) * (64 + 2 + len(path) + 1)
        return total

    # -- evaluation -----------------------------------------------------------

    def evaluate_entry(self, entry: ImaLogEntry) -> tuple[EntryVerdict, PolicyFailure | None]:
        """Evaluate one IMA entry; returns (verdict, failure-or-None)."""
        if entry.path == BOOT_AGGREGATE_PATH:
            return EntryVerdict.BOOT_AGGREGATE, None
        measured = entry.filedata_hash.split(":", 1)[-1]
        if measured == "0" * 64:
            # An IMA violation (ToMToU / open-writers): the measured
            # content is untrustworthy by the kernel's own admission.
            # The path may carry a " (ToMToU)" suffix; excludes apply
            # to the file path itself.
            bare_path = entry.path.split(" (", 1)[0]
            if self.is_excluded(bare_path):
                return EntryVerdict.EXCLUDED, None
            failure = PolicyFailure(
                verdict=EntryVerdict.VIOLATION,
                path=entry.path,
                measured_digest=measured,
            )
            return EntryVerdict.VIOLATION, failure
        if self.is_excluded(entry.path):
            return EntryVerdict.EXCLUDED, None
        accepted = self._digest_sets.get(entry.path)
        if accepted is None:
            failure = PolicyFailure(
                verdict=EntryVerdict.NOT_IN_POLICY,
                path=entry.path,
                measured_digest=measured,
            )
            return EntryVerdict.NOT_IN_POLICY, failure
        if measured not in accepted:
            failure = PolicyFailure(
                verdict=EntryVerdict.HASH_MISMATCH,
                path=entry.path,
                measured_digest=measured,
                expected_digests=tuple(self._digests[entry.path]),
            )
            return EntryVerdict.HASH_MISMATCH, failure
        return EntryVerdict.ACCEPT, None

    # -- serialisation -----------------------------------------------------

    def to_json(self) -> str:
        """Serialise in the shape of Keylime's runtime policy JSON."""
        payload = {
            "meta": {"version": 1, "generator": "repro", "name": self.name},
            "digests": {path: values for path, values in sorted(self._digests.items())},
            "excludes": list(self.excludes),
        }
        return json.dumps(payload, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "RuntimePolicy":
        """Parse a policy serialised by :meth:`to_json`."""
        payload = json.loads(blob)
        return cls(
            digests=payload.get("digests", {}),
            excludes=payload.get("excludes", []),
            name=payload.get("meta", {}).get("name", "runtime-policy"),
        )

    def copy(self, name: str | None = None) -> "RuntimePolicy":
        """Deep copy (experiments snapshot policies before mutating)."""
        return RuntimePolicy(
            digests=self.digests,
            excludes=list(self.excludes),
            name=name or self.name,
        )


class VerdictCache:
    """Fleet-wide memo of per-entry policy verdicts.

    A policy verdict is a pure function of ``(policy state, path,
    filedata hash)``, and a fleet of same-distro nodes measures nearly
    identical files -- so evaluation cost should be O(unique digests),
    not O(agents x entries).  Buckets are keyed by ``(policy.uid,
    policy.generation)``: any policy mutation (or a verifier
    ``update_policy`` push) bumps the generation, making every
    previously cached verdict unreachable without an explicit flush.

    Within a generation, entries are keyed by their IMA **template
    hash** -- already a collision-resistant digest of ``(filedata hash,
    path)``, and already verified against the log by the replay stage
    before policy evaluation sees the entry -- so a lookup costs one
    string-keyed ``dict.get``.  Violation entries are the one exception
    (the kernel logs them with a constant zero template), so their key
    gets the path appended; see :meth:`entry_key`.

    The cache stores the exact ``(EntryVerdict, PolicyFailure | None)``
    pair :meth:`RuntimePolicy.evaluate_entry` returns; both are
    immutable, so sharing across agents is safe.  Size is bounded by
    FIFO eviction (stale generations age out with it).
    """

    def __init__(self, max_entries: int = 262_144) -> None:
        if max_entries < 1:
            raise ConfigurationError("verdict cache needs at least one slot")
        self.max_entries = max_entries
        #: ``(policy uid, generation) -> {entry key -> outcome}``.
        #: Read-only to callers; all writes go through :meth:`insert`.
        self.store: dict[
            tuple[int, int], dict[str, tuple[EntryVerdict, PolicyFailure | None]]
        ] = {}
        self._size = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return self._size

    @staticmethod
    def entry_key(entry: ImaLogEntry) -> str:
        """Bucket key for *entry*: its (verified) template hash.

        Violation entries all share the zero template, but their
        verdict depends on the path (excludes apply), so the path is
        appended to keep them distinct.
        """
        key = entry.template_hash
        if key == VIOLATION_TEMPLATE_HASH:
            key += entry.path
        return key

    def view(self, policy: RuntimePolicy) -> dict:
        """The live lookup table for *policy*'s current generation.

        The pipeline's hot loop fetches this once per round and probes
        it directly -- one ``dict.get`` per entry, no method call.
        """
        gen_key = (policy.uid, policy.generation)
        bucket = self.store.get(gen_key)
        if bucket is None:
            bucket = self.store[gen_key] = {}
        return bucket

    def insert(
        self, policy: RuntimePolicy, entry: ImaLogEntry
    ) -> tuple[EntryVerdict, PolicyFailure | None]:
        """Evaluate *entry* uncached and memoise it (the miss path)."""
        self.misses += 1
        outcome = policy.evaluate_entry(entry)
        if self._size >= self.max_entries:
            while True:  # oldest entry of the oldest non-empty bucket
                gen_key, bucket = next(iter(self.store.items()))
                if bucket:
                    del bucket[next(iter(bucket))]
                    break
                del self.store[gen_key]
            self.evictions += 1
            self._size -= 1
        self.view(policy)[self.entry_key(entry)] = outcome
        self._size += 1
        return outcome

    def evaluate(
        self, policy: RuntimePolicy, entry: ImaLogEntry
    ) -> tuple[EntryVerdict, PolicyFailure | None]:
        """Evaluate *entry* against *policy*, memoised across agents."""
        cached = self.view(policy).get(self.entry_key(entry))
        if cached is not None:
            self.hits += 1
            return cached
        return self.insert(policy, entry)

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every cached verdict (stats are kept)."""
        self.store.clear()
        self._size = 0


def build_policy_from_machine(
    machine: Machine,
    excludes: tuple[str, ...] = IBM_STYLE_EXCLUDES,
    root: str = "/",
    name: str = "initial-policy",
) -> RuntimePolicy:
    """The study's initial policy: hash every executable on the machine.

    Reproduces the "bash script recursively goes into each directory
    ... takes the SHA256 hash for executable files" construction,
    including its blind spots: whatever is *currently* on disk is
    trusted, and excluded directories are never listed.
    """
    policy = RuntimePolicy(excludes=list(excludes), name=name)
    for stat in machine.vfs.walk(root):
        if not stat.executable:
            continue
        if policy.is_excluded(stat.path):
            continue
        content = machine.vfs.read_file(stat.path)
        policy.add_digest(stat.path, sha256_hex(content))
    return policy
