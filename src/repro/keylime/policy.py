"""Keylime runtime policies: allowlist + excludes.

A runtime policy is what the verifier checks IMA entries against:

* ``digests`` -- path -> list of accepted SHA-256 hex digests (a path
  accumulates several digests as updates append new versions, which is
  how the dynamic generator keeps the system in-policy *during* the
  update window);
* ``excludes`` -- regular expressions; an IMA entry whose path matches
  any of them is skipped entirely.

The exclude list in :data:`IBM_STYLE_EXCLUDES` reproduces the study's
initial policy: it skips ``/tmp`` and friends "to improve attestation
efficiency and reduce false positives" -- and is exactly the paper's
**P1**.

The JSON encoding follows the shape of Keylime's runtime policy format
(a ``digests`` map and an ``excludes`` list) so the policy files the
experiments write look like the real thing.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from enum import Enum

from repro.common.errors import ConfigurationError
from repro.common.hexutil import is_hex_digest, sha256_hex
from repro.kernelsim.ima import ImaLogEntry
from repro.kernelsim.kernel import Machine

#: Exclude patterns of the study's initial (IBM Research) policy.  The
#: /tmp exclusion is P1; the others are the usual noise suppressors.
IBM_STYLE_EXCLUDES = (
    r"^/tmp(/.*)?$",
    r"^/var/tmp(/.*)?$",
    r"^/run(/.*)?$",
    r"^/var/log(/.*)?$",
    r"^/usr/local(/.*)?$",
    r"^/home/[^/]+/\.cache(/.*)?$",
)

#: Entry name IMA gives the first post-boot record.
BOOT_AGGREGATE_PATH = "boot_aggregate"


class EntryVerdict(Enum):
    """Per-entry evaluation outcome."""

    ACCEPT = "accept"
    EXCLUDED = "excluded"
    BOOT_AGGREGATE = "boot_aggregate"
    HASH_MISMATCH = "hash_mismatch"
    NOT_IN_POLICY = "not_in_policy"
    VIOLATION = "violation"

    @property
    def is_failure(self) -> bool:
        """True for the verdicts that fail attestation."""
        return self in (
            EntryVerdict.HASH_MISMATCH,
            EntryVerdict.NOT_IN_POLICY,
            EntryVerdict.VIOLATION,
        )


@dataclass(frozen=True)
class PolicyFailure:
    """One failed policy check (becomes an attestation failure)."""

    verdict: EntryVerdict
    path: str
    measured_digest: str
    expected_digests: tuple[str, ...] = ()

    def describe(self) -> str:
        """Human-readable description, mirroring Keylime's error strings."""
        if self.verdict is EntryVerdict.HASH_MISMATCH:
            return (
                f"hash mismatch for {self.path}: measured "
                f"{self.measured_digest[:16]}..., policy has "
                f"{len(self.expected_digests)} accepted digest(s)"
            )
        if self.verdict is EntryVerdict.VIOLATION:
            return f"IMA measurement violation: {self.path}"
        return f"file not found in policy: {self.path}"


class RuntimePolicy:
    """An allowlist policy with exclude patterns."""

    def __init__(
        self,
        digests: dict[str, list[str]] | None = None,
        excludes: list[str] | None = None,
        name: str = "runtime-policy",
    ) -> None:
        self.name = name
        self._digests: dict[str, list[str]] = {}
        for path, values in (digests or {}).items():
            for value in values:
                self.add_digest(path, value)
        self.excludes: list[str] = list(excludes or [])
        self._compiled = [re.compile(pattern) for pattern in self.excludes]

    # -- construction / mutation ------------------------------------------

    def add_digest(self, path: str, digest: str) -> bool:
        """Add an accepted digest for *path*; returns True when new."""
        if not is_hex_digest(digest, "sha256"):
            raise ConfigurationError(
                f"policy digest for {path!r} is not sha256 hex: {digest!r}"
            )
        bucket = self._digests.setdefault(path, [])
        if digest in bucket:
            return False
        bucket.append(digest)
        return True

    def add_exclude(self, pattern: str) -> None:
        """Add an exclude regex."""
        self.excludes.append(pattern)
        self._compiled.append(re.compile(pattern))

    def remove_exclude(self, pattern: str) -> None:
        """Remove an exclude regex (mitigation M1 narrows the excludes)."""
        if pattern in self.excludes:
            index = self.excludes.index(pattern)
            del self.excludes[index]
            del self._compiled[index]

    def merge_measurements(self, measurements: dict[str, str]) -> int:
        """Append path -> digest pairs; returns the number of new entries.

        This is the dynamic generator's append operation: existing
        digests are retained so the machine stays in-policy during the
        update window (Section III-C, policy-file consistency).
        """
        added = 0
        for path, digest in measurements.items():
            if self.add_digest(path, digest):
                added += 1
        return added

    def dedupe_for_paths(self, keep: dict[str, str]) -> int:
        """Post-update dedup: for each path in *keep*, drop other digests.

        Returns the number of digests removed.  The paper performs this
        after the update settles, shrinking the policy back down.

        A path whose wanted digest is *not* already in the policy is
        left untouched: dedup only ever narrows the allowlist, it never
        admits content the generator has not measured (otherwise an
        out-of-band install -- the incident scenario -- would be
        laundered into the policy by the cleanup step).
        """
        removed = 0
        for path, digest in keep.items():
            bucket = self._digests.get(path)
            if bucket is None or digest not in bucket:
                continue
            before = len(bucket)
            self._digests[path] = [digest]
            removed += before - 1
        return removed

    # -- queries ------------------------------------------------------------

    @property
    def digests(self) -> dict[str, list[str]]:
        """path -> accepted digests (a shallow copy)."""
        return {path: list(values) for path, values in self._digests.items()}

    def digests_for(self, path: str) -> tuple[str, ...]:
        """Accepted digests for *path* (empty when absent)."""
        return tuple(self._digests.get(path, ()))

    def covers_path(self, path: str) -> bool:
        """True when the policy has an allowlist entry for *path*."""
        return path in self._digests

    def is_excluded(self, path: str) -> bool:
        """True when any exclude regex matches *path*."""
        return any(pattern.match(path) for pattern in self._compiled)

    def line_count(self) -> int:
        """Number of (path, digest) lines -- the unit of Fig 5 / E9."""
        return sum(len(values) for values in self._digests.values())

    def size_bytes(self) -> int:
        """Approximate on-disk size: one '<sha256>  <path>' line per digest."""
        total = 0
        for path, values in self._digests.items():
            total += len(values) * (64 + 2 + len(path) + 1)
        return total

    # -- evaluation -----------------------------------------------------------

    def evaluate_entry(self, entry: ImaLogEntry) -> tuple[EntryVerdict, PolicyFailure | None]:
        """Evaluate one IMA entry; returns (verdict, failure-or-None)."""
        if entry.path == BOOT_AGGREGATE_PATH:
            return EntryVerdict.BOOT_AGGREGATE, None
        measured = entry.filedata_hash.split(":", 1)[-1]
        if measured == "0" * 64:
            # An IMA violation (ToMToU / open-writers): the measured
            # content is untrustworthy by the kernel's own admission.
            # The path may carry a " (ToMToU)" suffix; excludes apply
            # to the file path itself.
            bare_path = entry.path.split(" (", 1)[0]
            if self.is_excluded(bare_path):
                return EntryVerdict.EXCLUDED, None
            failure = PolicyFailure(
                verdict=EntryVerdict.VIOLATION,
                path=entry.path,
                measured_digest=measured,
            )
            return EntryVerdict.VIOLATION, failure
        if self.is_excluded(entry.path):
            return EntryVerdict.EXCLUDED, None
        accepted = self._digests.get(entry.path)
        if accepted is None:
            failure = PolicyFailure(
                verdict=EntryVerdict.NOT_IN_POLICY,
                path=entry.path,
                measured_digest=measured,
            )
            return EntryVerdict.NOT_IN_POLICY, failure
        if measured not in accepted:
            failure = PolicyFailure(
                verdict=EntryVerdict.HASH_MISMATCH,
                path=entry.path,
                measured_digest=measured,
                expected_digests=tuple(accepted),
            )
            return EntryVerdict.HASH_MISMATCH, failure
        return EntryVerdict.ACCEPT, None

    # -- serialisation -----------------------------------------------------

    def to_json(self) -> str:
        """Serialise in the shape of Keylime's runtime policy JSON."""
        payload = {
            "meta": {"version": 1, "generator": "repro", "name": self.name},
            "digests": {path: values for path, values in sorted(self._digests.items())},
            "excludes": list(self.excludes),
        }
        return json.dumps(payload, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "RuntimePolicy":
        """Parse a policy serialised by :meth:`to_json`."""
        payload = json.loads(blob)
        return cls(
            digests=payload.get("digests", {}),
            excludes=payload.get("excludes", []),
            name=payload.get("meta", {}).get("name", "runtime-policy"),
        )

    def copy(self, name: str | None = None) -> "RuntimePolicy":
        """Deep copy (experiments snapshot policies before mutating)."""
        return RuntimePolicy(
            digests=self.digests,
            excludes=list(self.excludes),
            name=name or self.name,
        )


def build_policy_from_machine(
    machine: Machine,
    excludes: tuple[str, ...] = IBM_STYLE_EXCLUDES,
    root: str = "/",
    name: str = "initial-policy",
) -> RuntimePolicy:
    """The study's initial policy: hash every executable on the machine.

    Reproduces the "bash script recursively goes into each directory
    ... takes the SHA256 hash for executable files" construction,
    including its blind spots: whatever is *currently* on disk is
    trusted, and excluded directories are never listed.
    """
    policy = RuntimePolicy(excludes=list(excludes), name=name)
    for stat in machine.vfs.walk(root):
        if not stat.executable:
            continue
        if policy.is_excluded(stat.path):
            continue
        content = machine.vfs.read_file(stat.path)
        policy.add_digest(stat.path, sha256_hex(content))
    return policy
