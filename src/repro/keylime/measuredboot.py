"""Measured boot attestation: golden PCR values for PCRs 0-7.

Continuous integrity attestation "picks up where the measured boot left
off" (Section II) -- but the boot itself still has to be checked, or an
attacker who swaps the kernel or bootloader gets a clean slate to lie
from.  Keylime supports this with reference ("golden") values for the
boot PCRs; this module implements that check:

* :func:`capture_golden` snapshots a trusted reference machine's boot
  PCRs into a :class:`MeasuredBootPolicy` (the way operators build
  golden values from a known-good image);
* the verifier (when given the policy) widens its quote selection to
  PCRs 0-7 and compares, flagging any divergence as a measured-boot
  failure -- which is how a kernel swap is caught *at the next poll
  after reboot* even though the runtime allowlist knows nothing about
  kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernelsim.kernel import Machine
from repro.tpm.pcr import BOOT_PCRS


@dataclass(frozen=True)
class BootPcrMismatch:
    """One diverging boot PCR."""

    index: int
    expected: str
    actual: str


@dataclass
class MeasuredBootPolicy:
    """Golden values for the boot PCRs.

    ``golden`` maps PCR index -> accepted hex values.  A PCR may accept
    several values (e.g. two approved kernel versions during a staged
    rollout); add alternatives with :meth:`allow`.
    """

    algorithm: str = "sha256"
    golden: dict[int, list[str]] = field(default_factory=dict)

    def allow(self, index: int, value_hex: str) -> bool:
        """Accept *value_hex* for PCR *index*; returns True when new."""
        bucket = self.golden.setdefault(index, [])
        if value_hex in bucket:
            return False
        bucket.append(value_hex)
        return True

    @property
    def pcr_selection(self) -> list[int]:
        """The PCRs the verifier must include in its quote."""
        return sorted(self.golden)

    def verify(self, pcr_values: dict[int, str]) -> list[BootPcrMismatch]:
        """Compare quoted values against the golden set.

        Returns the list of mismatches (empty means the boot chain is
        the approved one).  A golden PCR missing from *pcr_values* is a
        mismatch -- the verifier must not silently narrow the check.
        """
        mismatches = []
        for index, accepted in sorted(self.golden.items()):
            actual = pcr_values.get(index)
            if actual is None or actual not in accepted:
                mismatches.append(
                    BootPcrMismatch(
                        index=index,
                        expected=accepted[0] if accepted else "",
                        actual=actual if actual is not None else "<absent>",
                    )
                )
        return mismatches


def capture_golden(machine: Machine, algorithm: str = "sha256") -> MeasuredBootPolicy:
    """Snapshot a booted reference machine's boot PCRs as golden values."""
    policy = MeasuredBootPolicy(algorithm=algorithm)
    for index in BOOT_PCRS:
        policy.allow(index, machine.tpm.read_pcr(index, algorithm=algorithm))
    return policy


def golden_for_kernel(
    reference: Machine, kernel_version: str, algorithm: str = "sha256"
) -> MeasuredBootPolicy:
    """Golden values for a reference machine re-booted into *kernel_version*.

    Used during staged kernel rollouts: operators pre-compute the new
    kernel's boot PCRs on a canary and :meth:`MeasuredBootPolicy.allow`
    them before the fleet reboots.
    """
    saved_current, saved_pending = reference.current_kernel, reference.pending_kernel
    reference.pending_kernel = kernel_version
    reference.reboot()
    policy = capture_golden(reference, algorithm=algorithm)
    reference.pending_kernel = saved_current
    reference.reboot()
    reference.pending_kernel = saved_pending
    return policy
