"""Durable verifier state: integrity-headered snapshot and restore.

The paper's P2 gap is an attestation history going dark; a verifier
that keeps every per-agent record in memory reopens that gap at every
restart -- replay offsets, SUSPECT budgets and cache generations all
vanish, and the fleet must re-enroll.  This module makes the verifier's
working state a durable artifact in the style of the durable-attestation
line already backing :mod:`repro.keylime.audit`:

* **Versioned, checksummed container.**  A snapshot file is one header
  line (magic, format version, body length, SHA-256 of the body)
  followed by the JSON body.  Any mismatch -- wrong magic, skewed
  version, truncation, a single flipped byte -- raises
  :class:`~repro.common.errors.IntegrityError` at read time.  Corrupt
  state must fail loudly; restoring it quietly would let an attacker
  (or a bad disk) rewrite attestation history.
* **Atomic replace.**  Writes go to a temporary file in the target
  directory and land via ``os.replace``, so a crash mid-write leaves
  the previous snapshot intact, never a half-written one.
* **Exact resume.**  The body carries every per-agent attestation
  record (lifecycle state, replay offset and aggregate, reset count,
  quarantine budget, failure/result history, policy generation), every
  remembered push session, the verifier's RNG streams, and the full
  hash-chained audit log.  :func:`restore_verifier` rehydrates a fresh
  verifier so each agent resumes at its exact replay offset with no
  re-enrollment -- the nonce sequence, verdicts and audit chain continue
  bit-identically to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

from repro.common.errors import IntegrityError, StateError
from repro.common.hexutil import sha256_hex
from repro.keylime.pipeline import (
    AgentState,
    AttestationFailure,
    AttestationResult,
    FailureKind,
)
from repro.keylime.policy import EntryVerdict, PolicyFailure
from repro.keylime.transport import PushSession
from repro.keylime.verifier import KeylimeVerifier
from repro.obs import runtime as obs

SNAPSHOT_MAGIC = "repro-verifier-snapshot"
SNAPSHOT_VERSION = 1


# -- record serialisation ---------------------------------------------------

def _policy_failure_to_record(failure: PolicyFailure | None) -> dict[str, Any] | None:
    if failure is None:
        return None
    return {
        "verdict": failure.verdict.value,
        "path": failure.path,
        "measured_digest": failure.measured_digest,
        "expected_digests": list(failure.expected_digests),
    }


def _policy_failure_from_record(record: dict[str, Any] | None) -> PolicyFailure | None:
    if record is None:
        return None
    return PolicyFailure(
        verdict=EntryVerdict(record["verdict"]),
        path=str(record["path"]),
        measured_digest=str(record["measured_digest"]),
        expected_digests=tuple(str(d) for d in record["expected_digests"]),
    )


def _failure_to_record(failure: AttestationFailure) -> dict[str, Any]:
    return {
        "time": failure.time,
        "kind": failure.kind.value,
        "detail": failure.detail,
        "policy_failure": _policy_failure_to_record(failure.policy_failure),
    }


def _failure_from_record(record: dict[str, Any]) -> AttestationFailure:
    return AttestationFailure(
        time=float(record["time"]),
        kind=FailureKind(record["kind"]),
        detail=str(record["detail"]),
        policy_failure=_policy_failure_from_record(record["policy_failure"]),
    )


def _result_to_record(result: AttestationResult) -> dict[str, Any]:
    return {
        "time": result.time,
        "ok": result.ok,
        "entries_processed": result.entries_processed,
        "entries_skipped": result.entries_skipped,
        "failures": [_failure_to_record(failure) for failure in result.failures],
        "transient": result.transient,
        "retry_attempts": result.retry_attempts,
        "transport_error": result.transport_error,
    }


def _result_from_record(record: dict[str, Any]) -> AttestationResult:
    return AttestationResult(
        time=float(record["time"]),
        ok=bool(record["ok"]),
        entries_processed=int(record["entries_processed"]),
        entries_skipped=int(record["entries_skipped"]),
        failures=tuple(
            _failure_from_record(failure) for failure in record["failures"]
        ),
        transient=bool(record["transient"]),
        retry_attempts=int(record["retry_attempts"]),
        transport_error=record["transport_error"],
    )


def _rng_state(rng) -> list:
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


# -- per-agent state handoff -------------------------------------------------

def export_agent_state(verifier: KeylimeVerifier, agent_id: str) -> dict[str, Any]:
    """One agent's complete attestation record as a JSON-safe dict.

    The per-agent unit of both the whole-verifier snapshot and a shard
    migration: lifecycle state, replay offset and aggregate, quarantine
    budget, failure/result history, policy generation, and every
    remembered push session.
    """
    slot = verifier._slots[agent_id]
    return {
        "agent_id": agent_id,
        "state": slot.state.value,
        "verified_entries": slot.verified_entries,
        "replay_aggregate": slot.replay_aggregate,
        "last_reset_count": slot.last_reset_count,
        "suspect_since": slot.suspect_since,
        "suspect_windows": slot.suspect_windows,
        "policy": {
            "uid": slot.policy.uid,
            "generation": slot.policy.generation,
        },
        "failures": [
            _failure_to_record(failure) for failure in slot.failures
        ],
        "results": [_result_to_record(result) for result in slot.results],
        "sessions": [
            session.to_record()
            for session in verifier.push_sessions_of(agent_id)
        ],
    }


def import_agent_state(
    verifier: KeylimeVerifier,
    record: dict[str, Any],
    include_sessions: bool = True,
) -> str:
    """Restore one exported agent record into *verifier*; returns the id.

    The verifier must already hold a slot (``add_agent``) for the
    agent.  ``include_sessions=False`` is the migration handoff: a
    shard move deliberately abandons open push sessions at the source
    (they are closed there), so a submission against the old session is
    an :class:`IntegrityError` on *both* verifiers -- the wrong-shard
    replay story in THREATMODEL.md.
    """
    agent_id = record["agent_id"]
    if agent_id not in verifier._slots:
        raise StateError(
            f"agent {agent_id!r} has no slot on the importing verifier "
            "(add_agent it first)"
        )
    try:
        slot = verifier._slots[agent_id]
        slot.state = AgentState(record["state"])
        slot.verified_entries = int(record["verified_entries"])
        slot.replay_aggregate = str(record["replay_aggregate"])
        reset_count = record["last_reset_count"]
        slot.last_reset_count = (
            int(reset_count) if reset_count is not None else None
        )
        suspect_since = record["suspect_since"]
        slot.suspect_since = (
            float(suspect_since) if suspect_since is not None else None
        )
        slot.suspect_windows = int(record["suspect_windows"])
        slot.failures = [
            _failure_from_record(failure) for failure in record["failures"]
        ]
        slot.results = [
            _result_from_record(result) for result in record["results"]
        ]
        recorded_generation = int(record["policy"]["generation"])
        if slot.policy.generation < recorded_generation:
            slot.policy.generation = recorded_generation
        if include_sessions:
            for session_record in record["sessions"]:
                session = PushSession.from_record(session_record)
                verifier._push_sessions[session.session_id] = session
    except (KeyError, TypeError, ValueError) as exc:
        raise IntegrityError(f"malformed agent record in snapshot: {exc}") from exc
    return agent_id


# -- snapshot assembly ------------------------------------------------------

def snapshot_verifier(
    verifier: KeylimeVerifier, meta: dict[str, Any] | None = None
) -> dict[str, Any]:
    """The verifier's complete durable state as a JSON-safe body.

    *meta* is an opaque caller payload (seed, fleet shape, ...) carried
    verbatim so a CLI ``state load`` can rebuild the surrounding rig.
    """
    now = verifier.scheduler.clock.now
    agents = [
        export_agent_state(verifier, agent_id)
        for agent_id in verifier._slots
    ]
    body: dict[str, Any] = {
        "created_at": now,
        "push_session_ttl": verifier.push_session_ttl,
        "rng": {
            "verifier": _rng_state(verifier.rng),
            "retry": _rng_state(verifier._retry_rng),
            "session": _rng_state(verifier._session_rng),
        },
        "agents": agents,
        "audit": (
            verifier.audit.export_records() if verifier.audit is not None else None
        ),
        "meta": dict(meta) if meta else {},
    }
    obs.get().registry.counter(
        "verifier_snapshot_saves_total", "Verifier state snapshots assembled",
    ).inc()
    return body


def write_snapshot(
    path: str | os.PathLike,
    verifier: KeylimeVerifier,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Snapshot *verifier* to *path* atomically; returns the header.

    The temporary file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename: a crash at any point
    leaves either the old snapshot or the new one, never a hybrid.
    """
    body = snapshot_verifier(verifier, meta=meta)
    body_bytes = json.dumps(body, sort_keys=True).encode("utf-8")
    header = {
        "magic": SNAPSHOT_MAGIC,
        "version": SNAPSHOT_VERSION,
        "body_bytes": len(body_bytes),
        "checksum": sha256_hex(body_bytes),
        "created_at": body["created_at"],
        "agents": len(body["agents"]),
    }
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(
        prefix=".snapshot-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(json.dumps(header, sort_keys=True).encode("utf-8"))
            handle.write(b"\n")
            handle.write(body_bytes)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return header


def _read_header_and_body(path: str | os.PathLike) -> tuple[dict[str, Any], bytes]:
    with open(path, "rb") as handle:
        raw = handle.read()
    newline = raw.find(b"\n")
    if newline < 0:
        raise IntegrityError(f"snapshot {path}: no header line (truncated?)")
    try:
        header = json.loads(raw[:newline])
    except ValueError as exc:
        raise IntegrityError(f"snapshot {path}: unreadable header: {exc}") from exc
    if not isinstance(header, dict) or header.get("magic") != SNAPSHOT_MAGIC:
        raise IntegrityError(f"snapshot {path}: bad magic (not a verifier snapshot)")
    if header.get("version") != SNAPSHOT_VERSION:
        raise IntegrityError(
            f"snapshot {path}: format version {header.get('version')!r} "
            f"is not the supported version {SNAPSHOT_VERSION}"
        )
    body_bytes = raw[newline + 1:]
    declared = header.get("body_bytes")
    if declared != len(body_bytes):
        raise IntegrityError(
            f"snapshot {path}: body is {len(body_bytes)} bytes, "
            f"header declares {declared} (truncated or padded)"
        )
    if sha256_hex(body_bytes) != header.get("checksum"):
        raise IntegrityError(
            f"snapshot {path}: body checksum mismatch (corrupted or tampered)"
        )
    return header, body_bytes


def read_snapshot(path: str | os.PathLike) -> dict[str, Any]:
    """Load and integrity-check a snapshot body.

    Every failure mode -- missing header, wrong magic, version skew,
    truncation, checksum mismatch, undecodable body -- raises
    :class:`IntegrityError`.
    """
    _, body_bytes = _read_header_and_body(path)
    try:
        body = json.loads(body_bytes)
    except ValueError as exc:
        # The checksum passed, so this is a malformed *write*, but it
        # still must not load.
        raise IntegrityError(f"snapshot {path}: undecodable body: {exc}") from exc
    if not isinstance(body, dict):
        raise IntegrityError(f"snapshot {path}: body is not a JSON object")
    return body


def inspect_snapshot(path: str | os.PathLike) -> dict[str, Any]:
    """A human-oriented summary of a snapshot, without restoring it."""
    header, _ = _read_header_and_body(path)
    body = read_snapshot(path)
    agents = body.get("agents", [])
    states: dict[str, int] = {}
    open_sessions = 0
    for record in agents:
        states[record["state"]] = states.get(record["state"], 0) + 1
        open_sessions += sum(
            1 for session in record.get("sessions", [])
            if session.get("state") in ("created", "negotiated")
        )
    audit = body.get("audit")
    return {
        "path": os.fspath(path),
        "version": header["version"],
        "created_at": body.get("created_at"),
        "agents": len(agents),
        "states": states,
        "open_push_sessions": open_sessions,
        "audit_records": len(audit) if audit is not None else 0,
        "results": sum(len(record.get("results", [])) for record in agents),
        "meta": body.get("meta", {}),
    }


# -- restore ----------------------------------------------------------------

def restore_verifier(
    verifier: KeylimeVerifier, body: dict[str, Any]
) -> list[str]:
    """Rehydrate *verifier* from a snapshot body; returns the agent ids.

    The verifier must already hold a slot (``add_agent``) for every
    agent in the snapshot -- restoration resumes attestation records, it
    never re-enrolls identities (the registrar's records are the
    registration layer's to keep).  A snapshot naming agents the
    verifier does not attest raises :class:`StateError` listing them.

    Restored state: per-agent lifecycle, replay offset and aggregate,
    reset count, quarantine bookkeeping, failure/result history, policy
    generation (advanced to at least the recorded value, so cached
    verdicts from before the snapshot can never resurrect), remembered
    push sessions, the verifier's RNG streams and the audit chain
    (verified link-by-link on the way in).
    """
    try:
        agent_records = list(body["agents"])
        rng_states = body["rng"]
    except (KeyError, TypeError) as exc:
        raise IntegrityError(f"snapshot body is missing sections: {exc}") from exc

    missing = [
        record["agent_id"] for record in agent_records
        if record["agent_id"] not in verifier._slots
    ]
    if missing:
        raise StateError(
            "snapshot names agents the verifier is not attesting "
            f"(add_agent them first): {sorted(missing)}"
        )

    try:
        for record in agent_records:
            import_agent_state(verifier, record)
        verifier.rng.setstate(rng_states["verifier"])
        verifier._retry_rng.setstate(rng_states["retry"])
        verifier._session_rng.setstate(rng_states["session"])
    except IntegrityError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise IntegrityError(f"malformed agent record in snapshot: {exc}") from exc

    audit_records = body.get("audit")
    if audit_records is not None and verifier.audit is not None:
        verifier.audit.restore_records(audit_records)

    registry = obs.get().registry
    registry.counter(
        "verifier_snapshot_restores_total", "Verifier state restores completed",
    ).inc()
    registry.gauge(
        "verifier_snapshot_age_sim_seconds",
        "Simulated age of the most recently restored snapshot",
    ).set(verifier.scheduler.clock.now - float(body.get("created_at", 0.0)))
    return [record["agent_id"] for record in agent_records]


def restore_from_file(
    verifier: KeylimeVerifier, path: str | os.PathLike
) -> list[str]:
    """:func:`read_snapshot` + :func:`restore_verifier` in one step."""
    return restore_verifier(verifier, read_snapshot(path))
