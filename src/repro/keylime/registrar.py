"""The Keylime registrar: TPM identity validation.

Before the verifier trusts a single quote, the registrar establishes
that the agent's attestation key lives in a genuine TPM:

1. the agent presents its TPM's **EK certificate**; the registrar
   verifies the chain against the trusted manufacturer roots;
2. the agent presents its **AK** with the TPM's binding statement; the
   registrar verifies the EK signed it (standing in for the
   MakeCredential/ActivateCredential ceremony).

A spoofed TPM (no valid manufacturer chain) or a smuggled AK (no valid
binding) is rejected here, which is why those attack avenues are out of
scope for the paper's false-negative study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import IntegrityError, NotFoundError
from repro.common.events import EventLog
from repro.crypto.certs import Certificate, verify_chain
from repro.crypto.rsa import RsaPublicKey
from repro.keylime.agent import KeylimeAgent, PushCapabilities
from repro.tpm.device import AttestationKey


class RegistrationError(IntegrityError):
    """Agent registration failed identity validation."""


@dataclass(frozen=True)
class AgentRecord:
    """The registrar's record of a validated agent."""

    agent_id: str
    ak_public: RsaPublicKey
    ek_certificate: Certificate


class KeylimeRegistrar:
    """Registry of validated agents and their attestation keys."""

    def __init__(self, trusted_roots: list[Certificate], events: EventLog | None = None) -> None:
        self.trusted_roots = list(trusted_roots)
        self.events = events if events is not None else EventLog()
        self._agents: dict[str, AgentRecord] = {}
        self._capabilities: dict[str, PushCapabilities] = {}
        self._shard_ring = None

    # -- shard assignment ---------------------------------------------------

    def attach_shard_ring(self, ring) -> None:
        """Make this registrar the authority for shard placement.

        The registrar already owns the only fleet-wide identity table,
        which makes it the natural home for the consistent-hash ring
        (:class:`repro.keylime.sharding.ConsistentHashRing`): every
        component that can look an agent up can also ask where it is
        attested.  Attaching emits one ``shard.ring.attached`` event
        naming the membership, so the event log records when placement
        authority began.
        """
        self._shard_ring = ring
        self.events.emit(
            0.0, "keylime.registrar", "shard.ring.attached",
            members=",".join(ring.members), vnodes=ring.vnodes,
        )

    @property
    def shard_ring(self):
        """The attached ring (None while the fleet is single-verifier)."""
        return self._shard_ring

    def shard_of(self, agent_id: str) -> str:
        """The shard attesting *agent_id* (registered agents only).

        Raises :class:`~repro.common.errors.NotFoundError` for unknown
        agents and :class:`IntegrityError` when no ring is attached --
        asking for a shard in a single-verifier deployment is a caller
        bug, not an empty answer.
        """
        self.lookup(agent_id)
        if self._shard_ring is None:
            raise IntegrityError(
                "no shard ring attached: this registrar serves a "
                "single-verifier deployment"
            )
        return self._shard_ring.owner(agent_id)

    def __contains__(self, agent_id: str) -> bool:
        return agent_id in self._agents

    def register(self, agent: KeylimeAgent) -> AgentRecord:
        """Validate and record an agent's TPM identity.

        Raises :class:`RegistrationError` when the EK certificate does
        not chain to a trusted manufacturer or the AK binding fails.
        """
        ek_cert = agent.machine.tpm.ek_certificate
        try:
            verify_chain([ek_cert], self.trusted_roots)
        except IntegrityError as exc:
            raise RegistrationError(
                f"agent {agent.agent_id}: EK certificate rejected: {exc}"
            ) from exc

        ak: AttestationKey = agent.provision_ak()
        if ak.ek_fingerprint != ek_cert.public_key.fingerprint():
            raise RegistrationError(
                f"agent {agent.agent_id}: AK names a different EK than the certificate"
            )
        if not ak.verify_binding(ek_cert.public_key):
            raise RegistrationError(
                f"agent {agent.agent_id}: AK binding signature invalid"
            )

        record = AgentRecord(
            agent_id=agent.agent_id, ak_public=ak.public, ek_certificate=ek_cert
        )
        self._agents[agent.agent_id] = record
        self.events.emit(
            agent.machine.clock.now, "keylime.registrar", "agent.registered",
            agent=agent.agent_id,
        )
        return record

    def lookup(self, agent_id: str) -> AgentRecord:
        """The record for *agent_id* (raises when unknown)."""
        try:
            return self._agents[agent_id]
        except KeyError:
            raise NotFoundError(f"agent {agent_id!r} is not registered") from None

    # -- push negotiation ---------------------------------------------------

    def note_capabilities(
        self, agent_id: str, capabilities: PushCapabilities, now: float = 0.0
    ) -> PushCapabilities | None:
        """Record what *agent_id* announced in a push negotiation.

        Only registered agents may open push sessions -- an unknown
        agent raises :class:`NotFoundError` exactly like a quote lookup
        would.  TPM reset counters are monotonic, so a *decreasing*
        boot count is physically impossible for an honest agent: it
        means replayed negotiation material and is rejected as an
        :class:`IntegrityError` before a session is ever created.

        Returns the previously recorded capabilities (None on first
        contact).
        """
        self.lookup(agent_id)  # raises when unknown
        previous = self._capabilities.get(agent_id)
        if previous is not None and capabilities.boot_count < previous.boot_count:
            raise IntegrityError(
                f"agent {agent_id}: announced boot count "
                f"{capabilities.boot_count} regressed below "
                f"{previous.boot_count} (replayed negotiation?)"
            )
        self._capabilities[agent_id] = capabilities
        self.events.emit(
            now, "keylime.registrar", "agent.capabilities",
            agent=agent_id, boot_count=capabilities.boot_count,
            log_length=capabilities.log_length,
        )
        return previous

    def capabilities_of(self, agent_id: str) -> PushCapabilities | None:
        """The last capabilities *agent_id* announced (None if never)."""
        self.lookup(agent_id)
        return self._capabilities.get(agent_id)
