"""Revocation notifications.

When attestation fails, Keylime does more than flip a status bit: it
pushes a *revocation notification* so that the rest of the
infrastructure (load balancers, secret stores, other nodes) can stop
trusting the compromised machine.  This module models that fan-out: the
verifier publishes a :class:`RevocationEvent` per failure, and
registered listeners react -- the bundled :class:`QuarantineListener`
keeps the set of machines an operator should fence off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.events import EventLog


@dataclass(frozen=True)
class RevocationEvent:
    """One revocation notification."""

    time: float
    agent_id: str
    reason: str  # FailureKind value, e.g. "policy" / "pcr_mismatch"
    detail: str
    path: str | None = None  # offending file for policy failures


class RevocationNotifier:
    """Publish/subscribe fan-out for revocation events."""

    def __init__(self, events: EventLog | None = None) -> None:
        self.events = events if events is not None else EventLog()
        self._listeners: list[Callable[[RevocationEvent], None]] = []
        self._history: list[RevocationEvent] = []

    @property
    def history(self) -> list[RevocationEvent]:
        """Every event published so far (a copy)."""
        return list(self._history)

    def subscribe(self, listener: Callable[[RevocationEvent], None]) -> Callable[[], None]:
        """Register *listener* for future events; returns an unsubscriber."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe

    def notify(self, event: RevocationEvent) -> None:
        """Publish one event to every listener."""
        self._history.append(event)
        self.events.emit(
            event.time, "keylime.revocation", "revocation.notified",
            agent=event.agent_id, reason=event.reason, path=event.path,
        )
        for listener in list(self._listeners):
            listener(event)


@dataclass
class QuarantineListener:
    """Tracks which agents the infrastructure should stop trusting.

    An agent enters quarantine on its first revocation and leaves only
    through an explicit operator :meth:`release` (after remediation and
    a fresh green attestation).
    """

    quarantined: dict[str, RevocationEvent] = field(default_factory=dict)

    def __call__(self, event: RevocationEvent) -> None:
        self.quarantined.setdefault(event.agent_id, event)

    def is_quarantined(self, agent_id: str) -> bool:
        """True while the agent remains fenced off."""
        return agent_id in self.quarantined

    def release(self, agent_id: str) -> None:
        """Operator action: lift the quarantine."""
        self.quarantined.pop(agent_id, None)
