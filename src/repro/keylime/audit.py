"""A durable, hash-chained attestation audit trail.

Red Hat's "durable attestation" work (cited by the paper) persists
every attestation outcome so that the system's trust history can be
audited after the fact -- including after a compromise that would love
to rewrite it.  This module models the essential property: an
append-only record store where each record commits to its predecessor
by hash, so any retroactive edit breaks the chain from that point on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.common.errors import IntegrityError
from repro.common.hexutil import sha256_hex

GENESIS_HASH = "0" * 64


@dataclass(frozen=True)
class AuditRecord:
    """One attestation outcome, chained to its predecessor.

    ``record_hash`` covers the payload *and* ``previous_hash``, so the
    chain commits to its whole history.
    """

    index: int
    time: float
    agent_id: str
    ok: bool
    detail: dict[str, Any]
    previous_hash: str
    record_hash: str

    @staticmethod
    def compute_hash(
        index: int, time: float, agent_id: str, ok: bool,
        detail: dict[str, Any], previous_hash: str,
    ) -> str:
        """Canonical hash over the record's content and its predecessor."""
        payload = json.dumps(
            {
                "index": index,
                "time": time,
                "agent": agent_id,
                "ok": ok,
                "detail": detail,
                "prev": previous_hash,
            },
            sort_keys=True,
        )
        return sha256_hex(payload.encode("utf-8"))


class AuditLog:
    """Append-only attestation history with chain verification."""

    def __init__(self) -> None:
        self._records: list[AuditRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def head_hash(self) -> str:
        """Hash of the latest record (genesis when empty)."""
        return self._records[-1].record_hash if self._records else GENESIS_HASH

    def append(
        self, time: float, agent_id: str, ok: bool, detail: dict[str, Any] | None = None
    ) -> AuditRecord:
        """Append one attestation outcome."""
        detail = dict(detail or {})
        index = len(self._records)
        previous = self.head_hash
        record = AuditRecord(
            index=index,
            time=time,
            agent_id=agent_id,
            ok=ok,
            detail=detail,
            previous_hash=previous,
            record_hash=AuditRecord.compute_hash(
                index, time, agent_id, ok, detail, previous
            ),
        )
        self._records.append(record)
        return record

    def records(self, agent_id: str | None = None) -> list[AuditRecord]:
        """All records, optionally filtered to one agent."""
        if agent_id is None:
            return list(self._records)
        return [record for record in self._records if record.agent_id == agent_id]

    def verify_chain(self) -> None:
        """Check every link; raises :class:`IntegrityError` on the first break."""
        previous = GENESIS_HASH
        for position, record in enumerate(self._records):
            if record.index != position:
                raise IntegrityError(
                    f"audit record at position {position} carries index {record.index}"
                )
            if record.previous_hash != previous:
                raise IntegrityError(
                    f"audit chain break at index {position}: previous-hash mismatch"
                )
            expected = AuditRecord.compute_hash(
                record.index, record.time, record.agent_id, record.ok,
                record.detail, record.previous_hash,
            )
            if record.record_hash != expected:
                raise IntegrityError(
                    f"audit record {position} content does not match its hash"
                )
            previous = record.record_hash

    def export_records(self) -> list[dict[str, Any]]:
        """JSON-safe encoding of the full chain (for durable snapshots)."""
        return [
            {
                "index": record.index,
                "time": record.time,
                "agent_id": record.agent_id,
                "ok": record.ok,
                "detail": record.detail,
                "previous_hash": record.previous_hash,
                "record_hash": record.record_hash,
            }
            for record in self._records
        ]

    def restore_records(self, records: list[dict[str, Any]]) -> None:
        """Replace the chain with exported records; verifies every link.

        Raises :class:`IntegrityError` if the imported chain does not
        verify -- a snapshot whose audit history was edited must fail
        loudly, never load quietly.
        """
        try:
            rebuilt = [
                AuditRecord(
                    index=int(record["index"]),
                    time=float(record["time"]),
                    agent_id=str(record["agent_id"]),
                    ok=bool(record["ok"]),
                    detail=dict(record["detail"]),
                    previous_hash=str(record["previous_hash"]),
                    record_hash=str(record["record_hash"]),
                )
                for record in records
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise IntegrityError(f"malformed audit record in snapshot: {exc}") from exc
        previous_records = self._records
        self._records = rebuilt
        try:
            self.verify_chain()
        except IntegrityError:
            self._records = previous_records
            raise

    def tamper_evident_summary(self) -> dict[str, Any]:
        """Counts plus the head hash an external anchor would pin."""
        return {
            "records": len(self._records),
            "failures": sum(1 for record in self._records if not record.ok),
            "head": self.head_hash,
        }
