"""Fleet management: one verifier, many attested nodes.

The paper's motivation is cloud providers attesting *large fleets*; the
tenant tool exists to "manage groups of attested nodes".  This module
provides that layer on top of the single-node stack:

* :class:`Fleet` provisions N identical machines (same baseline package
  set, each with its own manufactured TPM), registers and onboards all
  of them against one shared runtime policy -- the point of the
  mirror-derived dynamic policy is precisely that identical nodes can
  share it;
* fleet-wide operations: sync-once/update-everywhere cycles, polling
  every node, and status roll-ups;
* revocation wiring: a fleet-level :class:`QuarantineListener` so a
  single compromised node is fenced without touching its siblings;
* a :class:`VerificationScheduler` that batches the whole fleet's
  attestation rounds into one tick and shares a single
  :class:`repro.keylime.policy.VerdictCache` across every node --
  same-distro nodes measure nearly identical files, so policy
  evaluation costs O(unique digests), not O(nodes x entries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.common.clock import Scheduler
from repro.common.events import EventLog
from repro.common.rng import SeededRng
from repro.distro.apt import AptInstaller
from repro.distro.mirror import LocalMirror
from repro.dynpolicy.generator import DynamicPolicyGenerator, PolicyUpdateReport
from repro.keylime.agent import KeylimeAgent
from repro.keylime.audit import AuditLog
from repro.keylime.policy import RuntimePolicy, VerdictCache
from repro.keylime.registrar import KeylimeRegistrar
from repro.keylime.revocation import QuarantineListener, RevocationNotifier
from repro.keylime.faults import FaultPlan
from repro.keylime.retrypolicy import RetryPolicy
from repro.keylime.transport import JsonTransportAgent
from repro.keylime.verifier import (
    POLLABLE_STATES,
    AgentState,
    AttestationResult,
    KeylimeVerifier,
)
from repro.kernelsim.kernel import Machine
from repro.obs import runtime as obs
from repro.obs.capacity import TickBudgetAccountant
from repro.tpm.device import TpmManufacturer


@dataclass
class FleetNode:
    """One attested machine and its per-node plumbing."""

    name: str
    machine: Machine
    apt: AptInstaller
    agent: KeylimeAgent


@dataclass
class FleetUpdateReport:
    """Outcome of one fleet-wide update cycle."""

    policy_report: PolicyUpdateReport
    nodes_updated: int
    files_written_total: int
    rebooted_nodes: tuple[str, ...] = ()


class VerificationScheduler:
    """Batches many agents' attestation rounds into shared ticks.

    Instead of one scheduler timer per agent, the fleet registers every
    agent here and the scheduler drives them all through the verifier's
    staged pipeline in a single ``fleet.poll_batch`` span per tick.
    Because the rounds run back-to-back against one verifier (and
    therefore one shared :class:`~repro.keylime.policy.VerdictCache`),
    the first node of a same-distro batch warms the cache and every
    subsequent node's policy evaluation is almost entirely hits.
    """

    def __init__(
        self,
        verifier: KeylimeVerifier,
        events: EventLog | None = None,
        tick_budget: float | None = None,
        overrun_ticks: int = 3,
        push_mode: bool = False,
    ) -> None:
        self.verifier = verifier
        self.push_mode = push_mode
        self._agents: list[str] = []
        # Set-backed membership index: `register` is called once per
        # node at provision time but also on every re-onboard, and the
        # list scan made that O(fleet) per call.  The list still owns
        # the batch order.
        self._registered: set[str] = set()
        self._stop: object | None = None
        self._push_timers: list = []
        # Push-cadence accounting accumulators, flushed by the reap tick.
        self._push_wall = 0.0
        self._push_polled = 0
        self._push_skipped = 0
        self.accounting = TickBudgetAccountant(
            budget=tick_budget, overrun_ticks=overrun_ticks, events=events,
        )

    def register(self, agent_id: str) -> None:
        """Add an agent to the batch (order = poll order within a tick)."""
        if agent_id not in self._registered:
            self._registered.add(agent_id)
            self._agents.append(agent_id)

    @property
    def agents(self) -> tuple[str, ...]:
        """Registered agent ids, in batch order."""
        return tuple(self._agents)

    def poll_batch(self) -> dict[str, AttestationResult]:
        """One attestation round for every still-attesting agent.

        In push mode this delegates to :meth:`push_batch`: the same
        agents, in the same order, drive their own negotiate/submit
        exchanges instead of being polled.
        """
        if self.push_mode:
            return self.push_batch()
        telemetry = obs.get()
        results: dict[str, AttestationResult] = {}
        skipped = 0
        wall_start = perf_counter()
        with telemetry.tracer.span(
            "fleet.poll_batch", agents=len(self._agents)
        ) as span:
            for agent_id in self._agents:
                # SUSPECT nodes stay in the batch (the anti-P2
                # invariant); only FAILED/STOPPED/QUARANTINED drop out.
                if self.verifier.state_of(agent_id) in POLLABLE_STATES:
                    results[agent_id] = self.verifier.poll(agent_id)
                else:
                    skipped += 1
            span.set_attribute("polled", len(results))
            span.set_attribute("skipped", skipped)
            cache = self.verifier.verdict_cache
            if cache is not None:
                span.set_attribute("cache_hit_ratio", round(cache.hit_ratio, 4))
        if skipped:
            telemetry.registry.counter(
                "fleet_poll_skipped_total",
                "Registered agents skipped as non-pollable during batch ticks",
            ).inc(skipped)
        self.accounting.observe_tick(
            self.verifier.scheduler.clock.now,
            wall_seconds=perf_counter() - wall_start,
            registered=len(self._agents),
            polled=len(results),
            skipped=skipped,
            registry=telemetry.registry,
        )
        return results

    def push_batch(self) -> dict[str, AttestationResult]:
        """One agent-driven push exchange per still-attesting agent.

        The manual-driving analogue of :meth:`poll_batch` for push
        mode: every pollable agent runs its negotiate -> submit ->
        verdict exchange (in registration order, against the shared
        verdict cache), then the verifier reaps any session left to
        expire.  Agents whose exchange never produced a result
        (abandoned delivery, protocol rejection) are absent from the
        returned mapping -- the reaper accounts for their silence.
        """
        telemetry = obs.get()
        results: dict[str, AttestationResult] = {}
        skipped = 0
        wall_start = perf_counter()
        with telemetry.tracer.span(
            "fleet.push_batch", agents=len(self._agents)
        ) as span:
            for agent_id in self._agents:
                if self.verifier.state_of(agent_id) in POLLABLE_STATES:
                    result = self.verifier.push_round(agent_id)
                    if result is not None:
                        results[agent_id] = result
                else:
                    skipped += 1
            reaped = self.verifier.reap_push_sessions()
            span.set_attribute("pushed", len(results))
            span.set_attribute("skipped", skipped)
            span.set_attribute("reaped", len(reaped))
            cache = self.verifier.verdict_cache
            if cache is not None:
                span.set_attribute("cache_hit_ratio", round(cache.hit_ratio, 4))
        if skipped:
            telemetry.registry.counter(
                "fleet_poll_skipped_total",
                "Registered agents skipped as non-pollable during batch ticks",
            ).inc(skipped)
        self.accounting.observe_tick(
            self.verifier.scheduler.clock.now,
            wall_seconds=perf_counter() - wall_start,
            registered=len(self._agents),
            polled=len(results),
            skipped=skipped,
            registry=telemetry.registry,
        )
        return results

    def _push_agent_tick(self, agent_id: str) -> None:
        """One agent's self-scheduled push round."""
        if self.verifier.state_of(agent_id) not in POLLABLE_STATES:
            self._push_skipped += 1
            return
        wall_start = perf_counter()
        result = self.verifier.push_round(agent_id)
        self._push_wall += perf_counter() - wall_start
        if result is not None:
            self._push_polled += 1

    def _reap_tick(self) -> None:
        """The verifier's own push-mode tick: reap expired sessions only."""
        telemetry = obs.get()
        wall_start = perf_counter()
        with telemetry.tracer.span("fleet.push_reap") as span:
            reaped = self.verifier.reap_push_sessions()
            span.set_attribute("reaped", len(reaped))
        self.accounting.observe_tick(
            self.verifier.scheduler.clock.now,
            wall_seconds=self._push_wall + (perf_counter() - wall_start),
            registered=len(self._agents),
            polled=self._push_polled,
            skipped=self._push_skipped,
            registry=telemetry.registry,
        )
        self._push_wall = 0.0
        self._push_polled = 0
        self._push_skipped = 0

    def start(
        self,
        scheduler: Scheduler,
        interval: float,
        tick_budget: float | None = None,
    ) -> None:
        """Tick the batch every *interval* simulated seconds.

        *tick_budget* is the accountant's per-tick busy budget; it
        defaults to the interval (one tick must fit in one interval).

        In push mode the cadence inverts: each agent gets its own
        ``push:<agent>`` timer driving its exchanges (the agents own
        their cadence), and the verifier's tick -- ``fleet-push-reap``,
        registered after the agent timers so it runs last within a
        coincident tick -- only reaps expired sessions and flushes the
        interval's accounting.
        """
        self.stop()
        if self.push_mode:
            for agent_id in self._agents:
                self._push_timers.append(
                    scheduler.every(
                        interval,
                        (lambda aid=agent_id: self._push_agent_tick(aid)),
                        label=f"push:{agent_id}",
                    )
                )
            self._stop = scheduler.every(
                interval, self._reap_tick, label="fleet-push-reap"
            )
        else:
            self._stop = scheduler.every(
                interval, self.poll_batch, label="fleet-poll-batch"
            )
        self.accounting.configure(
            interval=getattr(self._stop, "interval", interval),
            budget=tick_budget,
            timer=getattr(self._stop, "label", "fleet-poll-batch"),
        )

    def stop(self) -> None:
        """Cancel the periodic batch tick(s).  Idempotent."""
        stop = self._stop
        if callable(stop):
            self._stop = None
            stop()
        timers, self._push_timers = self._push_timers, []
        for cancel in timers:
            if callable(cancel):
                cancel()


class Fleet:
    """A group of identically provisioned, attested machines."""

    def __init__(
        self,
        size: int,
        mirror: LocalMirror,
        manufacturer: TpmManufacturer,
        scheduler: Scheduler,
        rng: SeededRng,
        policy: RuntimePolicy,
        events: EventLog | None = None,
        kernel_version: str = "5.15.0-91-generic",
        continue_on_failure: bool = False,
        wire_transport: bool = True,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        quarantine_after: int = 3,
        tick_budget: float | None = None,
        push_mode: bool = False,
        push_session_ttl: float | None = None,
    ) -> None:
        """Provision, register and onboard *size* identical nodes.

        With ``wire_transport`` (the default) the verifier talks to each
        agent through a :class:`repro.keylime.transport
        .JsonTransportAgent` proxy: every challenge and every piece of
        evidence crosses the JSON wire formats, traceparent propagation
        included, exactly as it would between separate processes.  The
        round-trip is lossless, so verdicts and RNG draws are unchanged;
        set it ``False`` to shave the serialisation cost in
        pure-throughput experiments.

        A *fault_plan* (:mod:`repro.keylime.faults`) interposes on both
        wire legs of every node; pair it with a *retry_policy* so
        transient injections are retried and exhausted budgets degrade
        to SUSPECT instead of crashing a batch tick.  A plan with no
        matching fault specs is bit-identical to no plan at all.
        ``quarantine_after`` is the verifier's suspect-window budget.

        ``tick_budget`` seeds the batch scheduler's
        :class:`repro.obs.capacity.TickBudgetAccountant`: the busy
        seconds one batch tick may spend before it counts as an
        overrun.  Left ``None`` it defaults to the polling interval
        when :meth:`start_polling` runs.

        With ``push_mode`` the attestation direction inverts: each
        node's agent drives its own negotiate -> submit -> verdict
        exchange on its own timer, and the verifier's tick only reaps
        expired push sessions.  The wire/fault proxies, retry policy,
        verdict cache and degraded-state machinery are all shared with
        pull mode.  ``push_session_ttl`` overrides the verifier's
        session freshness window.
        """
        if size < 1:
            raise ValueError("fleet needs at least one node")
        obs.get().bind_clock(scheduler.clock)
        self.mirror = mirror
        self.scheduler = scheduler
        self.events = events if events is not None else EventLog()
        self.policy = policy
        self.generator = DynamicPolicyGenerator(
            mirror, events=self.events, rng=rng.fork("generator")
        )
        self.notifier = RevocationNotifier(events=self.events)
        self.quarantine = QuarantineListener()
        self.notifier.subscribe(self.quarantine)
        self.audit = AuditLog()
        self.registrar = KeylimeRegistrar(
            [manufacturer.root_certificate], events=self.events
        )
        # One verdict cache for the whole fleet: identically provisioned
        # nodes measure the same files, so node 0's evaluations answer
        # everyone else's.
        self.verdict_cache = VerdictCache()
        self.fault_plan = fault_plan
        if fault_plan is not None:
            fault_plan.bind_clock(scheduler.clock)
        self.push_mode = push_mode
        verifier_kwargs = {}
        if push_session_ttl is not None:
            verifier_kwargs["push_session_ttl"] = push_session_ttl
        self.verifier = KeylimeVerifier(
            self.registrar, scheduler, rng.fork("verifier"), events=self.events,
            continue_on_failure=continue_on_failure,
            notifier=self.notifier, audit=self.audit,
            verdict_cache=self.verdict_cache,
            retry_policy=retry_policy, quarantine_after=quarantine_after,
            **verifier_kwargs,
        )
        self.poll_scheduler = VerificationScheduler(
            self.verifier, events=self.events, tick_budget=tick_budget,
            push_mode=push_mode,
        )

        self.nodes: list[FleetNode] = []
        baseline = mirror.index()
        for index in range(size):
            name = f"node-{index:03d}"
            machine = Machine(
                name, manufacturer.manufacture(), clock=scheduler.clock,
                events=self.events, kernel_version=kernel_version,
            )
            machine.boot()
            apt = AptInstaller(machine, events=self.events)
            apt.upgrade_from(baseline, install_new=True)
            agent = KeylimeAgent(f"agent-{name}", machine)
            self.registrar.register(agent)
            if fault_plan is not None:
                verifier_side = fault_plan.wrap(agent)
            elif wire_transport:
                verifier_side = JsonTransportAgent(agent)
            else:
                verifier_side = agent
            self.verifier.add_agent(verifier_side, policy)
            self.poll_scheduler.register(agent.agent_id)
            self.nodes.append(FleetNode(name=name, machine=machine, apt=apt, agent=agent))

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, name: str) -> FleetNode:
        """Look up one node by name."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"fleet has no node {name!r}")

    # -- attestation -------------------------------------------------------

    def poll_all(self) -> dict[str, AttestationResult]:
        """One attestation round against every still-attesting node.

        Rounds are routed through the shared
        :class:`VerificationScheduler` batch, so all nodes of the tick
        hit one verdict cache back-to-back.
        """
        telemetry = obs.get()
        by_agent = self.poll_scheduler.poll_batch()
        names = {node.agent.agent_id: node.name for node in self.nodes}
        results = {names[agent_id]: result for agent_id, result in by_agent.items()}
        self._record_rollups(telemetry.registry)
        self.events.emit(
            self.scheduler.clock.now, "keylime.fleet", "fleet.polled",
            polled=len(results),
            ok=sum(1 for result in results.values() if result.ok),
            healthy=self.healthy_count(),
        )
        return results

    def _record_rollups(self, registry) -> None:
        """Refresh the fleet-wide state gauges."""
        by_state: dict[str, int] = {}
        for state in self.status().values():
            by_state[state] = by_state.get(state, 0) + 1
        nodes_gauge = registry.gauge(
            "fleet_nodes", "Fleet nodes by verifier state", ("state",),
        )
        for state in AgentState:
            nodes_gauge.labels(state=state.value).set(by_state.get(state.value, 0))
        registry.gauge(
            "fleet_quarantined_nodes", "Nodes currently quarantined",
        ).set(len(self.quarantine.quarantined))

    def start_polling(
        self, interval: float, tick_budget: float | None = None
    ) -> None:
        """Continuous attestation for the whole fleet.

        One batch tick polls every attesting node back-to-back (sharing
        the verdict cache within the tick), instead of N independent
        per-agent timers.  A fleet heartbeat on the same cadence keeps
        the state roll-up (events + gauges) current.  *tick_budget*
        overrides the saturation accountant's per-tick busy budget
        (defaults to the interval).
        """
        self.poll_scheduler.start(self.scheduler, interval, tick_budget=tick_budget)
        self._stop_heartbeat = self.scheduler.every(
            interval, self._heartbeat, label="fleet-heartbeat"
        )

    def stop_polling(self) -> None:
        """Cancel the fleet's batch polling and heartbeat.  Idempotent."""
        self.poll_scheduler.stop()
        stop = getattr(self, "_stop_heartbeat", None)
        if callable(stop):
            self._stop_heartbeat = None
            stop()

    def _heartbeat(self) -> None:
        """Roll up fleet state into one event and the state gauges."""
        by_state: dict[str, int] = {}
        for state in self.status().values():
            by_state[state] = by_state.get(state, 0) + 1
        self._record_rollups(obs.get().registry)
        self.events.emit(
            self.scheduler.clock.now, "keylime.fleet", "fleet.heartbeat",
            healthy=self.healthy_count(),
            attesting=by_state.get(AgentState.ATTESTING.value, 0),
            failed=by_state.get(AgentState.FAILED.value, 0),
            suspect=by_state.get(AgentState.SUSPECT.value, 0),
            quarantined=by_state.get(AgentState.QUARANTINED.value, 0),
        )

    def watch_health(self, watch, poll_interval: float) -> None:
        """Attach a :class:`repro.obs.health.HealthWatch` to this fleet.

        Binds the watch to the fleet's EventLog, the active telemetry
        registry/tracer, and the fleet's hash-chained audit log, then
        registers every node's expected poll cadence with the
        coverage-gap detector and schedules the periodic tick.
        """
        telemetry = obs.get()
        watch.attach(
            self.events,
            registry=telemetry.registry if telemetry.enabled else None,
            tracer=telemetry.tracer if telemetry.enabled else None,
            audit=self.audit,
            poll_interval=poll_interval,
            now=self.scheduler.clock.now,
        )
        for node in self.nodes:
            watch.watch_agent(
                node.agent.agent_id, poll_interval, now=self.scheduler.clock.now
            )
        watch.schedule(self.scheduler)

    def observe(self, observatory, interval: float | None = None):
        """Schedule periodic TSDB collection for this fleet's run.

        Binds the :class:`repro.obs.rules.Observatory` to the active
        telemetry registry (when enabled and not already bound) and
        schedules ``observatory.collect`` on the fleet scheduler every
        *interval* (the observatory's own cadence by default).  Safe to
        combine with a TSDB-backed :class:`~repro.obs.health
        .HealthWatch` -- collection is idempotent per timestamp, so
        whichever runs first at a tick does the scrape.  Returns the
        stop callable.
        """
        telemetry = obs.get()
        if telemetry.enabled and not observatory.bound:
            observatory.bind(telemetry.registry)
        if interval is not None:
            observatory.poll_interval = interval
        return observatory.schedule(self.scheduler)

    def status(self) -> dict[str, str]:
        """node name -> verifier state value."""
        return {
            node.name: self.verifier.state_of(node.agent.agent_id).value
            for node in self.nodes
        }

    def healthy_count(self) -> int:
        """Nodes still attesting and not quarantined."""
        return sum(
            1 for node in self.nodes
            if self.verifier.state_of(node.agent.agent_id) is AgentState.ATTESTING
            and not self.quarantine.is_quarantined(node.agent.agent_id)
        )

    # -- fleet-wide updates ----------------------------------------------------

    def run_update_cycle(self, reboot_on_new_kernel: bool = True) -> FleetUpdateReport:
        """Sync once, generate the policy delta once, update every node.

        The single shared policy is pushed before any node upgrades --
        the same ordering invariant as the single-node orchestrator,
        amortised across the fleet (the generator's work is independent
        of fleet size, which is the operational win of the scheme).
        """
        telemetry = obs.get()
        wall_start = perf_counter()
        now = self.scheduler.clock.now
        with telemetry.tracer.span("fleet.update_cycle") as span:
            sync = self.mirror.sync(now)
            changed = list(sync.new_packages) + list(sync.changed_packages)
            allowed = {node.machine.current_kernel for node in self.nodes}
            policy_report = self.generator.generate_update(self.policy, changed, allowed)
            with telemetry.tracer.span("fleet.policy_push", nodes=len(self.nodes)):
                for node in self.nodes:
                    self.verifier.update_policy(node.agent.agent_id, self.policy)

            files_total = 0
            updated = 0
            rebooted: list[str] = []
            index = self.mirror.index()
            for node in self.nodes:
                with telemetry.tracer.span(
                    "fleet.node_update", node=node.name
                ) as node_span:
                    report = node.apt.upgrade_from(index)
                    if report.is_empty:
                        continue
                    updated += 1
                    files_total += report.files_written
                    node_span.set_attribute("files", report.files_written)
                    for package in report.packages:
                        for pf in package.executables[:20]:
                            node.machine.exec_file(pf.path)
                    if node.machine.pending_kernel is not None:
                        self.generator.prepare_for_reboot(
                            self.policy, node.machine.pending_kernel
                        )
                        self.verifier.update_policy(node.agent.agent_id, self.policy)
                        if reboot_on_new_kernel:
                            node.machine.reboot()
                            rebooted.append(node.name)
            span.set_attribute("nodes_updated", updated)
            span.set_attribute("files_written", files_total)

        registry = telemetry.registry
        registry.histogram(
            "fleet_update_cycle_wall_seconds",
            "Wall-clock duration of one fleet-wide update cycle",
        ).observe(perf_counter() - wall_start)
        registry.counter(
            "fleet_update_cycles_total", "Fleet-wide update cycles executed",
        ).inc()
        if rebooted:
            registry.counter(
                "fleet_nodes_rebooted_total", "Node reboots during update cycles",
            ).inc(len(rebooted))
        self._record_rollups(registry)

        self.events.emit(
            now, "keylime.fleet", "fleet.updated",
            nodes=updated, files=files_total, rebooted=len(rebooted),
        )
        return FleetUpdateReport(
            policy_report=policy_report,
            nodes_updated=updated,
            files_written_total=files_total,
            rebooted_nodes=tuple(rebooted),
        )
