"""Fleet management: one verifier, many attested nodes.

The paper's motivation is cloud providers attesting *large fleets*; the
tenant tool exists to "manage groups of attested nodes".  This module
provides that layer on top of the single-node stack:

* :class:`Fleet` provisions N identical machines (same baseline package
  set, each with its own manufactured TPM), registers and onboards all
  of them against one shared runtime policy -- the point of the
  mirror-derived dynamic policy is precisely that identical nodes can
  share it;
* fleet-wide operations: sync-once/update-everywhere cycles, polling
  every node, and status roll-ups;
* revocation wiring: a fleet-level :class:`QuarantineListener` so a
  single compromised node is fenced without touching its siblings;
* a :class:`VerificationScheduler` that batches the whole fleet's
  attestation rounds into one tick and shares a single
  :class:`repro.keylime.policy.VerdictCache` across every node --
  same-distro nodes measure nearly identical files, so policy
  evaluation costs O(unique digests), not O(nodes x entries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.common.clock import Scheduler
from repro.common.errors import StateError
from repro.common.events import EventLog
from repro.common.rng import SeededRng
from repro.distro.apt import AptInstaller
from repro.distro.mirror import LocalMirror
from repro.dynpolicy.generator import DynamicPolicyGenerator, PolicyUpdateReport
from repro.keylime.agent import KeylimeAgent
from repro.keylime.audit import AuditLog
from repro.keylime.policy import RuntimePolicy, VerdictCache
from repro.keylime.registrar import KeylimeRegistrar
from repro.keylime.revocation import QuarantineListener, RevocationNotifier
from repro.keylime.faults import FaultPlan, VerifierOutage
from repro.keylime.retrypolicy import RetryPolicy
from repro.keylime.sharding import ConsistentHashRing, MigrationPlan, shard_balance
from repro.keylime.statestore import (
    export_agent_state,
    import_agent_state,
    restore_verifier,
    snapshot_verifier,
)
from repro.keylime.transport import JsonTransportAgent
from repro.keylime.verifier import (
    POLLABLE_STATES,
    AgentState,
    AttestationResult,
    KeylimeVerifier,
)
from repro.kernelsim.kernel import Machine
from repro.obs import runtime as obs
from repro.obs.capacity import TickBudgetAccountant
from repro.tpm.device import TpmManufacturer


@dataclass
class FleetNode:
    """One attested machine and its per-node plumbing."""

    name: str
    machine: Machine
    apt: AptInstaller
    agent: KeylimeAgent


@dataclass
class FleetUpdateReport:
    """Outcome of one fleet-wide update cycle."""

    policy_report: PolicyUpdateReport
    nodes_updated: int
    files_written_total: int
    rebooted_nodes: tuple[str, ...] = ()


class VerificationScheduler:
    """Batches many agents' attestation rounds into shared ticks.

    Instead of one scheduler timer per agent, the fleet registers every
    agent here and the scheduler drives them all through the verifier's
    staged pipeline in a single ``fleet.poll_batch`` span per tick.
    Because the rounds run back-to-back against one verifier (and
    therefore one shared :class:`~repro.keylime.policy.VerdictCache`),
    the first node of a same-distro batch warms the cache and every
    subsequent node's policy evaluation is almost entirely hits.
    """

    def __init__(
        self,
        verifier: KeylimeVerifier,
        events: EventLog | None = None,
        tick_budget: float | None = None,
        overrun_ticks: int = 3,
        push_mode: bool = False,
    ) -> None:
        self.verifier = verifier
        self.push_mode = push_mode
        self._agents: list[str] = []
        # Set-backed membership index: `register` is called once per
        # node at provision time but also on every re-onboard, and the
        # list scan made that O(fleet) per call.  The list still owns
        # the batch order.
        self._registered: set[str] = set()
        self._stop: object | None = None
        self._push_timers: list = []
        # Push-cadence accounting accumulators, flushed by the reap tick.
        self._push_wall = 0.0
        self._push_polled = 0
        self._push_skipped = 0
        self.accounting = TickBudgetAccountant(
            budget=tick_budget, overrun_ticks=overrun_ticks, events=events,
        )

    def register(self, agent_id: str) -> None:
        """Add an agent to the batch (order = poll order within a tick)."""
        if agent_id not in self._registered:
            self._registered.add(agent_id)
            self._agents.append(agent_id)

    def unregister(self, agent_id: str) -> None:
        """Drop an agent from the batch (a shard migrated it away).

        Idempotent; the remaining batch order is preserved, so the
        agents that did not move keep their exact poll positions -- a
        rebalance must not perturb the survivors' round sequence.
        """
        if agent_id in self._registered:
            self._registered.discard(agent_id)
            self._agents.remove(agent_id)

    @property
    def agents(self) -> tuple[str, ...]:
        """Registered agent ids, in batch order."""
        return tuple(self._agents)

    def poll_batch(self) -> dict[str, AttestationResult]:
        """One attestation round for every still-attesting agent.

        In push mode this delegates to :meth:`push_batch`: the same
        agents, in the same order, drive their own negotiate/submit
        exchanges instead of being polled.
        """
        if self.push_mode:
            return self.push_batch()
        telemetry = obs.get()
        results: dict[str, AttestationResult] = {}
        skipped = 0
        wall_start = perf_counter()
        with telemetry.tracer.span(
            "fleet.poll_batch", agents=len(self._agents)
        ) as span:
            for agent_id in self._agents:
                # SUSPECT nodes stay in the batch (the anti-P2
                # invariant); only FAILED/STOPPED/QUARANTINED drop out.
                if self.verifier.state_of(agent_id) in POLLABLE_STATES:
                    results[agent_id] = self.verifier.poll(agent_id)
                else:
                    skipped += 1
            span.set_attribute("polled", len(results))
            span.set_attribute("skipped", skipped)
            cache = self.verifier.verdict_cache
            if cache is not None:
                span.set_attribute("cache_hit_ratio", round(cache.hit_ratio, 4))
        if skipped:
            telemetry.registry.counter(
                "fleet_poll_skipped_total",
                "Registered agents skipped as non-pollable during batch ticks",
            ).inc(skipped)
        self.accounting.observe_tick(
            self.verifier.scheduler.clock.now,
            wall_seconds=perf_counter() - wall_start,
            registered=len(self._agents),
            polled=len(results),
            skipped=skipped,
            registry=telemetry.registry,
        )
        return results

    def push_batch(self) -> dict[str, AttestationResult]:
        """One agent-driven push exchange per still-attesting agent.

        The manual-driving analogue of :meth:`poll_batch` for push
        mode: every pollable agent runs its negotiate -> submit ->
        verdict exchange (in registration order, against the shared
        verdict cache), then the verifier reaps any session left to
        expire.  Agents whose exchange never produced a result
        (abandoned delivery, protocol rejection) are absent from the
        returned mapping -- the reaper accounts for their silence.
        """
        telemetry = obs.get()
        results: dict[str, AttestationResult] = {}
        skipped = 0
        wall_start = perf_counter()
        with telemetry.tracer.span(
            "fleet.push_batch", agents=len(self._agents)
        ) as span:
            for agent_id in self._agents:
                if self.verifier.state_of(agent_id) in POLLABLE_STATES:
                    result = self.verifier.push_round(agent_id)
                    if result is not None:
                        results[agent_id] = result
                else:
                    skipped += 1
            reaped = self.verifier.reap_push_sessions()
            span.set_attribute("pushed", len(results))
            span.set_attribute("skipped", skipped)
            span.set_attribute("reaped", len(reaped))
            cache = self.verifier.verdict_cache
            if cache is not None:
                span.set_attribute("cache_hit_ratio", round(cache.hit_ratio, 4))
        if skipped:
            telemetry.registry.counter(
                "fleet_poll_skipped_total",
                "Registered agents skipped as non-pollable during batch ticks",
            ).inc(skipped)
        self.accounting.observe_tick(
            self.verifier.scheduler.clock.now,
            wall_seconds=perf_counter() - wall_start,
            registered=len(self._agents),
            polled=len(results),
            skipped=skipped,
            registry=telemetry.registry,
        )
        return results

    def _push_agent_tick(self, agent_id: str) -> None:
        """One agent's self-scheduled push round."""
        if self.verifier.state_of(agent_id) not in POLLABLE_STATES:
            self._push_skipped += 1
            return
        wall_start = perf_counter()
        result = self.verifier.push_round(agent_id)
        self._push_wall += perf_counter() - wall_start
        if result is not None:
            self._push_polled += 1

    def _reap_tick(self) -> None:
        """The verifier's own push-mode tick: reap expired sessions only."""
        telemetry = obs.get()
        wall_start = perf_counter()
        with telemetry.tracer.span("fleet.push_reap") as span:
            reaped = self.verifier.reap_push_sessions()
            span.set_attribute("reaped", len(reaped))
        self.accounting.observe_tick(
            self.verifier.scheduler.clock.now,
            wall_seconds=self._push_wall + (perf_counter() - wall_start),
            registered=len(self._agents),
            polled=self._push_polled,
            skipped=self._push_skipped,
            registry=telemetry.registry,
        )
        self._push_wall = 0.0
        self._push_polled = 0
        self._push_skipped = 0

    def start(
        self,
        scheduler: Scheduler,
        interval: float,
        tick_budget: float | None = None,
    ) -> None:
        """Tick the batch every *interval* simulated seconds.

        *tick_budget* is the accountant's per-tick busy budget; it
        defaults to the interval (one tick must fit in one interval).

        In push mode the cadence inverts: each agent gets its own
        ``push:<agent>`` timer driving its exchanges (the agents own
        their cadence), and the verifier's tick -- ``fleet-push-reap``,
        registered after the agent timers so it runs last within a
        coincident tick -- only reaps expired sessions and flushes the
        interval's accounting.
        """
        self.stop()
        if self.push_mode:
            for agent_id in self._agents:
                self._push_timers.append(
                    scheduler.every(
                        interval,
                        (lambda aid=agent_id: self._push_agent_tick(aid)),
                        label=f"push:{agent_id}",
                    )
                )
            self._stop = scheduler.every(
                interval, self._reap_tick, label="fleet-push-reap"
            )
        else:
            self._stop = scheduler.every(
                interval, self.poll_batch, label="fleet-poll-batch"
            )
        self.accounting.configure(
            interval=getattr(self._stop, "interval", interval),
            budget=tick_budget,
            timer=getattr(self._stop, "label", "fleet-poll-batch"),
        )

    def stop(self) -> None:
        """Cancel the periodic batch tick(s).  Idempotent."""
        stop = self._stop
        if callable(stop):
            self._stop = None
            stop()
        timers, self._push_timers = self._push_timers, []
        for cancel in timers:
            if callable(cancel):
                cancel()


class Fleet:
    """A group of identically provisioned, attested machines."""

    def __init__(
        self,
        size: int,
        mirror: LocalMirror,
        manufacturer: TpmManufacturer,
        scheduler: Scheduler,
        rng: SeededRng,
        policy: RuntimePolicy,
        events: EventLog | None = None,
        kernel_version: str = "5.15.0-91-generic",
        continue_on_failure: bool = False,
        wire_transport: bool = True,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        quarantine_after: int = 3,
        tick_budget: float | None = None,
        push_mode: bool = False,
        push_session_ttl: float | None = None,
    ) -> None:
        """Provision, register and onboard *size* identical nodes.

        With ``wire_transport`` (the default) the verifier talks to each
        agent through a :class:`repro.keylime.transport
        .JsonTransportAgent` proxy: every challenge and every piece of
        evidence crosses the JSON wire formats, traceparent propagation
        included, exactly as it would between separate processes.  The
        round-trip is lossless, so verdicts and RNG draws are unchanged;
        set it ``False`` to shave the serialisation cost in
        pure-throughput experiments.

        A *fault_plan* (:mod:`repro.keylime.faults`) interposes on both
        wire legs of every node; pair it with a *retry_policy* so
        transient injections are retried and exhausted budgets degrade
        to SUSPECT instead of crashing a batch tick.  A plan with no
        matching fault specs is bit-identical to no plan at all.
        ``quarantine_after`` is the verifier's suspect-window budget.

        ``tick_budget`` seeds the batch scheduler's
        :class:`repro.obs.capacity.TickBudgetAccountant`: the busy
        seconds one batch tick may spend before it counts as an
        overrun.  Left ``None`` it defaults to the polling interval
        when :meth:`start_polling` runs.

        With ``push_mode`` the attestation direction inverts: each
        node's agent drives its own negotiate -> submit -> verdict
        exchange on its own timer, and the verifier's tick only reaps
        expired push sessions.  The wire/fault proxies, retry policy,
        verdict cache and degraded-state machinery are all shared with
        pull mode.  ``push_session_ttl`` overrides the verifier's
        session freshness window.
        """
        if size < 1:
            raise ValueError("fleet needs at least one node")
        obs.get().bind_clock(scheduler.clock)
        self.mirror = mirror
        self.scheduler = scheduler
        self.events = events if events is not None else EventLog()
        self.policy = policy
        self.generator = DynamicPolicyGenerator(
            mirror, events=self.events, rng=rng.fork("generator")
        )
        self.notifier = RevocationNotifier(events=self.events)
        self.quarantine = QuarantineListener()
        self.notifier.subscribe(self.quarantine)
        self.audit = AuditLog()
        self.registrar = KeylimeRegistrar(
            [manufacturer.root_certificate], events=self.events
        )
        # One verdict cache for the whole fleet: identically provisioned
        # nodes measure the same files, so node 0's evaluations answer
        # everyone else's.
        self.verdict_cache = VerdictCache()
        self.fault_plan = fault_plan
        if fault_plan is not None:
            fault_plan.bind_clock(scheduler.clock)
        self.push_mode = push_mode
        verifier_kwargs = {}
        if push_session_ttl is not None:
            verifier_kwargs["push_session_ttl"] = push_session_ttl
        self.verifier = KeylimeVerifier(
            self.registrar, scheduler, rng.fork("verifier"), events=self.events,
            continue_on_failure=continue_on_failure,
            notifier=self.notifier, audit=self.audit,
            verdict_cache=self.verdict_cache,
            retry_policy=retry_policy, quarantine_after=quarantine_after,
            **verifier_kwargs,
        )
        self.poll_scheduler = VerificationScheduler(
            self.verifier, events=self.events, tick_budget=tick_budget,
            push_mode=push_mode,
        )

        self.nodes: list[FleetNode] = []
        baseline = mirror.index()
        for index in range(size):
            name = f"node-{index:03d}"
            machine = Machine(
                name, manufacturer.manufacture(), clock=scheduler.clock,
                events=self.events, kernel_version=kernel_version,
            )
            machine.boot()
            apt = AptInstaller(machine, events=self.events)
            apt.upgrade_from(baseline, install_new=True)
            agent = KeylimeAgent(f"agent-{name}", machine)
            self.registrar.register(agent)
            if fault_plan is not None:
                verifier_side = fault_plan.wrap(agent)
            elif wire_transport:
                verifier_side = JsonTransportAgent(agent)
            else:
                verifier_side = agent
            self.verifier.add_agent(verifier_side, policy)
            self.poll_scheduler.register(agent.agent_id)
            self.nodes.append(FleetNode(name=name, machine=machine, apt=apt, agent=agent))

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, name: str) -> FleetNode:
        """Look up one node by name."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"fleet has no node {name!r}")

    # -- attestation -------------------------------------------------------

    def poll_all(self) -> dict[str, AttestationResult]:
        """One attestation round against every still-attesting node.

        Rounds are routed through the shared
        :class:`VerificationScheduler` batch, so all nodes of the tick
        hit one verdict cache back-to-back.
        """
        telemetry = obs.get()
        by_agent = self.poll_scheduler.poll_batch()
        names = {node.agent.agent_id: node.name for node in self.nodes}
        results = {names[agent_id]: result for agent_id, result in by_agent.items()}
        self._record_rollups(telemetry.registry)
        self.events.emit(
            self.scheduler.clock.now, "keylime.fleet", "fleet.polled",
            polled=len(results),
            ok=sum(1 for result in results.values() if result.ok),
            healthy=self.healthy_count(),
        )
        return results

    def _record_rollups(self, registry) -> None:
        """Refresh the fleet-wide state gauges."""
        by_state: dict[str, int] = {}
        for state in self.status().values():
            by_state[state] = by_state.get(state, 0) + 1
        nodes_gauge = registry.gauge(
            "fleet_nodes", "Fleet nodes by verifier state", ("state",),
        )
        for state in AgentState:
            nodes_gauge.labels(state=state.value).set(by_state.get(state.value, 0))
        registry.gauge(
            "fleet_quarantined_nodes", "Nodes currently quarantined",
        ).set(len(self.quarantine.quarantined))

    def start_polling(
        self, interval: float, tick_budget: float | None = None
    ) -> None:
        """Continuous attestation for the whole fleet.

        One batch tick polls every attesting node back-to-back (sharing
        the verdict cache within the tick), instead of N independent
        per-agent timers.  A fleet heartbeat on the same cadence keeps
        the state roll-up (events + gauges) current.  *tick_budget*
        overrides the saturation accountant's per-tick busy budget
        (defaults to the interval).
        """
        self.poll_scheduler.start(self.scheduler, interval, tick_budget=tick_budget)
        self._stop_heartbeat = self.scheduler.every(
            interval, self._heartbeat, label="fleet-heartbeat"
        )

    def stop_polling(self) -> None:
        """Cancel the fleet's batch polling and heartbeat.  Idempotent."""
        self.poll_scheduler.stop()
        stop = getattr(self, "_stop_heartbeat", None)
        if callable(stop):
            self._stop_heartbeat = None
            stop()

    def _heartbeat(self) -> None:
        """Roll up fleet state into one event and the state gauges."""
        by_state: dict[str, int] = {}
        for state in self.status().values():
            by_state[state] = by_state.get(state, 0) + 1
        self._record_rollups(obs.get().registry)
        self.events.emit(
            self.scheduler.clock.now, "keylime.fleet", "fleet.heartbeat",
            healthy=self.healthy_count(),
            attesting=by_state.get(AgentState.ATTESTING.value, 0),
            failed=by_state.get(AgentState.FAILED.value, 0),
            suspect=by_state.get(AgentState.SUSPECT.value, 0),
            quarantined=by_state.get(AgentState.QUARANTINED.value, 0),
        )

    def watch_health(self, watch, poll_interval: float) -> None:
        """Attach a :class:`repro.obs.health.HealthWatch` to this fleet.

        Binds the watch to the fleet's EventLog, the active telemetry
        registry/tracer, and the fleet's hash-chained audit log, then
        registers every node's expected poll cadence with the
        coverage-gap detector and schedules the periodic tick.
        """
        telemetry = obs.get()
        watch.attach(
            self.events,
            registry=telemetry.registry if telemetry.enabled else None,
            tracer=telemetry.tracer if telemetry.enabled else None,
            audit=self.audit,
            poll_interval=poll_interval,
            now=self.scheduler.clock.now,
        )
        for node in self.nodes:
            watch.watch_agent(
                node.agent.agent_id, poll_interval, now=self.scheduler.clock.now
            )
        watch.schedule(self.scheduler)

    def observe(self, observatory, interval: float | None = None):
        """Schedule periodic TSDB collection for this fleet's run.

        Binds the :class:`repro.obs.rules.Observatory` to the active
        telemetry registry (when enabled and not already bound) and
        schedules ``observatory.collect`` on the fleet scheduler every
        *interval* (the observatory's own cadence by default).  Safe to
        combine with a TSDB-backed :class:`~repro.obs.health
        .HealthWatch` -- collection is idempotent per timestamp, so
        whichever runs first at a tick does the scrape.  Returns the
        stop callable.
        """
        telemetry = obs.get()
        if telemetry.enabled and not observatory.bound:
            observatory.bind(telemetry.registry)
        if interval is not None:
            observatory.poll_interval = interval
        return observatory.schedule(self.scheduler)

    def status(self) -> dict[str, str]:
        """node name -> verifier state value."""
        return {
            node.name: self.verifier.state_of(node.agent.agent_id).value
            for node in self.nodes
        }

    def healthy_count(self) -> int:
        """Nodes still attesting and not quarantined."""
        return sum(
            1 for node in self.nodes
            if self.verifier.state_of(node.agent.agent_id) is AgentState.ATTESTING
            and not self.quarantine.is_quarantined(node.agent.agent_id)
        )

    # -- fleet-wide updates ----------------------------------------------------

    def run_update_cycle(self, reboot_on_new_kernel: bool = True) -> FleetUpdateReport:
        """Sync once, generate the policy delta once, update every node.

        The single shared policy is pushed before any node upgrades --
        the same ordering invariant as the single-node orchestrator,
        amortised across the fleet (the generator's work is independent
        of fleet size, which is the operational win of the scheme).
        """
        telemetry = obs.get()
        wall_start = perf_counter()
        now = self.scheduler.clock.now
        with telemetry.tracer.span("fleet.update_cycle") as span:
            sync = self.mirror.sync(now)
            changed = list(sync.new_packages) + list(sync.changed_packages)
            allowed = {node.machine.current_kernel for node in self.nodes}
            policy_report = self.generator.generate_update(self.policy, changed, allowed)
            with telemetry.tracer.span("fleet.policy_push", nodes=len(self.nodes)):
                for node in self.nodes:
                    self.verifier.update_policy(node.agent.agent_id, self.policy)

            files_total = 0
            updated = 0
            rebooted: list[str] = []
            index = self.mirror.index()
            for node in self.nodes:
                with telemetry.tracer.span(
                    "fleet.node_update", node=node.name
                ) as node_span:
                    report = node.apt.upgrade_from(index)
                    if report.is_empty:
                        continue
                    updated += 1
                    files_total += report.files_written
                    node_span.set_attribute("files", report.files_written)
                    for package in report.packages:
                        for pf in package.executables[:20]:
                            node.machine.exec_file(pf.path)
                    if node.machine.pending_kernel is not None:
                        self.generator.prepare_for_reboot(
                            self.policy, node.machine.pending_kernel
                        )
                        self.verifier.update_policy(node.agent.agent_id, self.policy)
                        if reboot_on_new_kernel:
                            node.machine.reboot()
                            rebooted.append(node.name)
            span.set_attribute("nodes_updated", updated)
            span.set_attribute("files_written", files_total)

        registry = telemetry.registry
        registry.histogram(
            "fleet_update_cycle_wall_seconds",
            "Wall-clock duration of one fleet-wide update cycle",
        ).observe(perf_counter() - wall_start)
        registry.counter(
            "fleet_update_cycles_total", "Fleet-wide update cycles executed",
        ).inc()
        if rebooted:
            registry.counter(
                "fleet_nodes_rebooted_total", "Node reboots during update cycles",
            ).inc(len(rebooted))
        self._record_rollups(registry)

        self.events.emit(
            now, "keylime.fleet", "fleet.updated",
            nodes=updated, files=files_total, rebooted=len(rebooted),
        )
        return FleetUpdateReport(
            policy_report=policy_report,
            nodes_updated=updated,
            files_written_total=files_total,
            rebooted_nodes=tuple(rebooted),
        )


# ---------------------------------------------------------------------------
# Multi-verifier sharding
# ---------------------------------------------------------------------------


@dataclass
class ShardHost:
    """One shard: a self-contained verifier attesting a key range.

    The shard is the unit of both assignment and failover.  It owns a
    private :class:`KeylimeVerifier` (own RNG streams, own hash-chained
    audit log, own batch scheduler) so that *where it runs* is
    irrelevant to *what it computes*: when the hosting member dies, the
    whole shard is rebuilt on the adopter from ``checkpoint`` and its
    nonce sequence, verdict history and audit chain continue
    bit-identically.  ``host`` names the member currently running the
    shard; it starts equal to ``shard_id`` and diverges on adoption.
    """

    shard_id: str
    host: str
    verifier: KeylimeVerifier
    batch: VerificationScheduler
    audit: AuditLog
    agents: dict[str, KeylimeAgent] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
    checkpoint: dict | None = None
    adoptions: int = 0

    def __len__(self) -> int:
        return len(self.order)


class VerifierFleet:
    """N verifiers over one provisioned fleet, ring-assigned.

    Wraps an already-provisioned :class:`Fleet` (machines, registrar,
    policy, wire/fault proxies) and splits its agents across
    ``n_verifiers`` shards via a seeded
    :class:`~repro.keylime.sharding.ConsistentHashRing` attached to the
    registrar.  Each shard runs the existing
    :class:`VerificationScheduler` over its key range against a private
    :class:`KeylimeVerifier`; the :class:`~repro.keylime.policy
    .VerdictCache` is the *fleet's* single instance shared by every
    shard, so identical files evaluated on any shard answer all of
    them -- a migrated agent never cold-starts policy evaluation.

    Three membership operations:

    * :meth:`join` / :meth:`leave` -- explicit rebalancing.  The ring
      moves the minimal key range (see :mod:`repro.keylime.sharding`)
      and each moved agent's attestation record travels via the
      statestore's per-agent export/import; open push sessions are
      deliberately abandoned (closed at the source), so pre-migration
      evidence replays to *neither* shard.
    * :meth:`kill` (and scheduled :class:`~repro.keylime.faults
      .VerifierOutage` windows) -- failure.  The heartbeat probe at the
      top of every :meth:`poll_all` tick detects the unreachable host
      *before* any round runs, and the shard fails over whole: a fresh
      verifier on the ring-chosen adopter restores the shard's last
      round-boundary checkpoint, so the tick's round runs on the
      adopter and no agent misses a single poll -- the anti-P2
      guarantee extended to verifier churn.

    After wrapping, drive attestation through ``VerifierFleet.poll_all``
    (the inner fleet's single-verifier batch is idle; its verifier keeps
    enrollment-time slots only).
    """

    def __init__(
        self,
        fleet: Fleet,
        n_verifiers: int,
        rng: SeededRng,
        seed: str | None = None,
        vnodes: int | None = None,
        outages: list[VerifierOutage] | tuple[VerifierOutage, ...] = (),
        checkpoint_every: int = 1,
    ) -> None:
        """Shard *fleet* across ``n_verifiers`` members.

        *rng* provides each shard verifier's streams via stable named
        forks (``shard-<id>``); *seed* keys the ring's hash material
        (defaults to the rng's seed repr, so one experiment seed fixes
        both placement and nonce sequences).  *outages* is a chaos
        schedule of :class:`VerifierOutage` windows consulted by the
        heartbeat probe.  ``checkpoint_every`` controls the failover
        checkpoint cadence in rounds (1 = every round boundary; 0
        disables automatic checkpoints for pure-throughput benches).
        """
        if n_verifiers < 1:
            raise ValueError("verifier fleet needs at least one member")
        self.fleet = fleet
        self.rng = rng
        self.push_mode = fleet.push_mode
        self.checkpoint_every = checkpoint_every
        self.outages = list(outages)
        self.ring = ConsistentHashRing(
            seed if seed is not None else rng.seed_repr,
            **({"vnodes": vnodes} if vnodes is not None else {}),
        )
        self.members: dict[str, bool] = {}
        self.shards: dict[str, ShardHost] = {}
        self._round = 0
        # Fleet-wide agent order (provisioning order): the canonical
        # key sequence for every ring computation, so plans are
        # deterministic and migrated batches keep a stable order.
        self.agent_ids: list[str] = list(fleet.poll_scheduler.agents)

        for index in range(n_verifiers):
            member = f"verifier-{index}"
            self.ring.add(member)
            self.members[member] = True
            self.shards[member] = self._new_host(member)
        fleet.registrar.attach_shard_ring(self.ring)

        for agent_id in self.agent_ids:
            shard = self.ring.owner(agent_id)
            slot = fleet.verifier._slots[agent_id]
            self._enroll(self.shards[shard], agent_id, slot.agent, slot.policy,
                         slot.measured_boot)
        # An initial checkpoint per shard: a member may die before the
        # first round, and failover must still have a state to restore.
        self.checkpoint()
        self._record_rollups()
        fleet.events.emit(
            fleet.scheduler.clock.now, "keylime.fleet", "fleet.sharded",
            members=n_verifiers, agents=len(self.agent_ids),
            balance=round(self.balance(), 4),
        )

    # -- construction helpers ----------------------------------------------

    def _new_host(self, shard_id: str, fork_name: str | None = None) -> ShardHost:
        audit = AuditLog()
        verifier = KeylimeVerifier(
            self.fleet.registrar,
            self.fleet.scheduler,
            self.rng.fork(fork_name if fork_name is not None else f"shard-{shard_id}"),
            events=self.fleet.events,
            continue_on_failure=self.fleet.verifier.continue_on_failure,
            notifier=self.fleet.notifier,
            audit=audit,
            verdict_cache=self.fleet.verdict_cache,
            retry_policy=self.fleet.verifier.retry_policy,
            quarantine_after=self.fleet.verifier.quarantine_after,
            push_session_ttl=self.fleet.verifier.push_session_ttl,
        )
        batch = VerificationScheduler(
            verifier, events=self.fleet.events, push_mode=self.push_mode,
        )
        return ShardHost(
            shard_id=shard_id, host=shard_id, verifier=verifier,
            batch=batch, audit=audit,
        )

    def _enroll(self, host, agent_id, agent, policy, measured_boot) -> None:
        host.verifier.add_agent(agent, policy, measured_boot=measured_boot)
        host.batch.register(agent_id)
        host.agents[agent_id] = agent
        host.order.append(agent_id)

    # -- introspection -----------------------------------------------------

    @property
    def shard_ids(self) -> tuple[str, ...]:
        return tuple(sorted(self.shards))

    def live_members(self) -> set[str]:
        """Members currently reachable (alive and outside any outage)."""
        now = self.fleet.scheduler.clock.now
        return {
            member for member, alive in self.members.items()
            if alive and not self._in_outage(member, now)
        }

    def _in_outage(self, member: str, now: float) -> bool:
        return any(
            outage.member == member and outage.active(now)
            for outage in self.outages
        )

    def shard_of(self, agent_id: str) -> str:
        """The shard attesting *agent_id* (ring authority)."""
        return self.fleet.registrar.shard_of(agent_id)

    def verifier_for(self, agent_id: str) -> KeylimeVerifier:
        """The verifier currently answering for *agent_id*."""
        return self.shards[self.shard_of(agent_id)].verifier

    def shard_sizes(self) -> dict[str, int]:
        return {shard_id: len(host) for shard_id, host in self.shards.items()}

    def balance(self) -> float:
        """Mean-over-max shard occupancy (1.0 = perfectly even)."""
        return shard_balance(self.shard_sizes())

    def status(self) -> dict[str, str]:
        """node name -> verifier state, across every shard."""
        states = {}
        for node in self.fleet.nodes:
            verifier = self.verifier_for(node.agent.agent_id)
            states[node.name] = verifier.state_of(node.agent.agent_id).value
        return states

    # -- attestation -------------------------------------------------------

    def poll_all(self) -> dict[str, AttestationResult]:
        """One tick: heartbeat probe, failover, then every shard's batch.

        The probe runs *first*, so a shard whose host died since the
        last tick is adopted and polled in this same tick -- the fleet
        never skips a round over a verifier failure.  Shards poll in
        sorted order against the shared verdict cache; the round
        boundary ends with a checkpoint of every shard (the state a
        failover at the *next* boundary would restore).
        """
        self.probe()
        results: dict[str, AttestationResult] = {}
        for shard_id in self.shard_ids:
            results.update(self.shards[shard_id].batch.poll_batch())
        self._round += 1
        if self.checkpoint_every and self._round % self.checkpoint_every == 0:
            self.checkpoint()
        self._record_rollups()
        self.fleet.events.emit(
            self.fleet.scheduler.clock.now, "keylime.fleet", "fleet.polled",
            polled=len(results),
            ok=sum(1 for result in results.values() if result.ok),
            healthy=sum(
                1 for result in results.values() if result.ok
            ),
        )
        return results

    def probe(self) -> list[str]:
        """Heartbeat pass: adopt every shard whose host is unreachable.

        Returns the shard ids that failed over.  Detection is driven by
        :meth:`kill` flags and the chaos layer's
        :class:`~repro.keylime.faults.VerifierOutage` windows -- the
        saturation machinery's heartbeat cadence, pointed at verifier
        processes instead of agents.
        """
        live = self.live_members()
        adopted = []
        for shard_id in self.shard_ids:
            host = self.shards[shard_id]
            if host.host not in live:
                self._adopt(shard_id, live, reason="unreachable")
                adopted.append(shard_id)
        return adopted

    def checkpoint(self) -> None:
        """Snapshot every shard's state (the failover restore point)."""
        for host in self.shards.values():
            host.checkpoint = snapshot_verifier(
                host.verifier, meta={"shard": host.shard_id, "host": host.host},
            )

    # -- failure and failover ----------------------------------------------

    def kill(self, member: str) -> None:
        """Mark *member* dead (process crash).  Failover happens at the
        next :meth:`probe` -- i.e. at the top of the next tick."""
        if member not in self.members:
            raise StateError(f"no verifier member {member!r}")
        self.members[member] = False

    def _adopt(self, shard_id: str, live: set[str], reason: str) -> str:
        """Move *shard_id* whole onto a ring-chosen live adopter.

        The adopter builds a fresh verifier, re-enrolls the shard's
        agents in their original batch order, and restores the last
        round-boundary checkpoint: per-agent records, open push
        sessions, all three RNG streams and the audit chain.  No
        registrar record is touched (zero re-enrollment) and the
        shard's assignment is unchanged -- failure moves *hosting*,
        never keys.
        """
        host = self.shards[shard_id]
        eligible = live - {host.host}
        if not eligible:
            raise StateError(
                f"no live member can adopt shard {shard_id!r} "
                f"(host {host.host!r} unreachable)"
            )
        adopter = self.ring.owner(f"adopt|{shard_id}", among=eligible)
        if host.checkpoint is None:  # pragma: no cover - checkpointed at build
            raise StateError(f"shard {shard_id!r} has no checkpoint to restore")
        host.adoptions += 1
        fresh = self._new_host(
            shard_id, fork_name=f"shard-{shard_id}/adoption-{host.adoptions}",
        )
        for agent_id in host.order:
            slot = host.verifier._slots[agent_id]
            self._enroll(fresh, agent_id, slot.agent, slot.policy,
                         slot.measured_boot)
        restore_verifier(fresh.verifier, host.checkpoint)
        fresh.host = adopter
        fresh.checkpoint = host.checkpoint
        fresh.adoptions = host.adoptions
        self.shards[shard_id] = fresh
        obs.get().registry.counter(
            "fleet_shard_failovers_total",
            "Whole-shard adoptions after verifier failures",
        ).inc()
        self.fleet.events.emit(
            self.fleet.scheduler.clock.now, "keylime.fleet",
            "fleet.shard.failover",
            shard=shard_id, previous_host=host.host, adopter=adopter,
            agents=len(fresh.order), reason=reason,
        )
        return adopter

    # -- rebalancing -------------------------------------------------------

    def join(self, member: str) -> MigrationPlan:
        """Add a verifier member; migrate exactly the keys it attracts.

        The ring guarantees the move set is minimal (only keys landing
        on the new member's points); each moved agent's record travels
        via per-agent export/import with open sessions abandoned.  The
        surviving agents' batch positions are untouched, and every
        agent is attested by exactly one shard at every instant --
        :meth:`poll_all` between any two statements of this method
        would still poll each agent exactly once.
        """
        if member in self.members:
            raise StateError(f"verifier member {member!r} already exists")
        self.members[member] = True
        self.shards[member] = self._new_host(member)
        plan = self.ring.plan_join(self.agent_ids, member)
        for move in plan.moves:
            self._migrate(move.key, move.source, move.target)
        self.checkpoint()
        self._record_rollups()
        self.fleet.events.emit(
            self.fleet.scheduler.clock.now, "keylime.fleet", "fleet.shard.joined",
            member=member, moved=len(plan.moves),
            balance=round(self.balance(), 4),
        )
        return plan

    def leave(self, member: str) -> MigrationPlan:
        """Retire a verifier member gracefully; release only its keys.

        Shards the member is *hosting* by adoption move to new adopters
        first; then the member's own key range migrates agent-by-agent
        to each key's next ring owner, and the empty shard is dropped.
        """
        if member not in self.members:
            raise StateError(f"no verifier member {member!r}")
        survivors = self.live_members() - {member}
        if not survivors:
            raise StateError("cannot retire the last live verifier member")
        for shard_id in self.shard_ids:
            host = self.shards[shard_id]
            if host.host == member and shard_id != member:
                self._adopt(shard_id, survivors, reason="host-retired")
        plan = self.ring.plan_leave(self.agent_ids, member)
        for move in plan.moves:
            self._migrate(move.key, move.source, move.target)
        del self.shards[member]
        del self.members[member]
        self.checkpoint()
        self._record_rollups()
        self.fleet.events.emit(
            self.fleet.scheduler.clock.now, "keylime.fleet", "fleet.shard.left",
            member=member, moved=len(plan.moves),
            balance=round(self.balance(), 4),
        )
        return plan

    def _migrate(self, agent_id: str, source_id: str, target_id: str) -> None:
        """Hand one agent's attestation record between shards.

        Sessions are closed at the source (``remove_agent``) and not
        recreated at the target (``include_sessions=False``): evidence
        negotiated before the move verifies on *neither* verifier
        afterwards, by construction.
        """
        source = self.shards[source_id]
        target = self.shards[target_id]
        slot = source.verifier._slots[agent_id]
        record = export_agent_state(source.verifier, agent_id)
        agent, policy, measured_boot = slot.agent, slot.policy, slot.measured_boot
        source.batch.unregister(agent_id)
        source.verifier.remove_agent(agent_id)
        source.agents.pop(agent_id, None)
        source.order.remove(agent_id)
        self._enroll(target, agent_id, agent, policy, measured_boot)
        import_agent_state(target.verifier, record, include_sessions=False)
        obs.get().registry.counter(
            "fleet_shard_migrations_total",
            "Per-agent state handoffs between shards during rebalancing",
        ).inc()
        self.fleet.events.emit(
            self.fleet.scheduler.clock.now, "keylime.fleet",
            "fleet.shard.migrated",
            agent=agent_id, source=source_id, target=target_id,
        )

    # -- observability -----------------------------------------------------

    def _record_rollups(self) -> None:
        """Refresh the per-shard gauges the shard panel and the
        ``fleet:shard_balance`` recording rule read."""
        registry = obs.get().registry
        agents_gauge = registry.gauge(
            "fleet_shard_agents", "Agents assigned per shard", ("shard",),
        )
        hosted_gauge = registry.gauge(
            "fleet_shard_hosted",
            "Which member hosts each shard (1 = hosting)",
            ("shard", "host"),
        )
        for shard_id, host in self.shards.items():
            agents_gauge.labels(shard=shard_id).set(len(host))
            for member in self.members:
                hosted_gauge.labels(shard=shard_id, host=member).set(
                    1.0 if host.host == member else 0.0
                )
        registry.gauge(
            "fleet_shard_members", "Live verifier members",
        ).set(len(self.live_members()))
        by_state: dict[str, int] = {}
        for state in self.status().values():
            by_state[state] = by_state.get(state, 0) + 1
        nodes_gauge = registry.gauge(
            "fleet_nodes", "Fleet nodes by verifier state", ("state",),
        )
        for state in AgentState:
            nodes_gauge.labels(state=state.value).set(
                by_state.get(state.value, 0)
            )
