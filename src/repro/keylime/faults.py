"""Deterministic fault injection for the agent/verifier wire.

The paper's P2 and FP studies both live on the boundary between
*transient operational noise* and *integrity failure*: a verifier that
halts on the first hiccup leaves an attestation-log gap (P2), and one
that shrugs off every anomaly can be made to shrug off tampering.  To
study that boundary the reproduction needs a network that actually
misbehaves -- on purpose, repeatably.

:class:`FaultPlan` is that network.  It produces channel hooks for
:class:`repro.keylime.transport.JsonTransportAgent` (one per wire leg
per node) and injects six fault kinds, each addressable by sim-time
window, node, wire leg and probability:

* ``drop`` / ``partition`` -- the message never arrives; the channel
  raises :class:`~repro.common.errors.TransientTransportError`.
  A partition is a drop with certainty over a window, modelling a
  per-node network split rather than lossy-link noise.
* ``delay`` -- a latency draw; past the plan's per-attempt timeout it
  becomes a transport timeout (transient), below it the message is
  merely late (recorded, delivered unchanged -- the discrete-event
  clock is owned by the scheduler, so sub-timeout delays are observable
  latency, not schedule perturbation).
* ``duplicate`` -- the same payload delivered twice.  The synchronous
  request/response wire deduplicates by construction, so the modelled
  effect is wasted bandwidth plus an injection record; the chaos
  property suite uses it to prove duplicates are *harmless*.
* ``corrupt`` -- one byte of a security-relevant field flipped
  (challenge nonce; response signature, quote nonce or a log line), so
  every injection is semantically visible to verification and must
  surface as an :class:`~repro.common.errors.IntegrityError`-class
  failure, never be retried away.
* ``replay`` -- the previous round's payload substituted for the fresh
  one (network reordering or an attacker replaying stale evidence);
  nonce freshness makes this an integrity failure at the verifier.

Everything is driven by :class:`repro.common.rng.SeededRng`: each
(node, leg) channel forks its own named stream, so a plan's injection
sequence is a pure function of ``(seed, profile, traffic)`` and two
runs with the same chaos seed byte-match.  A plan whose specs never
match (or an empty plan) makes **zero** RNG draws and never touches a
payload, which is what makes the clean-network bit-identity guarantee
testable.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.common.errors import TransientTransportError
from repro.common.rng import SeededRng
from repro.keylime.retrypolicy import DEFAULT_ATTEMPT_TIMEOUT
from repro.keylime.transport import JsonTransportAgent
from repro.obs import runtime as obs


class FaultKind(Enum):
    """The injectable fault families."""

    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"
    CORRUPT = "corrupt"
    REPLAY = "replay"
    PARTITION = "partition"


#: Fault kinds that model the network misbehaving (retryable).
TRANSIENT_KINDS = frozenset(
    {FaultKind.DROP, FaultKind.DELAY, FaultKind.DUPLICATE, FaultKind.PARTITION}
)
#: Fault kinds that model tampering (terminal; never retried).
INTEGRITY_KINDS = frozenset({FaultKind.CORRUPT, FaultKind.REPLAY})


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: what, where, when, how often.

    ``leg`` is ``"request"``, ``"response"`` or ``"both"``; ``nodes``
    limits the rule to specific agent ids (``None`` = every node); the
    rule is live over sim-time ``[start, end)``.
    """

    kind: FaultKind
    probability: float = 1.0
    leg: str = "both"
    start: float = 0.0
    end: float = math.inf
    nodes: tuple[str, ...] | None = None
    delay_range: tuple[float, float] = (0.25, 6.0)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.leg not in ("request", "response", "both"):
            raise ValueError(f"leg must be request/response/both, got {self.leg!r}")
        if self.end < self.start:
            raise ValueError(f"window ends ({self.end}) before it starts ({self.start})")

    def matches(self, agent_id: str, leg: str, now: float) -> bool:
        """Whether this rule applies to one delivery."""
        if self.leg != "both" and self.leg != leg:
            return False
        if self.nodes is not None and agent_id not in self.nodes:
            return False
        return self.start <= now < self.end


@dataclass(frozen=True)
class InjectionRecord:
    """One fault actually injected (the plan's ground-truth log).

    The chaos property suite joins this log against verdict sequences:
    every invariant ("no transient fault produces FAILED", "no
    corruption survives as PASSED") is phrased over these records.
    """

    time: float
    agent_id: str
    kind: FaultKind
    leg: str
    detail: str = ""


# Fields a corrupt fault is allowed to target, per leg.  All of them are
# security-relevant -- verification *must* notice the flip -- which is
# what makes the no-masking property crisply testable.  (Flipping, say,
# the traceparent or ``total_entries`` would be an injection the
# verifier legitimately ignores.)
_CORRUPT_REQUEST_FIELDS = ("nonce",)
_CORRUPT_RESPONSE_FIELDS = ("signature", "nonce", "ima_log")


def _flip_char(value: str, index: int) -> str:
    """Replace one character with a different hex digit."""
    replacement = "0" if value[index] != "0" else "f"
    return value[:index] + replacement + value[index + 1:]


class FaultPlan:
    """A seeded schedule of wire faults for a set of nodes.

    Built from :class:`FaultSpec` rules; hand :meth:`channel` hooks to a
    :class:`~repro.keylime.transport.JsonTransportAgent` (or call
    :meth:`wrap` to build one), then :meth:`bind_clock` once the run's
    scheduler exists.  Every injection lands in :attr:`injections` and
    in the ``transport_faults_injected_total{kind}`` counter.
    """

    def __init__(
        self,
        rng: SeededRng,
        specs: tuple[FaultSpec, ...] | list[FaultSpec] = (),
        attempt_timeout: float = DEFAULT_ATTEMPT_TIMEOUT,
        name: str = "custom",
    ) -> None:
        self.rng = rng
        self.specs = tuple(specs)
        self.attempt_timeout = attempt_timeout
        self.name = name
        self.injections: list[InjectionRecord] = []
        self._clock = None
        self._channel_rngs: dict[tuple[str, str], SeededRng] = {}
        self._history: dict[tuple[str, str], str] = {}

    def bind_clock(self, clock) -> None:
        """Point injection-window checks at the run's sim clock."""
        self._clock = clock

    @property
    def now(self) -> float:
        """Current sim time (0.0 before a clock is bound)."""
        return self._clock.now if self._clock is not None else 0.0

    def counts_by_kind(self) -> dict[str, int]:
        """Injection totals keyed by fault-kind value."""
        counts: dict[str, int] = {}
        for record in self.injections:
            counts[record.kind.value] = counts.get(record.kind.value, 0) + 1
        return counts

    def injections_for(
        self, agent_id: str, since: float = 0.0, until: float = math.inf
    ) -> list[InjectionRecord]:
        """Injections against one node inside ``[since, until]``."""
        return [
            record for record in self.injections
            if record.agent_id == agent_id and since <= record.time <= until
        ]

    def wrap(self, agent) -> JsonTransportAgent:
        """A wire proxy for *agent* with both legs routed through the plan."""
        return JsonTransportAgent(
            agent,
            channel=self.channel(agent.agent_id, "response"),
            request_channel=self.channel(agent.agent_id, "request"),
        )

    def channel(self, agent_id: str, leg: str) -> Callable[[str], str]:
        """The channel hook for one (node, leg) pair.

        Each pair gets its own forked RNG stream, so the injection
        sequence seen by one node never depends on how often another
        node's wire is exercised.
        """
        if leg not in ("request", "response"):
            raise ValueError(f"leg must be request or response, got {leg!r}")
        key = (agent_id, leg)
        if key not in self._channel_rngs:
            self._channel_rngs[key] = self.rng.fork(f"chaos/{agent_id}/{leg}")
        channel_rng = self._channel_rngs[key]

        def deliver(blob: str) -> str:
            return self._deliver(agent_id, leg, blob, channel_rng)

        return deliver

    # -- delivery ----------------------------------------------------------

    def _deliver(self, agent_id: str, leg: str, blob: str, rng: SeededRng) -> str:
        now = self.now
        # The authentic payload enters the replay buffer *before* any
        # substitution, so a replay fault genuinely delivers the
        # previous round's bytes.
        key = (agent_id, leg)
        previous = self._history.get(key)
        self._history[key] = blob
        for spec in self.specs:
            if not spec.matches(agent_id, leg, now):
                continue
            if spec.probability < 1.0 and not rng.bernoulli(spec.probability):
                continue
            injected = self._apply(spec, agent_id, leg, blob, previous, rng, now)
            if injected is not None:
                return injected
        return blob

    def _record(
        self, kind: FaultKind, agent_id: str, leg: str, now: float, detail: str
    ) -> None:
        self.injections.append(
            InjectionRecord(time=now, agent_id=agent_id, kind=kind, leg=leg,
                            detail=detail)
        )
        obs.get().registry.counter(
            "transport_faults_injected_total",
            "Wire faults injected by the chaos layer",
            labelnames=("kind",),
        ).labels(kind=kind.value).inc()

    def _apply(
        self,
        spec: FaultSpec,
        agent_id: str,
        leg: str,
        blob: str,
        previous: str | None,
        rng: SeededRng,
        now: float,
    ) -> str | None:
        """Inject one fault; ``None`` means the rule ended up a no-op."""
        kind = spec.kind
        if kind in (FaultKind.DROP, FaultKind.PARTITION):
            self._record(kind, agent_id, leg, now, f"{leg} leg severed")
            raise TransientTransportError(
                f"injected {kind.value}: {leg} to/from {agent_id} lost",
                kind=kind.value,
            )
        if kind is FaultKind.DELAY:
            delay = rng.uniform(*spec.delay_range)
            self._record(kind, agent_id, leg, now, f"{delay:.3f}s")
            obs.get().registry.histogram(
                "transport_injected_delay_seconds",
                "Latency injected into wire deliveries by the chaos layer",
            ).observe(delay)
            if delay > self.attempt_timeout:
                raise TransientTransportError(
                    f"injected delay {delay:.3f}s exceeds attempt timeout "
                    f"{self.attempt_timeout:.3f}s ({leg} to/from {agent_id})",
                    kind="delay",
                )
            return blob
        if kind is FaultKind.DUPLICATE:
            # The synchronous wire deduplicates; the cost is bandwidth.
            self._record(kind, agent_id, leg, now, f"{len(blob)} bytes re-sent")
            obs.get().registry.counter(
                "transport_duplicate_bytes_total",
                "Bytes wasted on duplicate wire deliveries",
            ).inc(len(blob))
            return blob
        if kind is FaultKind.REPLAY:
            if previous is None or previous == blob:
                return None  # nothing stale to replay yet
            self._record(kind, agent_id, leg, now, "previous round re-delivered")
            return previous
        if kind is FaultKind.CORRUPT:
            corrupted, detail = self._corrupt(blob, leg, rng)
            if corrupted is None:
                return None
            self._record(kind, agent_id, leg, now, detail)
            return corrupted
        raise ValueError(f"unknown fault kind {kind!r}")

    def _corrupt(
        self, blob: str, leg: str, rng: SeededRng
    ) -> tuple[str | None, str]:
        """Flip one byte of a security-relevant field.

        Targets are chosen from the decoded payload so the flip always
        lands somewhere verification checks (see module docstring); if
        the payload does not parse (already corrupted upstream) a raw
        character is flipped instead.
        """
        try:
            payload = json.loads(blob)
        except ValueError:
            index = rng.randint(0, max(0, len(blob) - 1))
            return _flip_char(blob, index), f"raw byte {index}"
        if leg == "request":
            field_name = rng.choice(_CORRUPT_REQUEST_FIELDS)
            value = payload.get(field_name)
            if not isinstance(value, str) or not value:
                return None, ""
            index = rng.randint(0, len(value) - 1)
            payload[field_name] = _flip_char(value, index)
            detail = f"challenge {field_name}[{index}]"
        else:
            field_name = rng.choice(_CORRUPT_RESPONSE_FIELDS)
            if field_name == "ima_log":
                lines = payload.get("ima_log")
                if not isinstance(lines, list) or not lines:
                    return None, ""
                line_index = rng.randint(0, len(lines) - 1)
                line = lines[line_index]
                if not isinstance(line, str) or not line:
                    return None, ""
                index = rng.randint(0, len(line) - 1)
                lines[line_index] = _flip_char(line, index)
                detail = f"ima_log[{line_index}][{index}]"
            else:
                quote = payload.get("quote")
                if not isinstance(quote, dict):
                    return None, ""
                value = quote.get(field_name)
                if not isinstance(value, str) or not value:
                    return None, ""
                index = rng.randint(0, len(value) - 1)
                quote[field_name] = _flip_char(value, index)
                detail = f"quote.{field_name}[{index}]"
        return json.dumps(payload, sort_keys=True), detail


# -- verifier outages -------------------------------------------------------

@dataclass(frozen=True)
class VerifierOutage:
    """One verifier member's unreachability window.

    The chaos layer's infrastructure-side counterpart to the wire
    faults above: instead of severing an agent's legs, the whole
    verifier process drops off the network over sim-time
    ``[start, end)``.  ``kind="partition"`` models a network split (the
    process survives and may come back empty-handed after the window);
    ``kind="crash"`` models a dead process (it never comes back).  The
    multi-verifier fleet's heartbeat probe consults these windows at
    the top of every tick, so an active outage triggers shard failover
    *before* any round is missed.
    """

    member: str
    start: float = 0.0
    end: float = math.inf
    kind: str = "partition"

    def __post_init__(self) -> None:
        if self.kind not in ("partition", "crash"):
            raise ValueError(f"kind must be partition or crash, got {self.kind!r}")
        if self.end < self.start:
            raise ValueError(
                f"outage ends ({self.end}) before it starts ({self.start})"
            )

    def active(self, now: float) -> bool:
        """Whether the member is unreachable at *now*."""
        if self.kind == "crash":
            return now >= self.start
        return self.start <= now < self.end


def outage_schedule(
    rng: SeededRng,
    members: tuple[str, ...] | list[str],
    n_outages: int,
    horizon: float,
    duration: float,
    kind: str = "partition",
) -> list[VerifierOutage]:
    """A seeded schedule of verifier outages.

    Draws ``n_outages`` (member, start) pairs from a dedicated forked
    stream -- same zero-interference discipline as the wire channels:
    building a schedule never perturbs any other stream, and the same
    seed always yields the same outage windows.
    """
    if not members:
        raise ValueError("outage schedule needs at least one member")
    stream = rng.fork("chaos/verifier-outages")
    outages = []
    for _ in range(n_outages):
        member = stream.choice(tuple(members))
        start = stream.uniform(0.0, max(horizon - duration, 0.0))
        outages.append(
            VerifierOutage(
                member=member, start=start, end=start + duration, kind=kind
            )
        )
    return sorted(outages, key=lambda outage: (outage.start, outage.member))


# -- chaos profiles --------------------------------------------------------

def _profile_specs(
    name: str, nodes: tuple[str, ...] | None, start: float, end: float
) -> list[FaultSpec]:
    window = dict(nodes=nodes, start=start, end=end)
    if name == "clean":
        return []
    if name == "drops":
        return [FaultSpec(FaultKind.DROP, probability=0.15, **window)]
    if name == "flaky":
        return [
            FaultSpec(FaultKind.DROP, probability=0.08, **window),
            FaultSpec(FaultKind.DELAY, probability=0.2,
                      delay_range=(0.25, 6.0), **window),
        ]
    if name == "delay":
        # Every wire leg pays latency, but always under the attempt
        # timeout: nothing is lost or retried, rounds simply cost more
        # of the tick budget -- the saturation-study profile.
        return [FaultSpec(FaultKind.DELAY, probability=1.0,
                          delay_range=(0.6, 1.8), **window)]
    if name == "duplicates":
        return [FaultSpec(FaultKind.DUPLICATE, probability=0.25, **window)]
    if name == "partition":
        return [FaultSpec(FaultKind.PARTITION, probability=1.0, **window)]
    if name == "transient-mixed":
        return [
            FaultSpec(FaultKind.DROP, probability=0.08, **window),
            FaultSpec(FaultKind.DELAY, probability=0.12,
                      delay_range=(0.25, 6.0), **window),
            FaultSpec(FaultKind.DUPLICATE, probability=0.08, **window),
        ]
    if name == "corruption":
        return [FaultSpec(FaultKind.CORRUPT, probability=0.12, **window)]
    if name == "replay":
        return [FaultSpec(FaultKind.REPLAY, probability=0.12, **window)]
    if name == "mixed":
        return [
            FaultSpec(FaultKind.DROP, probability=0.06, **window),
            FaultSpec(FaultKind.DELAY, probability=0.08,
                      delay_range=(0.25, 6.0), **window),
            FaultSpec(FaultKind.DUPLICATE, probability=0.05, **window),
            FaultSpec(FaultKind.CORRUPT, probability=0.04, **window),
            FaultSpec(FaultKind.REPLAY, probability=0.03, **window),
        ]
    raise ValueError(f"unknown chaos profile {name!r}")


#: Profile name -> whether every fault it can inject is transient.
#: The property suite keys its "no false positives from noise"
#: invariant off this: a transient-only profile must never yield a
#: FAILED verdict, no matter the seed.
CHAOS_PROFILES: dict[str, bool] = {
    "clean": True,
    "delay": True,
    "drops": True,
    "flaky": True,
    "duplicates": True,
    "partition": True,
    "transient-mixed": True,
    "corruption": False,
    "replay": False,
    "mixed": False,
}


def chaos_profile(
    name: str,
    rng: SeededRng,
    nodes: tuple[str, ...] | None = None,
    start: float = 0.0,
    end: float = math.inf,
    attempt_timeout: float = DEFAULT_ATTEMPT_TIMEOUT,
) -> FaultPlan:
    """Build the named preset :class:`FaultPlan`.

    *nodes* restricts every rule to the given agent ids; the plan is
    live over sim-time ``[start, end)``.  Profile names (and whether
    they are transient-only) are listed in :data:`CHAOS_PROFILES`.
    """
    if name not in CHAOS_PROFILES:
        raise ValueError(
            f"unknown chaos profile {name!r}; "
            f"choose from {', '.join(sorted(CHAOS_PROFILES))}"
        )
    return FaultPlan(
        rng,
        specs=_profile_specs(name, nodes, start, end),
        attempt_timeout=attempt_timeout,
        name=name,
    )
