"""The Keylime agent: the only component on the untrusted machine.

The agent's job is deliberately small -- and that smallness is the
security story: it gathers a TPM quote (whose integrity the TPM
guarantees) and ships the IMA measurement list (whose integrity the
quote's PCR 10 value anchors).  A compromised agent can lie about the
log, but the lie will not replay to the quoted PCR value.

``attest`` supports the offset-based incremental fetch the real agent
implements: the verifier tells the agent how many entries it has
already verified and receives only the suffix.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.common.errors import StateError
from repro.kernelsim.kernel import Machine
from repro.obs import runtime as obs
from repro.obs.tracing import exemplar_of
from repro.tpm.device import AttestationKey
from repro.tpm.pcr import IMA_PCR_INDEX
from repro.tpm.quote import Quote


@dataclass(frozen=True)
class PushCapabilities:
    """What the agent announces when it opens a push exchange.

    The negotiation step of the push protocol starts with the agent
    describing itself: which hash algorithms its TPM banks support,
    how long its IMA measurement list currently is, and its TPM reset
    (boot) counter.  The verifier uses the log length and boot count to
    choose the delta offset for the submission -- a changed boot count
    means the log restarted and the whole list must be re-shipped.

    The capabilities are *hints*, not security inputs: the quote's own
    reset counter is what actually resets the verifier's replay state,
    so a lying agent gains nothing beyond an extra exchange.
    """

    hash_algorithms: tuple[str, ...]
    log_length: int
    boot_count: int


@dataclass(frozen=True)
class AttestationEvidence:
    """What the agent returns for one challenge.

    Attributes:
        quote: TPM quote over PCR 10 bound to the challenge nonce.
        ima_log_lines: serialised measurement list entries starting at
            ``offset``.
        offset: index of the first shipped entry in the full list.
        total_entries: length of the full list at quote time.
    """

    quote: Quote
    ima_log_lines: tuple[str, ...]
    offset: int
    total_entries: int


class KeylimeAgent:
    """Agent daemon bound to one machine and its TPM."""

    def __init__(self, agent_id: str, machine: Machine) -> None:
        self.agent_id = agent_id
        self.machine = machine
        self._ak: AttestationKey | None = None
        self._last_quote_time: float | None = None

    @property
    def attestation_key(self) -> AttestationKey:
        """The AK created during registration."""
        if self._ak is None:
            raise StateError(f"agent {self.agent_id} is not registered (no AK)")
        return self._ak

    def provision_ak(self) -> AttestationKey:
        """Create the attestation key inside the machine's TPM.

        Called once during registration; subsequent calls return the
        existing key (the real agent persists its AK).
        """
        if self._ak is None:
            self._ak = self.machine.tpm.create_ak()
        return self._ak

    def capabilities(self) -> PushCapabilities:
        """The agent's push-negotiation announcement.

        Read fresh on every negotiation: the log length and boot count
        describe the machine *now*, which is what lets the verifier pick
        the right delta offset before any evidence is produced.
        """
        ima = self.machine.require_booted()
        return PushCapabilities(
            hash_algorithms=tuple(sorted(self.machine.tpm.banks)),
            log_length=len(ima.log_lines()),
            boot_count=self.machine.tpm.reset_count,
        )

    def attest(
        self, nonce: str, offset: int = 0, pcr_selection: list[int] | None = None
    ) -> AttestationEvidence:
        """Answer a challenge: quote the selected PCRs, ship the log suffix.

        The selection defaults to PCR 10 (the IMA aggregate); a verifier
        enforcing measured-boot golden values widens it to the boot
        PCRs.  The quote is taken *after* the log snapshot; taking them
        the other way round would let a measurement land between the two
        and spuriously fail the replay check.  (Entries appended after
        the quote are shipped on the next poll.)
        """
        if self._ak is None:
            raise StateError(f"agent {self.agent_id} cannot attest before registration")
        telemetry = obs.get()
        wall_start = perf_counter()
        with telemetry.tracer.span(
            "agent.attest", agent=self.agent_id, offset=offset
        ) as span:
            ima = self.machine.require_booted()
            lines = ima.log_lines()

            # Advance the TPM's internal clock to the machine's present.
            now = self.machine.clock.now
            if self._last_quote_time is not None and now > self._last_quote_time:
                self.machine.tpm.tick(int((now - self._last_quote_time) * 1000))
            self._last_quote_time = now

            selection = pcr_selection if pcr_selection else [IMA_PCR_INDEX]
            if IMA_PCR_INDEX not in selection:
                selection = sorted(set(selection) | {IMA_PCR_INDEX})
            with telemetry.tracer.span("agent.quote"):
                quote_wall_start = perf_counter()
                quote = self.machine.tpm.quote(
                    self._ak.public.fingerprint(), nonce, selection, algorithm="sha256"
                )
                telemetry.registry.histogram(
                    "tpm_quote_wall_seconds", "Wall-clock time to produce a TPM quote",
                ).observe(perf_counter() - quote_wall_start)
            if offset < 0 or offset > len(lines):
                # A rebooted machine has a shorter log than the verifier's
                # offset; ship everything and let the verifier notice the
                # reset counter change.
                offset = 0
            span.set_attribute("shipped", len(lines) - offset)

        registry = telemetry.registry
        registry.histogram(
            "agent_attest_wall_seconds",
            "Wall-clock time for the agent to answer one challenge",
        ).observe(perf_counter() - wall_start, exemplar=exemplar_of(span))
        registry.counter(
            "agent_attestations_total", "Challenges answered", ("agent",),
        ).labels(agent=self.agent_id).inc()
        registry.counter(
            "agent_log_lines_shipped_total", "IMA log lines shipped to the verifier",
        ).inc(len(lines) - offset)
        return AttestationEvidence(
            quote=quote,
            ima_log_lines=tuple(lines[offset:]),
            offset=offset,
            total_entries=len(lines),
        )
