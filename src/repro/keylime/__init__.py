"""A faithful re-implementation of Keylime's attestation stack.

Four components, mirroring Fig 1 of the paper:

* :mod:`repro.keylime.agent` -- runs on the untrusted prover; collects
  TPM quotes and ships the IMA measurement list.
* :mod:`repro.keylime.registrar` -- validates the TPM's EK certificate
  chain and the EK->AK binding before the verifier trusts any quote.
* :mod:`repro.keylime.verifier` -- the attestation loop: challenge with
  a fresh nonce, verify the quote signature, replay the IMA log against
  the quoted PCR 10, and evaluate every new entry against the runtime
  policy.  By default it **stops polling on the first failure** -- the
  behaviour behind the paper's P2 -- with a ``continue_on_failure``
  switch implementing the proposed M2 fix.
* :mod:`repro.keylime.tenant` -- the management CLI equivalent:
  registers agents, installs policies, restarts failed attestation.

The runtime policy model (:mod:`repro.keylime.policy`) is an allowlist
of path -> accepted digests plus a list of exclude regexes; the
documented Keylime/IBM exclude set (including ``/tmp``) is the source
of P1.
"""

# NOTE: repro.keylime.fleet is intentionally NOT imported here -- it
# composes the dynamic-policy generator (repro.dynpolicy) on top of the
# base stack, and dynpolicy itself depends on repro.keylime.policy;
# import it directly as `from repro.keylime.fleet import Fleet`.
from repro.keylime.agent import AttestationEvidence, KeylimeAgent
from repro.keylime.audit import AuditLog, AuditRecord
from repro.keylime.policytools import (
    PolicyDiff,
    PolicyStatistics,
    diff_policies,
    lint_excludes,
    policy_statistics,
)
from repro.keylime.sharding import (
    ConsistentHashRing,
    Migration,
    MigrationPlan,
    shard_balance,
)
from repro.keylime.statestore import (
    export_agent_state,
    import_agent_state,
    inspect_snapshot,
    read_snapshot,
    restore_from_file,
    restore_verifier,
    snapshot_verifier,
    write_snapshot,
)
from repro.keylime.transport import (
    JsonTransportAgent,
    PushAgentClient,
    PushSession,
    PushSessionState,
    evidence_from_json,
    evidence_to_json,
)
from repro.keylime.measuredboot import (
    BootPcrMismatch,
    MeasuredBootPolicy,
    capture_golden,
)
from repro.keylime.revocation import (
    QuarantineListener,
    RevocationEvent,
    RevocationNotifier,
)
from repro.keylime.pipeline import (
    ChallengeStage,
    LogReplayStage,
    MeasuredBootStage,
    PolicyEvalStage,
    QuoteVerifyStage,
    RoundContext,
    SubmittedEvidenceStage,
    VerificationPipeline,
    push_stages,
)
from repro.keylime.policy import (
    EntryVerdict,
    ExcludeIndex,
    PolicyFailure,
    RuntimePolicy,
    VerdictCache,
    build_policy_from_machine,
)
from repro.keylime.faults import (
    CHAOS_PROFILES,
    FaultKind,
    FaultPlan,
    FaultSpec,
    VerifierOutage,
    chaos_profile,
    outage_schedule,
)
from repro.keylime.registrar import KeylimeRegistrar, RegistrationError
from repro.keylime.retrypolicy import RetryBudgetExceeded, RetryPolicy, classify
from repro.keylime.tenant import KeylimeTenant
from repro.keylime.verifier import AgentState, AttestationResult, KeylimeVerifier

__all__ = [
    "AgentState",
    "CHAOS_PROFILES",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "chaos_profile",
    "classify",
    "AttestationEvidence",
    "AttestationResult",
    "AuditLog",
    "AuditRecord",
    "BootPcrMismatch",
    "ChallengeStage",
    "ConsistentHashRing",
    "EntryVerdict",
    "ExcludeIndex",
    "JsonTransportAgent",
    "KeylimeAgent",
    "KeylimeRegistrar",
    "KeylimeTenant",
    "KeylimeVerifier",
    "LogReplayStage",
    "MeasuredBootPolicy",
    "MeasuredBootStage",
    "Migration",
    "MigrationPlan",
    "PolicyDiff",
    "PolicyEvalStage",
    "PolicyFailure",
    "PolicyStatistics",
    "PushAgentClient",
    "PushSession",
    "PushSessionState",
    "QuarantineListener",
    "QuoteVerifyStage",
    "RegistrationError",
    "RevocationEvent",
    "RevocationNotifier",
    "RoundContext",
    "RuntimePolicy",
    "SubmittedEvidenceStage",
    "VerdictCache",
    "VerificationPipeline",
    "VerifierOutage",
    "build_policy_from_machine",
    "capture_golden",
    "diff_policies",
    "evidence_from_json",
    "evidence_to_json",
    "export_agent_state",
    "import_agent_state",
    "inspect_snapshot",
    "lint_excludes",
    "outage_schedule",
    "policy_statistics",
    "push_stages",
    "read_snapshot",
    "restore_from_file",
    "restore_verifier",
    "shard_balance",
    "snapshot_verifier",
    "write_snapshot",
]
