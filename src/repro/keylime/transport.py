"""Wire formats: serialising evidence between agent and verifier.

In production the agent and verifier are separate processes on separate
machines; evidence crosses an untrusted network as JSON.  The in-process
reproduction normally short-circuits that, but this module provides the
real wire formats plus a :class:`JsonTransportAgent` wrapper that forces
every attestation round through serialisation -- so tests can prove the
security properties hold across (and *because of*) the encoding: a
tampered byte anywhere in the channel surfaces as a verification
failure, never as silently different data.

The challenge (request) side of the wire carries a ``traceparent``
field alongside the nonce, so the spans the *agent* records join the
verifier's ``verifier.poll`` trace even though they are recorded on the
far side of the serialised channel (see
:meth:`repro.obs.tracing.SpanTracer.remote_context`).  The traceparent
is observability metadata, not a security input: tampering with it can
sever the trace linkage (the agent spans show up detached, flagged
``traceparent.resolved=False``) but can neither graft spans onto a
live trace it does not own nor affect verification.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.common.errors import IntegrityError
from repro.keylime.agent import AttestationEvidence, KeylimeAgent
from repro.obs import runtime as obs
from repro.obs.tracing import format_traceparent
from repro.tpm.quote import Quote


#: Everything a hostile or fault-corrupted payload can raise out of the
#: decoding expressions below.  One shared tuple so every wire decoder
#: fails the same way -- :class:`IntegrityError` -- instead of leaking a
#: bare ``KeyError``/``TypeError``/``OverflowError`` for some byte
#: offsets and an ``IntegrityError`` for others.  (``json.JSONDecodeError``
#: and ``UnicodeDecodeError`` are ``ValueError`` subclasses; ``OverflowError``
#: covers ``int(float("Infinity"))`` from a corrupted numeric field.)
_DECODE_ERRORS = (KeyError, ValueError, TypeError, AttributeError, OverflowError)


def _loads(blob: str | bytes | bytearray) -> Any:
    """``json.loads`` for wire payloads; accepts raw bytes off the channel.

    A fault layer (or a real network) hands the receiver *bytes*; a
    corrupted byte sequence may not even be valid UTF-8, which must
    surface as a payload integrity failure, not a ``UnicodeDecodeError``
    from the middle of the decoder.
    """
    return json.loads(blob)


def _checked_count(value: Any, what: str) -> int:
    """Decode a non-negative integer field (offsets, entry counts)."""
    count = int(value)
    if count < 0:
        raise IntegrityError(f"negative {what} in wire payload: {count}")
    return count


def quote_to_dict(quote: Quote) -> dict[str, Any]:
    """JSON-safe encoding of a quote."""
    return {
        "bank": quote.bank_algorithm,
        "selection": list(quote.pcr_selection),
        "pcr_values": {str(index): value for index, value in quote.pcr_values.items()},
        "pcr_digest": quote.pcr_digest,
        "nonce": quote.nonce,
        "clock": quote.clock,
        "reset_count": quote.reset_count,
        "restart_count": quote.restart_count,
        "ak": quote.ak_fingerprint,
        "signature": quote.signature.hex(),
    }


def quote_from_dict(payload: dict[str, Any]) -> Quote:
    """Decode a quote; raises :class:`IntegrityError` on malformed input."""
    try:
        return Quote(
            bank_algorithm=payload["bank"],
            pcr_selection=tuple(int(index) for index in payload["selection"]),
            pcr_values={
                int(index): value for index, value in payload["pcr_values"].items()
            },
            pcr_digest=payload["pcr_digest"],
            nonce=payload["nonce"],
            clock=_checked_count(payload["clock"], "clock"),
            reset_count=_checked_count(payload["reset_count"], "reset_count"),
            restart_count=_checked_count(payload["restart_count"], "restart_count"),
            ak_fingerprint=payload["ak"],
            signature=bytes.fromhex(payload["signature"]),
        )
    except IntegrityError:
        raise
    except _DECODE_ERRORS as exc:
        raise IntegrityError(f"malformed quote payload: {exc}") from exc


@dataclass(frozen=True)
class Challenge:
    """One decoded challenge (the request side of an attestation round)."""

    nonce: str
    offset: int
    pcr_selection: tuple[int, ...] | None
    traceparent: str | None


def challenge_to_json(
    nonce: str,
    offset: int = 0,
    pcr_selection=None,
    traceparent: str | None = None,
) -> str:
    """Serialise one challenge (verifier -> agent)."""
    return json.dumps(
        {
            "nonce": nonce,
            "offset": offset,
            "pcr_selection": (
                list(pcr_selection) if pcr_selection is not None else None
            ),
            "traceparent": traceparent,
        },
        sort_keys=True,
    )


def challenge_from_json(blob: str | bytes) -> Challenge:
    """Deserialise one challenge; :class:`IntegrityError` on malformed input.

    Any truncation or corruption -- invalid JSON, invalid UTF-8 bytes,
    a missing or mistyped field, a numeric field driven to
    ``Infinity``, a negative offset -- raises :class:`IntegrityError`,
    never a bare decoding exception.  A malformed *traceparent* is the
    one exception: the field is observability metadata and its
    validation happens at span-creation time (an invalid value merely
    detaches the agent's trace).
    """
    try:
        payload = _loads(blob)
        selection = payload["pcr_selection"]
        traceparent = payload.get("traceparent")
        return Challenge(
            nonce=str(payload["nonce"]),
            offset=_checked_count(payload["offset"], "challenge offset"),
            pcr_selection=(
                tuple(int(index) for index in selection)
                if selection is not None
                else None
            ),
            traceparent=traceparent if isinstance(traceparent, str) else None,
        )
    except IntegrityError:
        raise
    except _DECODE_ERRORS as exc:
        raise IntegrityError(f"malformed challenge payload: {exc}") from exc


def evidence_to_json(evidence: AttestationEvidence) -> str:
    """Serialise one attestation response."""
    return json.dumps(
        {
            "quote": quote_to_dict(evidence.quote),
            "ima_log": list(evidence.ima_log_lines),
            "offset": evidence.offset,
            "total_entries": evidence.total_entries,
        },
        sort_keys=True,
    )


def evidence_from_json(blob: str | bytes) -> AttestationEvidence:
    """Deserialise one attestation response.

    Same contract as :func:`challenge_from_json`: every way a payload
    can be truncated or corrupted surfaces as :class:`IntegrityError`.
    The log lines are normalised to strings so a corrupted array of
    non-strings cannot smuggle arbitrary objects into the replay stage.
    """
    try:
        payload = _loads(blob)
        lines = payload["ima_log"]
        if not isinstance(lines, list):
            raise IntegrityError("evidence ima_log is not a list")
        return AttestationEvidence(
            quote=quote_from_dict(payload["quote"]),
            ima_log_lines=tuple(str(line) for line in lines),
            offset=_checked_count(payload["offset"], "evidence offset"),
            total_entries=_checked_count(
                payload["total_entries"], "evidence entry count"
            ),
        )
    except IntegrityError:
        raise
    except _DECODE_ERRORS as exc:
        raise IntegrityError(f"malformed evidence payload: {exc}") from exc


class JsonTransportAgent:
    """An agent proxy that routes every round through the wire formats.

    Drop-in for :class:`KeylimeAgent` on the verifier side.  Both
    directions are serialised: the challenge (nonce, offset, PCR
    selection, traceparent) crosses as JSON before the agent sees it,
    and the evidence crosses as JSON on the way back.  The optional
    ``channel`` hook sees (and may tamper with) the raw response JSON,
    ``request_channel`` the raw challenge JSON -- which is how the
    adversarial tests model a man-in-the-middle on either leg.  A
    channel may also *refuse delivery* by raising
    :class:`repro.common.errors.TransientTransportError` (how the fault
    layer in :mod:`repro.keylime.faults` models drops, partitions and
    timed-out delays); that propagates to the caller unchanged so the
    retry layer can classify it.

    ``bytes_transferred`` counts both legs; the active telemetry (if
    any) additionally gets ``transport_bytes_total{direction}`` and
    ``transport_roundtrips_total`` counters.
    """

    def __init__(self, agent: KeylimeAgent, channel=None, request_channel=None) -> None:
        self._agent = agent
        self._channel = channel
        self._request_channel = request_channel
        self.bytes_transferred = 0

    @property
    def agent_id(self) -> str:
        """The wrapped agent's identity."""
        return self._agent.agent_id

    @property
    def machine(self):
        """The wrapped agent's machine (testbed plumbing)."""
        return self._agent.machine

    def provision_ak(self):
        """Delegates key provisioning (registration path)."""
        return self._agent.provision_ak()

    @property
    def attestation_key(self):
        """The wrapped agent's AK."""
        return self._agent.attestation_key

    def attest(self, nonce: str, offset: int = 0, pcr_selection=None) -> AttestationEvidence:
        """One challenge/response round across the serialised channel."""
        telemetry = obs.get()
        tracer = telemetry.tracer
        request = challenge_to_json(
            nonce,
            offset,
            pcr_selection=pcr_selection,
            traceparent=format_traceparent(tracer.current),
        )
        if self._request_channel is not None:
            request = self._request_channel(request)
        challenge = challenge_from_json(request)
        # The agent runs on the far side of the wire: its spans take
        # their parentage from the propagated traceparent alone.
        with tracer.remote_context(challenge.traceparent):
            evidence = self._agent.attest(
                challenge.nonce,
                challenge.offset,
                pcr_selection=challenge.pcr_selection,
            )
        blob = evidence_to_json(evidence)
        if self._channel is not None:
            blob = self._channel(blob)
        self.bytes_transferred += len(request) + len(blob)
        bytes_total = telemetry.registry.counter(
            "transport_bytes_total",
            "Bytes crossing the serialised agent/verifier channel",
            labelnames=("direction",),
        )
        bytes_total.labels(direction="request").inc(len(request))
        bytes_total.labels(direction="response").inc(len(blob))
        telemetry.registry.counter(
            "transport_roundtrips_total",
            "Challenge/response rounds completed across the wire",
        ).inc()
        return evidence_from_json(blob)
