"""Wire formats: serialising evidence between agent and verifier.

In production the agent and verifier are separate processes on separate
machines; evidence crosses an untrusted network as JSON.  The in-process
reproduction normally short-circuits that, but this module provides the
real wire formats plus a :class:`JsonTransportAgent` wrapper that forces
every attestation round through serialisation -- so tests can prove the
security properties hold across (and *because of*) the encoding: a
tampered byte anywhere in the channel surfaces as a verification
failure, never as silently different data.
"""

from __future__ import annotations

import json
from typing import Any

from repro.common.errors import IntegrityError
from repro.keylime.agent import AttestationEvidence, KeylimeAgent
from repro.tpm.quote import Quote


def quote_to_dict(quote: Quote) -> dict[str, Any]:
    """JSON-safe encoding of a quote."""
    return {
        "bank": quote.bank_algorithm,
        "selection": list(quote.pcr_selection),
        "pcr_values": {str(index): value for index, value in quote.pcr_values.items()},
        "pcr_digest": quote.pcr_digest,
        "nonce": quote.nonce,
        "clock": quote.clock,
        "reset_count": quote.reset_count,
        "restart_count": quote.restart_count,
        "ak": quote.ak_fingerprint,
        "signature": quote.signature.hex(),
    }


def quote_from_dict(payload: dict[str, Any]) -> Quote:
    """Decode a quote; raises :class:`IntegrityError` on malformed input."""
    try:
        return Quote(
            bank_algorithm=payload["bank"],
            pcr_selection=tuple(int(index) for index in payload["selection"]),
            pcr_values={
                int(index): value for index, value in payload["pcr_values"].items()
            },
            pcr_digest=payload["pcr_digest"],
            nonce=payload["nonce"],
            clock=int(payload["clock"]),
            reset_count=int(payload["reset_count"]),
            restart_count=int(payload["restart_count"]),
            ak_fingerprint=payload["ak"],
            signature=bytes.fromhex(payload["signature"]),
        )
    except (KeyError, ValueError, TypeError, AttributeError) as exc:
        raise IntegrityError(f"malformed quote payload: {exc}") from exc


def evidence_to_json(evidence: AttestationEvidence) -> str:
    """Serialise one attestation response."""
    return json.dumps(
        {
            "quote": quote_to_dict(evidence.quote),
            "ima_log": list(evidence.ima_log_lines),
            "offset": evidence.offset,
            "total_entries": evidence.total_entries,
        },
        sort_keys=True,
    )


def evidence_from_json(blob: str) -> AttestationEvidence:
    """Deserialise one attestation response."""
    try:
        payload = json.loads(blob)
        return AttestationEvidence(
            quote=quote_from_dict(payload["quote"]),
            ima_log_lines=tuple(payload["ima_log"]),
            offset=int(payload["offset"]),
            total_entries=int(payload["total_entries"]),
        )
    except IntegrityError:
        raise
    except (KeyError, ValueError, TypeError, json.JSONDecodeError) as exc:
        raise IntegrityError(f"malformed evidence payload: {exc}") from exc


class JsonTransportAgent:
    """An agent proxy that routes every response through the wire format.

    Drop-in for :class:`KeylimeAgent` on the verifier side.  The
    optional ``channel`` hook sees (and may tamper with) the raw JSON --
    which is how the adversarial tests model a man-in-the-middle.
    """

    def __init__(self, agent: KeylimeAgent, channel=None) -> None:
        self._agent = agent
        self._channel = channel
        self.bytes_transferred = 0

    @property
    def agent_id(self) -> str:
        """The wrapped agent's identity."""
        return self._agent.agent_id

    @property
    def machine(self):
        """The wrapped agent's machine (testbed plumbing)."""
        return self._agent.machine

    def provision_ak(self):
        """Delegates key provisioning (registration path)."""
        return self._agent.provision_ak()

    @property
    def attestation_key(self):
        """The wrapped agent's AK."""
        return self._agent.attestation_key

    def attest(self, nonce: str, offset: int = 0, pcr_selection=None) -> AttestationEvidence:
        """One challenge/response round across the serialised channel."""
        evidence = self._agent.attest(nonce, offset, pcr_selection=pcr_selection)
        blob = evidence_to_json(evidence)
        if self._channel is not None:
            blob = self._channel(blob)
        self.bytes_transferred += len(blob)
        return evidence_from_json(blob)
