"""Wire formats: serialising evidence between agent and verifier.

In production the agent and verifier are separate processes on separate
machines; evidence crosses an untrusted network as JSON.  The in-process
reproduction normally short-circuits that, but this module provides the
real wire formats plus a :class:`JsonTransportAgent` wrapper that forces
every attestation round through serialisation -- so tests can prove the
security properties hold across (and *because of*) the encoding: a
tampered byte anywhere in the channel surfaces as a verification
failure, never as silently different data.

The challenge (request) side of the wire carries a ``traceparent``
field alongside the nonce, so the spans the *agent* records join the
verifier's ``verifier.poll`` trace even though they are recorded on the
far side of the serialised channel (see
:meth:`repro.obs.tracing.SpanTracer.remote_context`).  The traceparent
is observability metadata, not a security input: tampering with it can
sever the trace linkage (the agent spans show up detached, flagged
``traceparent.resolved=False``) but can neither graft spans onto a
live trace it does not own nor affect verification.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable

from repro.common.errors import IntegrityError, StateError
from repro.keylime.agent import AttestationEvidence, KeylimeAgent, PushCapabilities
from repro.keylime.retrypolicy import RetryBudgetExceeded
from repro.obs import runtime as obs
from repro.obs.tracing import format_traceparent
from repro.tpm.quote import Quote


#: Everything a hostile or fault-corrupted payload can raise out of the
#: decoding expressions below.  One shared tuple so every wire decoder
#: fails the same way -- :class:`IntegrityError` -- instead of leaking a
#: bare ``KeyError``/``TypeError``/``OverflowError`` for some byte
#: offsets and an ``IntegrityError`` for others.  (``json.JSONDecodeError``
#: and ``UnicodeDecodeError`` are ``ValueError`` subclasses; ``OverflowError``
#: covers ``int(float("Infinity"))`` from a corrupted numeric field.)
_DECODE_ERRORS = (KeyError, ValueError, TypeError, AttributeError, OverflowError)


def _loads(blob: str | bytes | bytearray) -> Any:
    """``json.loads`` for wire payloads; accepts raw bytes off the channel.

    A fault layer (or a real network) hands the receiver *bytes*; a
    corrupted byte sequence may not even be valid UTF-8, which must
    surface as a payload integrity failure, not a ``UnicodeDecodeError``
    from the middle of the decoder.
    """
    return json.loads(blob)


#: Upper bound on any wire-carried offset or entry count.  No honest
#: fleet ships a trillion-entry measurement list; a larger value is a
#: corrupted or hostile frame trying to drive the verifier's replay
#: cursor (or a list allocation) out of range.
MAX_WIRE_COUNT = 1 << 40


def _checked_count(value: Any, what: str, limit: int = MAX_WIRE_COUNT) -> int:
    """Decode a bounded non-negative integer field (offsets, counts)."""
    count = int(value)
    if count < 0:
        raise IntegrityError(f"negative {what} in wire payload: {count}")
    if count > limit:
        raise IntegrityError(f"oversized {what} in wire payload: {count} > {limit}")
    return count


def _strict_fields(
    payload: Any,
    what: str,
    required: frozenset[str],
    optional: frozenset[str] = frozenset(),
) -> dict[str, Any]:
    """Reject unknown or missing fields in a push-protocol frame.

    The original pull-mode frames tolerate extra keys (they predate
    this check and the sweep tests pin their behaviour); every *new*
    push frame is strict, so a smuggled field can never ride along
    undetected.
    """
    if not isinstance(payload, dict):
        raise IntegrityError(f"{what} payload is not a JSON object")
    unknown = set(payload) - required - optional
    if unknown:
        raise IntegrityError(f"unknown fields in {what}: {sorted(unknown)}")
    missing = required - set(payload)
    if missing:
        raise IntegrityError(f"missing fields in {what}: {sorted(missing)}")
    return payload


def quote_to_dict(quote: Quote) -> dict[str, Any]:
    """JSON-safe encoding of a quote."""
    return {
        "bank": quote.bank_algorithm,
        "selection": list(quote.pcr_selection),
        "pcr_values": {str(index): value for index, value in quote.pcr_values.items()},
        "pcr_digest": quote.pcr_digest,
        "nonce": quote.nonce,
        "clock": quote.clock,
        "reset_count": quote.reset_count,
        "restart_count": quote.restart_count,
        "ak": quote.ak_fingerprint,
        "signature": quote.signature.hex(),
    }


#: The exact key set of an encoded quote / evidence object; the strict
#: push frames verify against these, the legacy pull frames do not.
_QUOTE_FIELDS = frozenset({
    "bank", "selection", "pcr_values", "pcr_digest", "nonce",
    "clock", "reset_count", "restart_count", "ak", "signature",
})
_EVIDENCE_FIELDS = frozenset({"quote", "ima_log", "offset", "total_entries"})


def quote_from_dict(payload: dict[str, Any], strict: bool = False) -> Quote:
    """Decode a quote; raises :class:`IntegrityError` on malformed input."""
    try:
        if strict:
            _strict_fields(payload, "quote", _QUOTE_FIELDS)
        return Quote(
            bank_algorithm=payload["bank"],
            pcr_selection=tuple(int(index) for index in payload["selection"]),
            pcr_values={
                int(index): value for index, value in payload["pcr_values"].items()
            },
            pcr_digest=payload["pcr_digest"],
            nonce=payload["nonce"],
            clock=_checked_count(payload["clock"], "clock"),
            reset_count=_checked_count(payload["reset_count"], "reset_count"),
            restart_count=_checked_count(payload["restart_count"], "restart_count"),
            ak_fingerprint=payload["ak"],
            signature=bytes.fromhex(payload["signature"]),
        )
    except IntegrityError:
        raise
    except _DECODE_ERRORS as exc:
        raise IntegrityError(f"malformed quote payload: {exc}") from exc


@dataclass(frozen=True)
class Challenge:
    """One decoded challenge (the request side of an attestation round)."""

    nonce: str
    offset: int
    pcr_selection: tuple[int, ...] | None
    traceparent: str | None


def challenge_to_json(
    nonce: str,
    offset: int = 0,
    pcr_selection=None,
    traceparent: str | None = None,
) -> str:
    """Serialise one challenge (verifier -> agent)."""
    return json.dumps(
        {
            "nonce": nonce,
            "offset": offset,
            "pcr_selection": (
                list(pcr_selection) if pcr_selection is not None else None
            ),
            "traceparent": traceparent,
        },
        sort_keys=True,
    )


def challenge_from_json(blob: str | bytes) -> Challenge:
    """Deserialise one challenge; :class:`IntegrityError` on malformed input.

    Any truncation or corruption -- invalid JSON, invalid UTF-8 bytes,
    a missing or mistyped field, a numeric field driven to
    ``Infinity``, a negative offset -- raises :class:`IntegrityError`,
    never a bare decoding exception.  A malformed *traceparent* is the
    one exception: the field is observability metadata and its
    validation happens at span-creation time (an invalid value merely
    detaches the agent's trace).
    """
    try:
        payload = _loads(blob)
        selection = payload["pcr_selection"]
        traceparent = payload.get("traceparent")
        return Challenge(
            nonce=str(payload["nonce"]),
            offset=_checked_count(payload["offset"], "challenge offset"),
            pcr_selection=(
                tuple(int(index) for index in selection)
                if selection is not None
                else None
            ),
            traceparent=traceparent if isinstance(traceparent, str) else None,
        )
    except IntegrityError:
        raise
    except _DECODE_ERRORS as exc:
        raise IntegrityError(f"malformed challenge payload: {exc}") from exc


def evidence_to_json(evidence: AttestationEvidence) -> str:
    """Serialise one attestation response."""
    return json.dumps(
        {
            "quote": quote_to_dict(evidence.quote),
            "ima_log": list(evidence.ima_log_lines),
            "offset": evidence.offset,
            "total_entries": evidence.total_entries,
        },
        sort_keys=True,
    )


def _evidence_from_payload(
    payload: dict[str, Any], strict: bool = False
) -> AttestationEvidence:
    """Decode an evidence object already parsed from JSON."""
    if strict:
        _strict_fields(payload, "evidence", _EVIDENCE_FIELDS)
    lines = payload["ima_log"]
    if not isinstance(lines, list):
        raise IntegrityError("evidence ima_log is not a list")
    return AttestationEvidence(
        quote=quote_from_dict(payload["quote"], strict=strict),
        ima_log_lines=tuple(str(line) for line in lines),
        offset=_checked_count(payload["offset"], "evidence offset"),
        total_entries=_checked_count(
            payload["total_entries"], "evidence entry count"
        ),
    )


def evidence_from_json(blob: str | bytes) -> AttestationEvidence:
    """Deserialise one attestation response.

    Same contract as :func:`challenge_from_json`: every way a payload
    can be truncated or corrupted surfaces as :class:`IntegrityError`.
    The log lines are normalised to strings so a corrupted array of
    non-strings cannot smuggle arbitrary objects into the replay stage.
    """
    try:
        return _evidence_from_payload(_loads(blob))
    except IntegrityError:
        raise
    except _DECODE_ERRORS as exc:
        raise IntegrityError(f"malformed evidence payload: {exc}") from exc


# -- push-mode wire frames --------------------------------------------------
#
# The push exchange inverts the pull protocol: the *agent* initiates a
# three-step negotiate -> submit -> verdict conversation.  Every frame
# below is decoded strictly (unknown fields rejected, counts bounded),
# and every decoding failure is an IntegrityError -- same contract as
# the pull frames, tightened for the new surface.


@dataclass(frozen=True)
class NegotiationRequest:
    """Step 1 (agent -> verifier): capability announcement."""

    agent_id: str
    capabilities: PushCapabilities
    traceparent: str | None = None


_NEGOTIATION_FIELDS = frozenset({
    "agent_id", "hash_algorithms", "log_length", "boot_count",
})


def negotiation_to_json(
    agent_id: str,
    capabilities: PushCapabilities,
    traceparent: str | None = None,
) -> str:
    """Serialise a negotiation request (agent -> verifier)."""
    return json.dumps(
        {
            "agent_id": agent_id,
            "hash_algorithms": list(capabilities.hash_algorithms),
            "log_length": capabilities.log_length,
            "boot_count": capabilities.boot_count,
            "traceparent": traceparent,
        },
        sort_keys=True,
    )


def negotiation_from_json(blob: str | bytes) -> NegotiationRequest:
    """Deserialise a negotiation request; strict, IntegrityError on junk."""
    try:
        payload = _strict_fields(
            _loads(blob), "negotiation",
            _NEGOTIATION_FIELDS, frozenset({"traceparent"}),
        )
        algorithms = payload["hash_algorithms"]
        if not isinstance(algorithms, list) or not algorithms:
            raise IntegrityError("negotiation hash_algorithms is not a non-empty list")
        traceparent = payload.get("traceparent")
        return NegotiationRequest(
            agent_id=str(payload["agent_id"]),
            capabilities=PushCapabilities(
                hash_algorithms=tuple(str(a) for a in algorithms),
                log_length=_checked_count(payload["log_length"], "negotiation log length"),
                boot_count=_checked_count(payload["boot_count"], "negotiation boot count"),
            ),
            traceparent=traceparent if isinstance(traceparent, str) else None,
        )
    except IntegrityError:
        raise
    except _DECODE_ERRORS as exc:
        raise IntegrityError(f"malformed negotiation payload: {exc}") from exc


@dataclass(frozen=True)
class NegotiationReply:
    """Step 1 response (verifier -> agent): the session parameters."""

    session_id: str
    nonce: str
    offset: int
    pcr_selection: tuple[int, ...]
    algorithm: str
    expires_at: float


_NEGOTIATION_REPLY_FIELDS = frozenset({
    "session_id", "nonce", "offset", "pcr_selection", "algorithm", "expires_at",
})


def negotiation_reply_to_json(reply: NegotiationReply) -> str:
    """Serialise a negotiation reply (verifier -> agent)."""
    return json.dumps(
        {
            "session_id": reply.session_id,
            "nonce": reply.nonce,
            "offset": reply.offset,
            "pcr_selection": list(reply.pcr_selection),
            "algorithm": reply.algorithm,
            "expires_at": reply.expires_at,
        },
        sort_keys=True,
    )


def negotiation_reply_from_json(blob: str | bytes) -> NegotiationReply:
    """Deserialise a negotiation reply; strict decode."""
    try:
        payload = _strict_fields(
            _loads(blob), "negotiation reply", _NEGOTIATION_REPLY_FIELDS
        )
        expires_at = float(payload["expires_at"])
        if expires_at != expires_at or expires_at in (float("inf"), float("-inf")):
            raise IntegrityError("negotiation reply expiry is not finite")
        return NegotiationReply(
            session_id=str(payload["session_id"]),
            nonce=str(payload["nonce"]),
            offset=_checked_count(payload["offset"], "negotiated offset"),
            pcr_selection=tuple(int(index) for index in payload["pcr_selection"]),
            algorithm=str(payload["algorithm"]),
            expires_at=expires_at,
        )
    except IntegrityError:
        raise
    except _DECODE_ERRORS as exc:
        raise IntegrityError(f"malformed negotiation reply: {exc}") from exc


@dataclass(frozen=True)
class EvidenceSubmission:
    """Step 2 (agent -> verifier): the nonce-bound evidence bundle."""

    session_id: str
    agent_id: str
    evidence: AttestationEvidence


_SUBMISSION_FIELDS = frozenset({"session_id", "agent_id", "evidence"})


def submission_to_json(
    session_id: str, agent_id: str, evidence: AttestationEvidence
) -> str:
    """Serialise an evidence submission (agent -> verifier)."""
    return json.dumps(
        {
            "session_id": session_id,
            "agent_id": agent_id,
            "evidence": json.loads(evidence_to_json(evidence)),
        },
        sort_keys=True,
    )


def submission_from_json(blob: str | bytes) -> EvidenceSubmission:
    """Deserialise an evidence submission; strict at every level."""
    try:
        payload = _strict_fields(_loads(blob), "submission", _SUBMISSION_FIELDS)
        return EvidenceSubmission(
            session_id=str(payload["session_id"]),
            agent_id=str(payload["agent_id"]),
            evidence=_evidence_from_payload(payload["evidence"], strict=True),
        )
    except IntegrityError:
        raise
    except _DECODE_ERRORS as exc:
        raise IntegrityError(f"malformed submission payload: {exc}") from exc


@dataclass(frozen=True)
class PushVerdict:
    """Step 3 (verifier -> agent): the round's conclusion."""

    session_id: str
    ok: bool
    state: str
    entries_processed: int
    next_offset: int
    failures: tuple[str, ...] = ()


_VERDICT_FIELDS = frozenset({
    "session_id", "ok", "state", "entries_processed", "next_offset", "failures",
})


def verdict_to_json(verdict: PushVerdict) -> str:
    """Serialise a push verdict (verifier -> agent)."""
    return json.dumps(
        {
            "session_id": verdict.session_id,
            "ok": verdict.ok,
            "state": verdict.state,
            "entries_processed": verdict.entries_processed,
            "next_offset": verdict.next_offset,
            "failures": list(verdict.failures),
        },
        sort_keys=True,
    )


def verdict_from_json(blob: str | bytes) -> PushVerdict:
    """Deserialise a push verdict; strict decode."""
    try:
        payload = _strict_fields(_loads(blob), "verdict", _VERDICT_FIELDS)
        if not isinstance(payload["ok"], bool):
            raise IntegrityError("verdict ok flag is not a boolean")
        failures = payload["failures"]
        if not isinstance(failures, list):
            raise IntegrityError("verdict failures is not a list")
        return PushVerdict(
            session_id=str(payload["session_id"]),
            ok=payload["ok"],
            state=str(payload["state"]),
            entries_processed=_checked_count(
                payload["entries_processed"], "verdict entry count"
            ),
            next_offset=_checked_count(payload["next_offset"], "verdict offset"),
            failures=tuple(str(kind) for kind in failures),
        )
    except IntegrityError:
        raise
    except _DECODE_ERRORS as exc:
        raise IntegrityError(f"malformed verdict payload: {exc}") from exc


# -- the push session state machine -----------------------------------------


class PushSessionState(Enum):
    """Lifecycle of one push attestation exchange on the verifier."""

    CREATED = "created"
    NEGOTIATED = "negotiated"
    SUBMITTED = "submitted"
    VERIFIED = "verified"
    FAILED = "failed"


#: States in which a session is still waiting for the agent.
OPEN_PUSH_STATES = frozenset({
    PushSessionState.CREATED, PushSessionState.NEGOTIATED,
})

_PUSH_TRANSITIONS: dict[PushSessionState, frozenset[PushSessionState]] = {
    PushSessionState.CREATED: frozenset({
        PushSessionState.NEGOTIATED, PushSessionState.FAILED,
    }),
    PushSessionState.NEGOTIATED: frozenset({
        PushSessionState.SUBMITTED, PushSessionState.FAILED,
    }),
    PushSessionState.SUBMITTED: frozenset({
        PushSessionState.VERIFIED, PushSessionState.FAILED,
    }),
    PushSessionState.VERIFIED: frozenset(),
    PushSessionState.FAILED: frozenset(),
}


@dataclass
class PushSession:
    """Verifier-side state of one push exchange.

    Owns the three freshness properties of the protocol:

    * **nonce freshness** -- the nonce is minted at negotiation and
      never reused; the submitted quote must bind it;
    * **session expiry** -- a submission after ``expires_at`` is
      rejected (an attacker cannot bank a nonce and answer it later);
    * **replay rejection** -- a session is consumed by its submission;
      submitting against a SUBMITTED/VERIFIED/FAILED session raises
      :class:`IntegrityError`.

    ``outcome`` refines a terminal FAILED state for accounting
    (``failed`` / ``expired`` / ``superseded`` / ``discarded``).
    """

    session_id: str
    agent_id: str
    nonce: str
    offset: int
    pcr_selection: tuple[int, ...]
    algorithm: str
    created_at: float
    expires_at: float
    boot_count: int
    state: PushSessionState = PushSessionState.CREATED
    outcome: str | None = None

    @property
    def is_open(self) -> bool:
        """True while the session still awaits the agent's submission."""
        return self.state in OPEN_PUSH_STATES

    def advance(self, to_state: PushSessionState) -> None:
        """Move along the CREATED -> NEGOTIATED -> SUBMITTED -> terminal path."""
        if to_state not in _PUSH_TRANSITIONS[self.state]:
            raise StateError(
                f"push session {self.session_id}: illegal transition "
                f"{self.state.value} -> {to_state.value}"
            )
        self.state = to_state

    def ensure_submittable(self, now: float) -> None:
        """Gate a submission; raises :class:`IntegrityError` when stale.

        Both violations are integrity failures, not transient ones: a
        replayed session is indistinguishable from an attacker re-using
        captured evidence, and an expired session means the nonce's
        freshness window has closed.
        """
        if self.state is not PushSessionState.NEGOTIATED:
            raise IntegrityError(
                f"push session {self.session_id} replayed: already "
                f"{self.state.value}"
                + (f" ({self.outcome})" if self.outcome else "")
            )
        if now > self.expires_at:
            raise IntegrityError(
                f"push session {self.session_id} expired at "
                f"t={self.expires_at}, submission arrived at t={now}"
            )

    def close(self, outcome: str) -> None:
        """Terminate an open session (expiry, supersession, discard)."""
        if self.state in (PushSessionState.VERIFIED, PushSessionState.FAILED):
            return
        self.state = PushSessionState.FAILED
        self.outcome = outcome

    def reply(self) -> NegotiationReply:
        """The negotiation reply this session was created with."""
        return NegotiationReply(
            session_id=self.session_id,
            nonce=self.nonce,
            offset=self.offset,
            pcr_selection=self.pcr_selection,
            algorithm=self.algorithm,
            expires_at=self.expires_at,
        )

    def to_record(self) -> dict[str, Any]:
        """JSON-safe encoding for the durable state store."""
        return {
            "session_id": self.session_id,
            "agent_id": self.agent_id,
            "nonce": self.nonce,
            "offset": self.offset,
            "pcr_selection": list(self.pcr_selection),
            "algorithm": self.algorithm,
            "created_at": self.created_at,
            "expires_at": self.expires_at,
            "boot_count": self.boot_count,
            "state": self.state.value,
            "outcome": self.outcome,
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "PushSession":
        """Rebuild a session from its snapshot record."""
        try:
            return cls(
                session_id=str(record["session_id"]),
                agent_id=str(record["agent_id"]),
                nonce=str(record["nonce"]),
                offset=_checked_count(record["offset"], "session offset"),
                pcr_selection=tuple(int(i) for i in record["pcr_selection"]),
                algorithm=str(record["algorithm"]),
                created_at=float(record["created_at"]),
                expires_at=float(record["expires_at"]),
                boot_count=_checked_count(record["boot_count"], "session boot count"),
                state=PushSessionState(record["state"]),
                outcome=record.get("outcome"),
            )
        except IntegrityError:
            raise
        except _DECODE_ERRORS as exc:
            raise IntegrityError(f"malformed push session record: {exc}") from exc


class PushAgentClient:
    """Drives the agent's side of the push exchange.

    The client owns the agent's cadence in push mode: each
    :meth:`run_round` performs the full negotiate -> attest -> submit
    conversation against the verifier's two endpoints (passed in as
    callables so the client works across any transport).  The optional
    ``negotiate_channel``/``submit_channel`` hooks see (and may tamper
    with or refuse) the raw request JSON of each leg, mirroring
    :class:`JsonTransportAgent`'s man-in-the-middle model.

    A *retry_policy* retries transiently failed legs with backoff; an
    exhausted budget abandons the round and returns ``None`` -- the
    verifier's session reaper then turns the silence into a *degraded*
    round, so push mode shares the pull path's SUSPECT machinery
    instead of opening a silent coverage gap.
    """

    def __init__(
        self,
        agent,
        negotiate: Callable[[str], str],
        submit: Callable[[str], str],
        retry_policy=None,
        retry_rng=None,
        negotiate_channel: Callable[[str], str] | None = None,
        submit_channel: Callable[[str], str] | None = None,
    ) -> None:
        self._agent = agent
        self._negotiate = negotiate
        self._submit = submit
        self.retry_policy = retry_policy
        self._retry_rng = retry_rng
        self._negotiate_channel = negotiate_channel
        self._submit_channel = submit_channel
        self.bytes_transferred = 0
        self.rounds_completed = 0
        self.rounds_abandoned = 0

    @property
    def agent_id(self) -> str:
        """The driven agent's identity."""
        return self._agent.agent_id

    def _deliver(self, endpoint, blob: str, channel) -> str:
        """One leg across the (possibly hostile, possibly flaky) wire."""
        def attempt() -> str:
            request = channel(blob) if channel is not None else blob
            reply = endpoint(request)
            self.bytes_transferred += len(request) + len(reply)
            return reply

        if self.retry_policy is None:
            return attempt()
        telemetry = obs.get()
        return self.retry_policy.run(
            attempt,
            rng=self._retry_rng,
            tracer=telemetry.tracer,
            registry=telemetry.registry,
        )

    def run_round(self) -> PushVerdict | None:
        """One full push exchange; ``None`` when delivery failed.

        Telemetry: the round runs under an ``agent.push_round`` span
        whose traceparent rides the negotiation frame, so the
        verifier's ingestion spans join the agent-initiated trace --
        the mirror image of pull mode's challenge propagation.
        """
        telemetry = obs.get()
        with telemetry.tracer.span(
            "agent.push_round", agent=self.agent_id
        ) as span:
            request = negotiation_to_json(
                self.agent_id,
                self._agent.capabilities(),
                traceparent=format_traceparent(telemetry.tracer.current),
            )
            try:
                reply = negotiation_reply_from_json(
                    self._deliver(self._negotiate, request, self._negotiate_channel)
                )
                evidence = self._agent.attest(
                    reply.nonce,
                    offset=reply.offset,
                    pcr_selection=list(reply.pcr_selection),
                )
                verdict = verdict_from_json(
                    self._deliver(
                        self._submit,
                        submission_to_json(reply.session_id, self.agent_id, evidence),
                        self._submit_channel,
                    )
                )
            except RetryBudgetExceeded:
                # The wire never delivered: no submission, no verdict.
                # The session is left open for the verifier's reaper.
                self.rounds_abandoned += 1
                span.set_attribute("abandoned", True)
                telemetry.registry.counter(
                    "push_client_rounds_abandoned_total",
                    "Push rounds abandoned after exhausting delivery retries",
                ).inc()
                return None
            except IntegrityError as exc:
                # The verifier rejected the exchange at the protocol
                # layer (corrupt frame, replayed/expired session, ...).
                # The agent cannot conclude anything -- it records the
                # rejection and negotiates fresh next round; any session
                # left open is the reaper's to account for.
                self.rounds_abandoned += 1
                span.set_attribute("rejected", str(exc))
                telemetry.registry.counter(
                    "push_client_rounds_rejected_total",
                    "Push rounds rejected by the verifier's protocol layer",
                ).inc()
                return None
            span.set_attribute("ok", verdict.ok)
            span.set_attribute("entries", verdict.entries_processed)
        self.rounds_completed += 1
        telemetry.registry.counter(
            "push_client_rounds_total", "Push exchanges completed", ("result",),
        ).labels(result="ok" if verdict.ok else "failed").inc()
        bytes_total = telemetry.registry.counter(
            "transport_bytes_total",
            "Bytes crossing the serialised agent/verifier channel",
            labelnames=("direction",),
        )
        bytes_total.labels(direction="push").inc(self.bytes_transferred)
        return verdict


class JsonTransportAgent:
    """An agent proxy that routes every round through the wire formats.

    Drop-in for :class:`KeylimeAgent` on the verifier side.  Both
    directions are serialised: the challenge (nonce, offset, PCR
    selection, traceparent) crosses as JSON before the agent sees it,
    and the evidence crosses as JSON on the way back.  The optional
    ``channel`` hook sees (and may tamper with) the raw response JSON,
    ``request_channel`` the raw challenge JSON -- which is how the
    adversarial tests model a man-in-the-middle on either leg.  A
    channel may also *refuse delivery* by raising
    :class:`repro.common.errors.TransientTransportError` (how the fault
    layer in :mod:`repro.keylime.faults` models drops, partitions and
    timed-out delays); that propagates to the caller unchanged so the
    retry layer can classify it.

    ``bytes_transferred`` counts both legs; the active telemetry (if
    any) additionally gets ``transport_bytes_total{direction}`` and
    ``transport_roundtrips_total`` counters.
    """

    def __init__(self, agent: KeylimeAgent, channel=None, request_channel=None) -> None:
        self._agent = agent
        self._channel = channel
        self._request_channel = request_channel
        self.bytes_transferred = 0

    @property
    def agent_id(self) -> str:
        """The wrapped agent's identity."""
        return self._agent.agent_id

    @property
    def machine(self):
        """The wrapped agent's machine (testbed plumbing)."""
        return self._agent.machine

    def provision_ak(self):
        """Delegates key provisioning (registration path)."""
        return self._agent.provision_ak()

    @property
    def attestation_key(self):
        """The wrapped agent's AK."""
        return self._agent.attestation_key

    def capabilities(self) -> PushCapabilities:
        """Delegates the push-negotiation announcement (push mode)."""
        return self._agent.capabilities()

    def attest(self, nonce: str, offset: int = 0, pcr_selection=None) -> AttestationEvidence:
        """One challenge/response round across the serialised channel."""
        telemetry = obs.get()
        tracer = telemetry.tracer
        request = challenge_to_json(
            nonce,
            offset,
            pcr_selection=pcr_selection,
            traceparent=format_traceparent(tracer.current),
        )
        if self._request_channel is not None:
            request = self._request_channel(request)
        challenge = challenge_from_json(request)
        # The agent runs on the far side of the wire: its spans take
        # their parentage from the propagated traceparent alone.
        with tracer.remote_context(challenge.traceparent):
            evidence = self._agent.attest(
                challenge.nonce,
                challenge.offset,
                pcr_selection=challenge.pcr_selection,
            )
        blob = evidence_to_json(evidence)
        if self._channel is not None:
            blob = self._channel(blob)
        self.bytes_transferred += len(request) + len(blob)
        bytes_total = telemetry.registry.counter(
            "transport_bytes_total",
            "Bytes crossing the serialised agent/verifier channel",
            labelnames=("direction",),
        )
        bytes_total.labels(direction="request").inc(len(request))
        bytes_total.labels(direction="response").inc(len(blob))
        telemetry.registry.counter(
            "transport_roundtrips_total",
            "Challenge/response rounds completed across the wire",
        ).inc()
        return evidence_from_json(blob)
