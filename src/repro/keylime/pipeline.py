"""The staged verification pipeline: Fig 1 as composable stage objects.

One attestation round is the paper's four protocol phases -- challenge,
quote validation, log replay, policy evaluation -- plus the optional
measured-boot check.  Historically they lived inline in one 200-line
``KeylimeVerifier._poll_once``; here each phase is a :class:`Stage`
object that reads and advances a shared :class:`RoundContext`, and
:class:`VerificationPipeline` sequences them.  The split buys three
things:

* **Configuration instead of branches.**  Stock stop-on-first-failure
  (the paper's **P2**) versus the M2 continue-on-failure fix is a
  pipeline setting consumed by :class:`PolicyEvalStage`, not a flag
  threaded through scattered ``if``\\ s.
* **Shared, cacheable evaluation.**  :class:`PolicyEvalStage` routes
  entries through a :class:`repro.keylime.policy.VerdictCache` when one
  is installed; a fleet of same-distro nodes then pays policy-evaluation
  cost per *unique digest*, not per (agent x entry).
* **Stage-level observability.**  The pipeline times every stage into
  the ``verifier_stage_wall_seconds{stage}`` histogram and counts cache
  outcomes into ``verifier_verdict_cache_total{result}``, alongside the
  per-phase spans (``verifier.challenge``, ``verifier.quote_verify``,
  ``verifier.measured_boot``, ``verifier.log_replay``,
  ``verifier.policy_eval``) that ``obs watch`` and the incident
  correlator consume.

The pipeline changes *how* rounds execute, never *what* they conclude:
stage ordering, failure kinds, entry accounting and the RNG draw
sequence are bit-for-bit the monolith's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from time import perf_counter
from typing import Callable

from repro.common.errors import IntegrityError, StateError, TransientTransportError
from repro.common.hexutil import extend_digest, zero_digest
from repro.kernelsim.ima import (
    ImaLogEntry,
    VIOLATION_EXTEND_VALUE,
    VIOLATION_FILEDATA_HASH,
    VIOLATION_TEMPLATE_HASH,
    template_hash,
)
from repro.keylime.agent import KeylimeAgent
from repro.keylime.measuredboot import MeasuredBootPolicy
from repro.keylime.policy import PolicyFailure, RuntimePolicy, VerdictCache
from repro.obs.tracing import exemplar_of
from repro.tpm.pcr import IMA_PCR_INDEX
from repro.tpm.quote import QuoteVerificationError, verify_quote


def is_violation_entry(entry: ImaLogEntry) -> bool:
    """True for IMA violation entries (zero template + zero filedata)."""
    return (
        entry.template_hash == VIOLATION_TEMPLATE_HASH
        and entry.filedata_hash == VIOLATION_FILEDATA_HASH
    )


class AgentState(Enum):
    """Verifier-side lifecycle of an attested agent.

    ``SUSPECT`` and ``QUARANTINED`` are the degraded-mode states: a
    node whose wire keeps failing *transiently* (retry budget
    exhausted) is SUSPECT -- still polled every tick, which is the
    anti-P2 invariant: the attestation history must never go silently
    dark over operational noise.  Repeated suspect windows escalate to
    QUARANTINED, an operator-attention state that does stop polling
    (and is announced, so the gap it opens is explained).  FAILED
    remains reserved for integrity verdicts.
    """

    ATTESTING = "attesting"
    FAILED = "failed"
    STOPPED = "stopped"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"


#: States the poll schedulers keep ticking: a SUSPECT node is polled
#: exactly like a healthy one (recovery is detected by polling, and the
#: log gap P2 warns about never opens silently).
POLLABLE_STATES = frozenset({AgentState.ATTESTING, AgentState.SUSPECT})


class FailureKind(Enum):
    """Why an attestation round failed."""

    INVALID_QUOTE = "invalid_quote"
    LOG_TAMPERED = "log_tampered"
    PCR_MISMATCH = "pcr_mismatch"
    MEASURED_BOOT = "measured_boot"
    POLICY = "policy"
    #: The wire payload itself failed to decode (corrupt challenge or
    #: evidence).  An integrity failure -- never retried -- because a
    #: network that "merely" flips bytes is indistinguishable from an
    #: attacker who does.
    TRANSPORT_CORRUPT = "transport_corrupt"


@dataclass(frozen=True)
class AttestationFailure:
    """One recorded failure, with enough detail for the experiments."""

    time: float
    kind: FailureKind
    detail: str
    policy_failure: PolicyFailure | None = None


@dataclass(frozen=True)
class AttestationResult:
    """Outcome of one poll.

    ``transient`` marks a *degraded* round: the wire failed every retry
    attempt, so no evidence was verified -- but nothing about the
    prover's integrity was concluded either.  A transient result is
    never a verdict: ``ok`` is False yet ``failures`` is empty, and the
    verifier routes it to the SUSPECT state machine instead of the
    failure path (no revocation, no FAILED, no halted polling).
    """

    time: float
    ok: bool
    entries_processed: int
    entries_skipped: int  # entries after a halt (never policy-checked)
    failures: tuple[AttestationFailure, ...] = ()
    transient: bool = False
    retry_attempts: int = 0  # wire attempts beyond the first, this round
    transport_error: str | None = None


@dataclass
class AgentSlot:
    """Per-agent verifier state: policy, replay position, history."""

    agent: KeylimeAgent
    policy: RuntimePolicy
    measured_boot: MeasuredBootPolicy | None = None
    state: AgentState = AgentState.ATTESTING
    verified_entries: int = 0
    replay_aggregate: str = field(default_factory=lambda: zero_digest("sha256"))
    last_reset_count: int | None = None
    failures: list[AttestationFailure] = field(default_factory=list)
    results: list[AttestationResult] = field(default_factory=list)
    stop_polling: Callable[[], None] | None = None  # Scheduler.every cancel handle
    # Degraded-mode bookkeeping: when the current suspect window opened
    # (None while healthy) and how many windows the node has entered.
    suspect_since: float | None = None
    suspect_windows: int = 0


class RoundAborted(Exception):
    """Internal control flow: a stage terminated the round with failures."""


@dataclass
class RoundContext:
    """Everything one attestation round reads and produces.

    A fresh context is built per round by the verifier and flows through
    every stage; stages communicate exclusively through it.
    """

    agent_id: str
    slot: AgentSlot
    record: object  # registrar record carrying .ak_public
    now: float
    rng: object  # SeededRng; stages draw nonces from it
    tracer: object  # active span tracer (or the null tracer)
    continue_on_failure: bool = False
    cache: VerdictCache | None = None
    retry_policy: object | None = None  # RetryPolicy; None = single attempt
    retry_rng: object | None = None  # SeededRng stream for backoff jitter
    registry: object | None = None  # metrics registry (set by the pipeline)
    nonce: str | None = None
    selection: list[int] = field(default_factory=lambda: [IMA_PCR_INDEX])
    evidence: object | None = None  # AttestationEvidence once challenged
    entries: list[ImaLogEntry] = field(default_factory=list)
    failures: list[AttestationFailure] = field(default_factory=list)
    entries_processed: int = 0
    entries_skipped: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retry_attempts: int = 0  # wire re-attempts consumed this round
    transport_error: str | None = None  # set when the round degrades

    def abort(
        self,
        kind: FailureKind,
        detail: str,
        *,
        processed: int = 0,
        skipped: int = 0,
    ) -> None:
        """Record one terminal failure and abort the round."""
        self.abort_with(
            [AttestationFailure(self.now, kind, detail)],
            processed=processed,
            skipped=skipped,
        )

    def abort_with(
        self,
        failures: list[AttestationFailure],
        *,
        processed: int = 0,
        skipped: int = 0,
    ) -> None:
        """Record *failures* and abort the round."""
        self.failures.extend(failures)
        self.entries_processed = processed
        self.entries_skipped = skipped
        raise RoundAborted()


def wire_attest(ctx: RoundContext, offset: int, pcr_selection) -> object:
    """One challenge/response across the (possibly faulty) wire.

    Runs the agent round under the context's retry policy: transient
    transport errors are retried with backoff (jitter drawn from the
    context's dedicated stream -- no draws unless a retry actually
    happens), integrity errors abort the round as a
    ``TRANSPORT_CORRUPT`` failure, and an exhausted retry budget
    propagates :class:`~repro.keylime.retrypolicy.RetryBudgetExceeded`
    for the pipeline to turn into a degraded (transient) result.  The
    nonce is the caller's and is reused across attempts: a retry
    re-asks the *same* question, it never relaxes freshness.
    """
    def attempt():
        return ctx.slot.agent.attest(
            ctx.nonce, offset=offset, pcr_selection=pcr_selection
        )

    try:
        if ctx.retry_policy is None:
            return attempt()
        attempted = [0]

        def counted_attempt():
            attempted[0] += 1
            return attempt()

        try:
            return ctx.retry_policy.run(
                counted_attempt,
                rng=ctx.retry_rng,
                tracer=ctx.tracer,
                registry=ctx.registry,
            )
        finally:
            ctx.retry_attempts += max(0, attempted[0] - 1)
    except IntegrityError as exc:
        ctx.abort(
            FailureKind.TRANSPORT_CORRUPT,
            f"wire payload failed verification-grade decoding: {exc}",
        )


class Stage:
    """One protocol phase; subclasses advance the :class:`RoundContext`."""

    #: Label used in the ``verifier_stage_wall_seconds{stage}`` histogram.
    name = "stage"

    def run(self, ctx: RoundContext) -> None:
        """Execute the phase; abort via ``ctx.abort*`` on terminal failure."""
        raise NotImplementedError


class ChallengeStage(Stage):
    """Step 1: fresh nonce, PCR selection, incremental evidence fetch."""

    name = "challenge"

    def run(self, ctx: RoundContext) -> None:
        with ctx.tracer.span("verifier.challenge"):
            ctx.nonce = ctx.rng.hexid(20)
            selection = [IMA_PCR_INDEX]
            if ctx.slot.measured_boot is not None:
                selection = sorted(
                    set(selection) | set(ctx.slot.measured_boot.pcr_selection)
                )
            ctx.selection = selection
            ctx.evidence = wire_attest(
                ctx, offset=ctx.slot.verified_entries, pcr_selection=selection
            )


class SubmittedEvidenceStage(Stage):
    """Push-mode step 1: adopt the evidence the agent already submitted.

    The push exchange inverts the challenge: by the time the pipeline
    runs, the verifier has minted the nonce (at negotiation) and the
    agent has pushed the evidence bundle, both already sitting on the
    context.  This stage only asserts that shape -- every later stage
    (quote verification, reboot handling, replay, policy) is the exact
    object the pull pipeline runs, which is what makes the two modes
    verdict-equivalent by construction.
    """

    name = "submit"

    def run(self, ctx: RoundContext) -> None:
        with ctx.tracer.span(
            "verifier.submitted_evidence", agent=ctx.agent_id
        ) as span:
            if ctx.nonce is None or ctx.evidence is None:
                raise StateError(
                    f"push round for {ctx.agent_id} reached the pipeline "
                    "without a negotiated nonce and submitted evidence"
                )
            span.set_attribute("offset", ctx.evidence.offset)
            span.set_attribute("lines", len(ctx.evidence.ima_log_lines))


class QuoteVerifyStage(Stage):
    """Step 2: quote validation, plus reboot detection and re-challenge."""

    name = "quote_verify"

    def run(self, ctx: RoundContext) -> None:
        slot = ctx.slot
        with ctx.tracer.span("verifier.quote_verify"):
            try:
                verify_quote(ctx.evidence.quote, ctx.record.ak_public, ctx.nonce)
            except QuoteVerificationError as exc:
                ctx.abort(
                    FailureKind.INVALID_QUOTE, str(exc),
                    skipped=len(ctx.evidence.ima_log_lines),
                )

        # Reboot detection: PCRs and the log restarted from zero.
        if slot.last_reset_count != ctx.evidence.quote.reset_count:
            slot.replay_aggregate = zero_digest("sha256")
            slot.verified_entries = 0
            slot.last_reset_count = ctx.evidence.quote.reset_count
            if ctx.evidence.offset != 0:
                with ctx.tracer.span("verifier.challenge", reattest=True):
                    ctx.nonce = ctx.rng.hexid(20)
                    ctx.evidence = wire_attest(
                        ctx, offset=0, pcr_selection=ctx.selection
                    )
                with ctx.tracer.span("verifier.quote_verify", reattest=True):
                    try:
                        verify_quote(
                            ctx.evidence.quote, ctx.record.ak_public, ctx.nonce
                        )
                    except QuoteVerificationError as exc:
                        ctx.abort(
                            FailureKind.INVALID_QUOTE, str(exc),
                            skipped=len(ctx.evidence.ima_log_lines),
                        )


class MeasuredBootStage(Stage):
    """Optional step: quoted boot PCRs must match the golden set."""

    name = "measured_boot"

    def run(self, ctx: RoundContext) -> None:
        if ctx.slot.measured_boot is None:
            return
        with ctx.tracer.span("verifier.measured_boot"):
            mismatches = ctx.slot.measured_boot.verify(ctx.evidence.quote.pcr_values)
        if mismatches:
            ctx.abort_with(
                [
                    AttestationFailure(
                        ctx.now, FailureKind.MEASURED_BOOT,
                        f"boot PCR {mismatch.index} diverges from golden "
                        f"value ({mismatch.actual[:16]}... != "
                        f"{mismatch.expected[:16]}...)",
                    )
                    for mismatch in mismatches
                ],
                skipped=len(ctx.evidence.ima_log_lines),
            )


class LogReplayStage(Stage):
    """Step 3: parse the new entries and replay them against PCR 10."""

    name = "log_replay"

    def run(self, ctx: RoundContext) -> None:
        slot = ctx.slot
        with ctx.tracer.span(
            "verifier.log_replay", lines=len(ctx.evidence.ima_log_lines)
        ):
            entries: list[ImaLogEntry] = []
            for line in ctx.evidence.ima_log_lines:
                try:
                    entry = ImaLogEntry.from_line(line)
                except ValueError as exc:
                    ctx.abort(
                        FailureKind.LOG_TAMPERED, str(exc),
                        processed=len(entries),
                        skipped=len(ctx.evidence.ima_log_lines) - len(entries),
                    )
                if not is_violation_entry(entry):
                    expected = template_hash(entry.filedata_hash, entry.path)
                    if entry.template_hash != expected:
                        ctx.abort(
                            FailureKind.LOG_TAMPERED,
                            f"template hash mismatch at {entry.path}",
                            processed=len(entries),
                            skipped=len(ctx.evidence.ima_log_lines) - len(entries),
                        )
                entries.append(entry)

            aggregate = slot.replay_aggregate
            for entry in entries:
                if is_violation_entry(entry):
                    # Violations log zeros but extend 0xFF (kernel rule).
                    aggregate = extend_digest(
                        "sha256", aggregate, VIOLATION_EXTEND_VALUE
                    )
                else:
                    aggregate = extend_digest("sha256", aggregate, entry.template_hash)
            quoted = ctx.evidence.quote.pcr_values[IMA_PCR_INDEX]
            if aggregate != quoted:
                ctx.abort(
                    FailureKind.PCR_MISMATCH,
                    f"IMA log replay {aggregate[:16]}... does not match quoted "
                    f"PCR10 {quoted[:16]}...",
                    skipped=len(entries),
                )
            slot.replay_aggregate = aggregate
            slot.verified_entries = ctx.evidence.offset + len(entries)
            ctx.entries = entries


class PolicyEvalStage(Stage):
    """Step 4: per-entry verdicts; halts at the first failure unless M2."""

    name = "policy_eval"

    def run(self, ctx: RoundContext) -> None:
        with ctx.tracer.span("verifier.policy_eval") as policy_span:
            failures: list[AttestationFailure] = []
            processed = 0
            skipped = 0
            policy = ctx.slot.policy
            cache = ctx.cache
            entries = ctx.entries
            evaluate = policy.evaluate_entry
            # The hot loop probes the cache's generation bucket
            # directly: one string-keyed dict.get per entry (the
            # replay-verified template hash), hit count batched.  A
            # stored outcome is never None, so ``None`` means miss.
            bucket = cache.view(policy) if cache is not None else None
            misses_before = cache.misses if cache is not None else 0
            hits = 0
            for entry in entries:
                if bucket is not None:
                    key = entry.template_hash
                    if key == VIOLATION_TEMPLATE_HASH:
                        key += entry.path
                    outcome = bucket.get(key)
                    if outcome is None:
                        outcome = cache.insert(policy, entry)
                    else:
                        hits += 1
                    policy_failure = outcome[1]
                else:
                    _, policy_failure = evaluate(entry)
                processed += 1
                # evaluate_entry returns a PolicyFailure iff the verdict
                # is a failing one, so this test carries the verdict.
                if policy_failure is not None:
                    failures.append(
                        AttestationFailure(
                            ctx.now, FailureKind.POLICY,
                            policy_failure.describe(), policy_failure=policy_failure,
                        )
                    )
                    if not ctx.continue_on_failure:
                        skipped = len(entries) - processed
                        break
            policy_span.set_attribute("entries", processed)
            policy_span.set_attribute("failures", len(failures))
            if cache is not None:
                cache.hits += hits
                ctx.cache_hits = hits
                ctx.cache_misses = cache.misses - misses_before
                policy_span.set_attribute("cache_hits", ctx.cache_hits)
                policy_span.set_attribute("cache_misses", ctx.cache_misses)
        ctx.entries_processed = processed
        ctx.entries_skipped = skipped
        ctx.failures.extend(failures)


def default_stages() -> list[Stage]:
    """The stock Fig 1 stage sequence."""
    return [
        ChallengeStage(),
        QuoteVerifyStage(),
        MeasuredBootStage(),
        LogReplayStage(),
        PolicyEvalStage(),
    ]


def push_stages() -> list[Stage]:
    """The push-mode stage sequence.

    Identical to :func:`default_stages` except the outbound challenge is
    replaced by :class:`SubmittedEvidenceStage`: the nonce and evidence
    arrive via the negotiate/submit exchange instead of an outbound
    poll.  The verification stages themselves are shared instances of
    the same classes -- push mode changes evidence *delivery*, never
    evidence *judgement*.
    """
    return [
        SubmittedEvidenceStage(),
        QuoteVerifyStage(),
        MeasuredBootStage(),
        LogReplayStage(),
        PolicyEvalStage(),
    ]


class VerificationPipeline:
    """Sequences the verification stages for one attestation round.

    ``continue_on_failure`` is the P2-vs-M2 switch: it only affects
    :class:`PolicyEvalStage` (whether evaluation halts at the first
    failing entry) and, at the verifier layer, whether the agent is
    marked FAILED and its polling halted.  Protocol-level failures
    (invalid quote, tampered log, PCR mismatch, boot PCR divergence)
    always terminate the round, under either configuration.
    """

    def __init__(
        self,
        stages: list[Stage] | None = None,
        continue_on_failure: bool = False,
    ) -> None:
        self.stages = list(stages) if stages is not None else default_stages()
        self.continue_on_failure = continue_on_failure

    def stage_names(self) -> list[str]:
        """The configured stage labels, in execution order."""
        return [stage.name for stage in self.stages]

    def run(self, ctx: RoundContext, registry) -> AttestationResult:
        """Execute every stage against *ctx*; returns the round's result.

        Each stage's wall time lands in
        ``verifier_stage_wall_seconds{stage}``; verdict-cache outcomes
        are batched into ``verifier_verdict_cache_total{result}`` once
        per round (not per entry) to keep the hot loop lean.
        """
        ctx.continue_on_failure = self.continue_on_failure
        ctx.registry = registry
        stage_histogram = registry.histogram(
            "verifier_stage_wall_seconds",
            "Wall-clock latency of one verification pipeline stage",
            ("stage",),
        )
        for stage in self.stages:
            wall_start = perf_counter()
            try:
                stage.run(ctx)
            except RoundAborted:
                break
            except TransientTransportError as exc:
                # Degraded round: the wire never delivered, no verdict
                # was (or could be) reached.  Not a failure result --
                # the verifier routes it to the SUSPECT machine.
                ctx.transport_error = str(exc)
                return AttestationResult(
                    time=ctx.now,
                    ok=False,
                    entries_processed=0,
                    entries_skipped=0,
                    failures=(),
                    transient=True,
                    retry_attempts=ctx.retry_attempts,
                    transport_error=ctx.transport_error,
                )
            finally:
                # Exemplar: the enclosing poll span, so a slow bucket in
                # the histogram resolves to the trace that produced it.
                stage_histogram.labels(stage=stage.name).observe(
                    perf_counter() - wall_start,
                    exemplar=exemplar_of(ctx.tracer.current),
                )
        if ctx.cache_hits or ctx.cache_misses:
            cache_counter = registry.counter(
                "verifier_verdict_cache_total",
                "Policy verdict cache lookups by outcome", ("result",),
            )
            if ctx.cache_hits:
                cache_counter.labels(result="hit").inc(ctx.cache_hits)
            if ctx.cache_misses:
                cache_counter.labels(result="miss").inc(ctx.cache_misses)
        return AttestationResult(
            time=ctx.now,
            ok=not ctx.failures,
            entries_processed=ctx.entries_processed,
            entries_skipped=ctx.entries_skipped,
            failures=tuple(ctx.failures),
            retry_attempts=ctx.retry_attempts,
        )
