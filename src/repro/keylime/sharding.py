"""Consistent-hash shard assignment for a multi-verifier fleet.

The single-verifier ceiling is the last scalability wall in the
reproduction (ROADMAP item 2): one :class:`~repro.keylime.verifier
.KeylimeVerifier` owns every agent, so attestation cost grows linearly
in fleet size with nothing to spread it over.  This module provides the
assignment layer that splits a fleet across N verifiers:

* :class:`ConsistentHashRing` -- a seeded hash ring with virtual nodes.
  Every member contributes ``vnodes`` points derived by SHA-256 from
  ``(seed, member, replica)``; an agent id hashes to a point and is
  owned by the next member point clockwise.  The construction draws
  **nothing** from any RNG stream -- assignment is a pure function of
  ``(seed, members, key)`` -- so two rigs built from the same seed agree
  on every placement without exchanging a byte, and adding a draw
  anywhere else in the simulation cannot perturb shard layout.
* :class:`MigrationPlan` -- the exact key movement a membership change
  causes.  Consistent hashing's contract is *minimal movement*: a join
  moves only the keys that land on the joining member, a leave moves
  only the departed member's keys, and every other assignment is
  untouched.  :meth:`ConsistentHashRing.plan_join` /
  :meth:`~ConsistentHashRing.plan_leave` compute the before/after
  assignments in one step so callers can apply the moves atomically --
  no agent is ever unassigned, even transiently.

The ring assigns agents to **shards** (stable logical verifiers).  Who
*hosts* a shard is a separate, failure-driven concern: on a verifier
outage the whole shard moves to an adopter via a statestore snapshot
(see :class:`repro.keylime.fleet.VerifierFleet`), which keeps the
shard's RNG streams, verdict history and audit chain intact -- the ring
itself never changes on failure, only on explicit join/leave.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.common.errors import ConfigurationError, StateError

#: Default virtual nodes per ring member.  64 points per member keeps
#: the max/mean shard-size ratio tight enough that the sharded
#: throughput bench meets its near-linear scaling floor.
DEFAULT_VNODES = 64


def _hash64(material: str) -> int:
    """The ring position of *material*: the top 64 bits of its SHA-256."""
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class Migration:
    """One agent's move between shards in a rebalance."""

    key: str
    source: str
    target: str


@dataclass(frozen=True)
class MigrationPlan:
    """The complete, minimal key movement of one membership change.

    ``kind`` is ``"join"`` or ``"leave"``; ``member`` the shard joining
    or departing; ``assignment`` the *post-change* total assignment.
    The minimal-movement contract is structural: every move of a join
    targets the joining member, every move of a leave sources the
    departing member, and ``assignment`` covers exactly the planned
    keys -- nothing is ever left unassigned.
    """

    kind: str
    member: str
    moves: tuple[Migration, ...]
    assignment: dict[str, str]

    @property
    def moved_keys(self) -> tuple[str, ...]:
        return tuple(move.key for move in self.moves)


class ConsistentHashRing:
    """A seeded consistent-hash ring with virtual nodes.

    Members are stable shard identifiers (strings); keys are agent ids.
    All placement is derived from SHA-256 over ``(seed, ...)`` material,
    so the ring is deterministic per seed and makes zero RNG draws --
    the same discipline :mod:`repro.keylime.faults` uses for zero-draw
    no-op plans.
    """

    def __init__(self, seed: str, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self.seed = str(seed)
        self.vnodes = vnodes
        self._members: set[str] = set()
        # Sorted (point, member) pairs; ties (cosmically unlikely with
        # 64-bit points) break on the member name so iteration order is
        # still total.
        self._points: list[tuple[int, str]] = []

    # -- membership --------------------------------------------------------

    @property
    def members(self) -> tuple[str, ...]:
        """Current ring members, sorted."""
        return tuple(sorted(self._members))

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def __len__(self) -> int:
        return len(self._members)

    def add(self, member: str) -> None:
        """Add *member* (``vnodes`` points) to the ring."""
        if member in self._members:
            raise StateError(f"ring already contains member {member!r}")
        self._members.add(member)
        for replica in range(self.vnodes):
            point = _hash64(f"{self.seed}|vnode|{member}|{replica}")
            self._points.append((point, member))
        self._points.sort()

    def remove(self, member: str) -> None:
        """Remove *member* and all its points from the ring."""
        if member not in self._members:
            raise StateError(f"ring has no member {member!r}")
        self._members.discard(member)
        self._points = [
            pair for pair in self._points if pair[1] != member
        ]

    # -- assignment --------------------------------------------------------

    def _key_point(self, key: str) -> int:
        return _hash64(f"{self.seed}|key|{key}")

    def owner(self, key: str, among: Iterable[str] | None = None) -> str:
        """The member owning *key*: the next member point clockwise.

        *among* restricts the walk to a member subset (the failover
        adopter choice walks the same ring with the failed host
        excluded, so adoption is as deterministic as assignment).
        """
        live = self._members if among is None else (set(among) & self._members)
        if not live:
            raise StateError("ring has no eligible members to own the key")
        point = self._key_point(key)
        index = bisect_right(self._points, (point, "￿"))
        for step in range(len(self._points)):
            _, member = self._points[(index + step) % len(self._points)]
            if member in live:
                return member
        raise StateError("ring walk found no eligible member")  # pragma: no cover

    def assignment(
        self, keys: Sequence[str], among: Iterable[str] | None = None
    ) -> dict[str, str]:
        """``{key: owner}`` for every key (total by construction)."""
        live = None if among is None else set(among)
        return {key: self.owner(key, among=live) for key in keys}

    def shard_sizes(self, keys: Sequence[str]) -> dict[str, int]:
        """``{member: key count}``, including zero-key members."""
        sizes = {member: 0 for member in self._members}
        for owner in self.assignment(keys).values():
            sizes[owner] += 1
        return sizes

    def fingerprint(self, keys: Sequence[str] = ()) -> str:
        """SHA-256 over the ring layout (and *keys*' assignment).

        The determinism-audit handle: two same-seed rings with the same
        membership produce byte-identical fingerprints, so a bench or a
        CI step can assert "+0.0%" placement drift across runs.
        """
        payload = {
            "seed": self.seed,
            "vnodes": self.vnodes,
            "points": [[point, member] for point, member in self._points],
            "assignment": self.assignment(keys) if keys else {},
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    # -- rebalancing -------------------------------------------------------

    def plan_join(self, keys: Sequence[str], member: str) -> MigrationPlan:
        """Add *member* and return the minimal moves it attracts.

        Only keys whose clockwise walk now stops at one of the new
        member's points move; every other key keeps its owner.  The
        ring is mutated (the join is applied) before this returns.
        """
        before = self.assignment(keys)
        self.add(member)
        after = self.assignment(keys)
        moves = tuple(
            Migration(key=key, source=before[key], target=after[key])
            for key in keys
            if after[key] != before[key]
        )
        return MigrationPlan(
            kind="join", member=member, moves=moves, assignment=after
        )

    def plan_leave(self, keys: Sequence[str], member: str) -> MigrationPlan:
        """Remove *member* and return the minimal moves it releases.

        Exactly the departed member's keys move (each to its next
        surviving point clockwise); the ring is mutated before return.
        """
        before = self.assignment(keys)
        self.remove(member)
        after = self.assignment(keys)
        moves = tuple(
            Migration(key=key, source=before[key], target=after[key])
            for key in keys
            if after[key] != before[key]
        )
        return MigrationPlan(
            kind="leave", member=member, moves=moves, assignment=after
        )


def shard_balance(sizes: dict[str, int] | Sequence[int]) -> float:
    """Mean-over-max shard occupancy in ``(0, 1]`` (1.0 = perfect).

    The critical path of one sharded attestation tick is its largest
    shard, so the parallel speedup over N verifiers is ``N * balance``
    -- which is why this number is also a recording rule
    (``fleet:shard_balance``) and a capacity-planner input.  Empty
    rings (or all-empty shards) report 0.0.
    """
    values = list(sizes.values()) if isinstance(sizes, dict) else list(sizes)
    if not values:
        return 0.0
    peak = max(values)
    if peak <= 0:
        return 0.0
    return (sum(values) / len(values)) / peak
