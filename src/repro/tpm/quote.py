"""TPM quotes and their verification.

A quote is the TPM's signed statement: "at firmware counter C, the
selected PCRs in bank A had digest D, and I bind this statement to the
challenger's nonce N."  The signature is produced by an attestation key
whose trustworthiness the registrar established out of band (see
:mod:`repro.keylime.registrar`).

The structure mirrors ``TPMS_ATTEST``/``TPM2_Quote`` semantics without
the TCG wire encoding: what matters for the paper is *which* inputs are
covered by the signature (PCR digest, nonce, clock info), because those
are exactly the fields the verifier must check.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from time import perf_counter

from repro.common.errors import IntegrityError
from repro.crypto.rsa import RsaPublicKey
from repro.obs import runtime as obs


class QuoteVerificationError(IntegrityError):
    """A quote failed signature, nonce, or structural verification."""


@dataclass(frozen=True)
class Quote:
    """A signed PCR attestation.

    Attributes:
        bank_algorithm: hash algorithm of the quoted bank ("sha1"/"sha256").
        pcr_selection: sorted PCR indices covered.
        pcr_values: hex values of the selected PCRs at quote time.
        pcr_digest: hash over the concatenated selected values (what the
            signature actually covers, as in TPM 2.0).
        nonce: challenger-supplied qualifying data (hex).
        clock: TPM clock (milliseconds of powered-on time, simulated).
        reset_count: number of TPM resets (reboots) so far.
        restart_count: number of TPM restarts (suspend/resume) so far.
        ak_fingerprint: fingerprint of the signing attestation key.
        signature: RSA signature over :meth:`signed_bytes`.
    """

    bank_algorithm: str
    pcr_selection: tuple[int, ...]
    pcr_values: dict[int, str]
    pcr_digest: str
    nonce: str
    clock: int
    reset_count: int
    restart_count: int
    ak_fingerprint: str
    signature: bytes = field(repr=False)

    def signed_bytes(self) -> bytes:
        """Canonical encoding of the attested fields (signature input)."""
        return attest_bytes(
            bank_algorithm=self.bank_algorithm,
            pcr_selection=self.pcr_selection,
            pcr_digest=self.pcr_digest,
            nonce=self.nonce,
            clock=self.clock,
            reset_count=self.reset_count,
            restart_count=self.restart_count,
            ak_fingerprint=self.ak_fingerprint,
        )


def attest_bytes(
    bank_algorithm: str,
    pcr_selection: tuple[int, ...],
    pcr_digest: str,
    nonce: str,
    clock: int,
    reset_count: int,
    restart_count: int,
    ak_fingerprint: str,
) -> bytes:
    """Canonical byte encoding of a quote's attested fields."""
    payload = {
        "magic": "TPMS_ATTEST/quote",
        "bank": bank_algorithm,
        "selection": list(pcr_selection),
        "pcr_digest": pcr_digest,
        "nonce": nonce,
        "clock": clock,
        "reset_count": reset_count,
        "restart_count": restart_count,
        "ak": ak_fingerprint,
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def pcr_selection_digest(algorithm: str, pcr_values: dict[int, str]) -> str:
    """Digest over the selected PCR values in index order.

    TPM 2.0 signs ``H(PCR[i] || PCR[j] || ...)`` rather than the raw
    values; reproducing that detail means the verifier must recompute
    the digest from the values it was handed, which is a real check.
    """
    blob = b"".join(bytes.fromhex(pcr_values[index]) for index in sorted(pcr_values))
    return hashlib.new(algorithm, blob).hexdigest()


def verify_quote(quote: Quote, ak_public: RsaPublicKey, expected_nonce: str) -> None:
    """Verify a quote against an attestation key and expected nonce.

    Checks, in order: AK identity, nonce binding, the PCR digest
    recomputation, and the RSA signature.  Raises
    :class:`QuoteVerificationError` on the first failure.

    With telemetry active the verification is traced as a
    ``tpm.verify_quote`` span and recorded in the
    ``tpm_quote_verify_wall_seconds`` histogram and the
    ``tpm_quote_verifications_total`` outcome counter.
    """
    telemetry = obs.get()
    wall_start = perf_counter()
    ok = False
    try:
        with telemetry.tracer.span("tpm.verify_quote"):
            _check_quote(quote, ak_public, expected_nonce)
        ok = True
    finally:
        registry = telemetry.registry
        registry.histogram(
            "tpm_quote_verify_wall_seconds", "Wall-clock time to verify a TPM quote",
        ).observe(perf_counter() - wall_start)
        registry.counter(
            "tpm_quote_verifications_total", "Quote verifications by outcome",
            ("result",),
        ).labels(result="ok" if ok else "failed").inc()


def _check_quote(quote: Quote, ak_public: RsaPublicKey, expected_nonce: str) -> None:
    if quote.ak_fingerprint != ak_public.fingerprint():
        raise QuoteVerificationError(
            "quote was signed by an unexpected attestation key",
            context={"expected": ak_public.fingerprint(), "got": quote.ak_fingerprint},
        )
    if quote.nonce != expected_nonce:
        raise QuoteVerificationError(
            "quote nonce does not match the challenge (possible replay)",
            context={"expected": expected_nonce, "got": quote.nonce},
        )
    if set(quote.pcr_values) != set(quote.pcr_selection):
        raise QuoteVerificationError(
            "quote PCR values do not match its selection",
            context={
                "selection": list(quote.pcr_selection),
                "values": sorted(quote.pcr_values),
            },
        )
    recomputed = pcr_selection_digest(quote.bank_algorithm, quote.pcr_values)
    if recomputed != quote.pcr_digest:
        raise QuoteVerificationError(
            "quoted PCR digest does not match the reported PCR values",
            context={"expected": recomputed, "got": quote.pcr_digest},
        )
    if not ak_public.verify(quote.signed_bytes(), quote.signature):
        raise QuoteVerificationError("quote signature verification failed")
