"""Platform Configuration Register banks.

A PCR can only be *extended*: ``PCR := H(PCR || value)``.  This is the
property the whole attestation design rests on -- the verifier replays
the IMA measurement list through the same extend rule and compares the
result with the quoted PCR value, which makes the log tamper-evident
even though the log itself travels over an untrusted channel.
"""

from __future__ import annotations

from repro.common.errors import StateError
from repro.common.hexutil import digest_size, extend_digest, zero_digest

NUM_PCRS = 24

# Linux IMA extends its measurements into PCR 10 by convention.
IMA_PCR_INDEX = 10

# PCRs 0-7 are extended during measured boot by firmware/bootloader.
BOOT_PCRS = tuple(range(8))

# PCRs 17-22 reset with locality / DRTM, which we do not model; they are
# listed so that policy code can name them.
DYNAMIC_PCRS = tuple(range(17, 23))


class PcrBank:
    """One bank of 24 PCRs for a single hash algorithm."""

    def __init__(self, algorithm: str = "sha256") -> None:
        digest_size(algorithm)  # validates the algorithm name
        self.algorithm = algorithm
        self._values: list[str] = [zero_digest(algorithm)] * NUM_PCRS

    def _check_index(self, index: int) -> None:
        if not 0 <= index < NUM_PCRS:
            raise StateError(f"PCR index out of range: {index}")

    def read(self, index: int) -> str:
        """Current hex value of PCR *index*."""
        self._check_index(index)
        return self._values[index]

    def read_selection(self, indices: list[int]) -> dict[int, str]:
        """Read several PCRs at once (quote helper)."""
        return {index: self.read(index) for index in sorted(set(indices))}

    def extend(self, index: int, value_hex: str) -> str:
        """Extend PCR *index* with *value_hex*; returns the new value."""
        self._check_index(index)
        self._values[index] = extend_digest(self.algorithm, self._values[index], value_hex)
        return self._values[index]

    def reset(self) -> None:
        """Reset every PCR to the algorithm's zero digest (power cycle)."""
        self._values = [zero_digest(self.algorithm)] * NUM_PCRS

    def snapshot(self) -> dict[int, str]:
        """All 24 values, for debugging and golden tests."""
        return {index: value for index, value in enumerate(self._values)}


def replay_extends(algorithm: str, values_hex: list[str]) -> str:
    """Replay a sequence of extends from the zero digest.

    This is the verifier-side computation: given the template hashes of
    an IMA log, compute what PCR 10 *should* contain.
    """
    current = zero_digest(algorithm)
    for value in values_hex:
        current = extend_digest(algorithm, current, value)
    return current
