"""A software TPM 2.0 for the attestation stack.

The reproduction needs exactly the TPM features Keylime uses:

* **PCR banks** (:mod:`repro.tpm.pcr`) -- SHA-1 and SHA-256 banks of 24
  platform configuration registers with the extend rule, reset on
  reboot.
* **Quotes** (:mod:`repro.tpm.quote`) -- signed attestations over a PCR
  selection and a verifier-supplied nonce, with verifier-side checks.
* **The device** (:mod:`repro.tpm.device`) -- endorsement key with a
  manufacturer certificate, attestation key creation, restart counters.

What the paper relies on is faithfully implemented: the hash-chained
extend semantics (so the verifier can replay an IMA log against PCR 10),
nonce binding (so quotes cannot be replayed), and the EK certificate
chain (so the registrar can reject spoofed TPMs).
"""

from repro.tpm.device import AttestationKey, Tpm, TpmManufacturer
from repro.tpm.pcr import IMA_PCR_INDEX, NUM_PCRS, PcrBank
from repro.tpm.quote import Quote, QuoteVerificationError, verify_quote

__all__ = [
    "AttestationKey",
    "IMA_PCR_INDEX",
    "NUM_PCRS",
    "PcrBank",
    "Quote",
    "QuoteVerificationError",
    "Tpm",
    "TpmManufacturer",
    "verify_quote",
]
