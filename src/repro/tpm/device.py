"""The TPM device: endorsement key, attestation keys, quoting.

The trust story modelled here is the one Keylime's registrar depends on:

1. A :class:`TpmManufacturer` (a certificate authority) provisions each
   TPM with an **endorsement key** (EK) and signs an EK certificate.
2. Software asks the TPM to create an **attestation key** (AK); the TPM
   certifies that the AK lives in the same device as the EK (modelled by
   :meth:`Tpm.certify_ak`, standing in for ``MakeCredential`` /
   ``ActivateCredential``).
3. Quotes are signed with the AK, so a verifier that trusts the EK chain
   and the AK binding trusts the quotes.

Reboot semantics matter to the paper (attacks "detectable upon reboot"):
:meth:`Tpm.reset` clears the PCR banks and bumps the reset counter, as a
power cycle does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import StateError
from repro.common.rng import SeededRng
from repro.crypto.certs import Certificate, CertificateAuthority
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.tpm.pcr import PcrBank
from repro.tpm.quote import Quote, attest_bytes, pcr_selection_digest


@dataclass(frozen=True)
class AttestationKey:
    """Public half of an AK, plus the TPM's binding statement."""

    public: RsaPublicKey
    ek_fingerprint: str
    binding_signature: bytes

    def verify_binding(self, ek_public: RsaPublicKey) -> bool:
        """Check that the EK holder certified this AK."""
        return ek_public.verify(self._binding_bytes(), self.binding_signature)

    def _binding_bytes(self) -> bytes:
        return b"AK-BINDING|" + self.public.fingerprint().encode() + b"|" + self.ek_fingerprint.encode()


class TpmManufacturer:
    """A TPM vendor: a CA that provisions devices with certified EKs."""

    def __init__(self, name: str, rng: SeededRng, key_bits: int = 1024) -> None:
        self.name = name
        self._rng = rng
        self._ca = CertificateAuthority(f"CA:{name}", rng.fork("ca"), key_bits=key_bits)
        self._serial = 0
        self.key_bits = key_bits

    @property
    def root_certificate(self) -> Certificate:
        """The manufacturer root that verifiers must trust."""
        return self._ca.root_certificate

    def manufacture(self, device_name: str | None = None) -> "Tpm":
        """Produce a new TPM with a certified endorsement key."""
        self._serial += 1
        name = device_name or f"tpm-{self.name}-{self._serial:04d}"
        device_rng = self._rng.fork(f"device/{name}")
        ek = generate_keypair(device_rng.fork("ek"), bits=self.key_bits)
        ek_cert = self._ca.issue(f"EK:{name}", ek.public)
        return Tpm(name=name, ek=ek, ek_certificate=ek_cert, rng=device_rng)


class Tpm:
    """A single TPM 2.0 device instance.

    The device owns SHA-1 and SHA-256 PCR banks, its EK (with the
    manufacturer certificate), and any number of created AKs.  All state
    that a power cycle clears is cleared by :meth:`reset`.
    """

    BANK_ALGORITHMS = ("sha1", "sha256")

    def __init__(
        self, name: str, ek: RsaKeyPair, ek_certificate: Certificate, rng: SeededRng
    ) -> None:
        self.name = name
        self._ek = ek
        self.ek_certificate = ek_certificate
        self._rng = rng
        self.banks: dict[str, PcrBank] = {
            algorithm: PcrBank(algorithm) for algorithm in self.BANK_ALGORITHMS
        }
        self._aks: dict[str, RsaKeyPair] = {}
        self._clock_ms = 0
        self.reset_count = 0
        self.restart_count = 0

    # -- key management --------------------------------------------------

    @property
    def ek_public(self) -> RsaPublicKey:
        """Public endorsement key."""
        return self._ek.public

    def create_ak(self) -> AttestationKey:
        """Create a new attestation key inside the device.

        The returned object carries a binding signature by the EK over
        the AK fingerprint, standing in for the MakeCredential /
        ActivateCredential ceremony that proves EK and AK cohabit.
        """
        keypair = generate_keypair(self._rng.fork(f"ak{len(self._aks)}"), bits=self._ek.public.size_bytes * 8)
        fingerprint = keypair.public.fingerprint()
        self._aks[fingerprint] = keypair
        binding = (
            b"AK-BINDING|" + fingerprint.encode() + b"|" + self._ek.public.fingerprint().encode()
        )
        return AttestationKey(
            public=keypair.public,
            ek_fingerprint=self._ek.public.fingerprint(),
            binding_signature=self._ek.sign(binding),
        )

    # -- PCR operations ---------------------------------------------------

    def extend(self, index: int, value_hex: str, algorithm: str = "sha256") -> str:
        """Extend a PCR in the named bank."""
        return self._bank(algorithm).extend(index, value_hex)

    def read_pcr(self, index: int, algorithm: str = "sha256") -> str:
        """Read a PCR from the named bank."""
        return self._bank(algorithm).read(index)

    def _bank(self, algorithm: str) -> PcrBank:
        try:
            return self.banks[algorithm]
        except KeyError:
            raise StateError(f"TPM {self.name} has no {algorithm!r} bank") from None

    # -- quoting ----------------------------------------------------------

    def tick(self, milliseconds: int) -> None:
        """Advance the TPM's internal clock (driven by the machine)."""
        if milliseconds < 0:
            raise StateError("TPM clock cannot go backwards")
        self._clock_ms += milliseconds

    def quote(
        self,
        ak_fingerprint: str,
        nonce: str,
        pcr_selection: list[int],
        algorithm: str = "sha256",
    ) -> Quote:
        """Produce a signed quote over the selected PCRs.

        Raises :class:`StateError` when the named AK was not created on
        this device -- a quote can only be signed by a resident key.
        """
        try:
            ak = self._aks[ak_fingerprint]
        except KeyError:
            raise StateError(
                f"TPM {self.name} holds no attestation key {ak_fingerprint[:16]}..."
            ) from None
        bank = self._bank(algorithm)
        values = bank.read_selection(pcr_selection)
        selection = tuple(sorted(values))
        digest = pcr_selection_digest(algorithm, values)
        message = attest_bytes(
            bank_algorithm=algorithm,
            pcr_selection=selection,
            pcr_digest=digest,
            nonce=nonce,
            clock=self._clock_ms,
            reset_count=self.reset_count,
            restart_count=self.restart_count,
            ak_fingerprint=ak_fingerprint,
        )
        return Quote(
            bank_algorithm=algorithm,
            pcr_selection=selection,
            pcr_values=values,
            pcr_digest=digest,
            nonce=nonce,
            clock=self._clock_ms,
            reset_count=self.reset_count,
            restart_count=self.restart_count,
            ak_fingerprint=ak_fingerprint,
            signature=ak.sign(message),
        )

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Power-cycle the TPM: clear PCR banks, bump the reset counter.

        Loaded keys survive in this model (they are persisted handles),
        matching how Keylime re-uses its AK across agent restarts.
        """
        for bank in self.banks.values():
            bank.reset()
        self.reset_count += 1
        self._clock_ms = 0
