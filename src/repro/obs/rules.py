"""Recording rules and TSDB-backed health/SLO evaluation.

The TSDB (:mod:`repro.obs.tsdb`) gives the telemetry layer *history*;
this module gives it *derivation*.  A recording rule reads raw scraped
series at evaluation time and writes a named derived series back into
the same store -- the Prometheus recording-rule shape -- so dashboards,
health detectors and the federation hub all consume one shared set of
windows instead of each keeping a private ad-hoc deque:

* :class:`RateRule` / :class:`IncreaseRule` -- reset-adjusted
  per-second rate / raw increase of a counter over a trailing window,
  optionally grouped by label (``by=("result",)`` keeps the ok/failed
  split; an empty ``by`` collapses every source and shard into one
  fleet-level number).
* :class:`RatioRule` -- rate(numerator)/rate(denominator); the mean
  poll latency is ``increase(_sum) / increase(_count)``.
* :class:`QuantileOverTimeRule` -- ``histogram_quantile`` over the
  windowed increase of the scraped ``_bucket`` series, with the usual
  linear interpolation inside the winning bucket.
* :class:`ShareRule` -- each group's fraction of the total windowed
  increase (the per-stage cost attribution behind
  ``fleet:stage_cost_share``).
* :class:`AggregateRule` -- instant sum/avg/min/max/count across the
  matching series (fleet node-state rollups across federated sources).

:class:`RuleEngine` evaluates a rule set against a store at a
timestamp; :func:`standard_recording_rules` is the default set the
observatory and the federation hub both run.

The second half wires the store back into the existing alerting stack:

* :class:`TsdbSampleSource` exposes the store through the sampling
  API :class:`repro.obs.health.HealthMonitor` uses, so the z-score and
  EWMA detectors read their counter/histogram instants from TSDB
  history instead of from a live registry.
* :class:`TsdbSloTracker` is a drop-in :class:`repro.obs.alerts
  .SloTracker` whose samples live in the store as cumulative counter
  series (at exact event times, so window math matches the seed
  implementation sample-for-sample) instead of a private deque.
* :class:`Observatory` bundles store + scraper + rule engine into the
  one object runs attach: ``bind(registry)``, then ``collect(now)``
  each tick (idempotent per timestamp, so a scheduled collector and a
  health-watch tick landing on the same instant scrape once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.common.errors import ConfigurationError
from repro.obs.alerts import SloSet, SloTracker, standard_slos
from repro.obs.tsdb import (
    RegistryScraper,
    Series,
    TsdbStore,
    meta_registry_reset_hook,
)

#: Aggregations :class:`AggregateRule` understands.
AGGREGATIONS = ("sum", "avg", "min", "max", "count")


def _group_key(
    series: Series, by: tuple[str, ...]
) -> tuple[tuple[str, str], ...]:
    """The projected label identity of *series* under a ``by`` clause."""
    return tuple((name, series.label(name) or "") for name in by)


def histogram_quantile(
    q: float, buckets: list[tuple[float, float]]
) -> float | None:
    """Prometheus-style quantile over ``(le, windowed_count)`` buckets.

    *buckets* carry cumulative-in-``le`` counts (as scraped); linear
    interpolation inside the winning bucket, the ``+Inf`` bucket
    degrades to the highest finite bound.  ``None`` when the window
    holds no observations.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    finite = sorted(
        ((le, count) for le, count in buckets), key=lambda pair: pair[0]
    )
    if not finite:
        return None
    total = finite[-1][1]
    if total <= 0:
        return None
    rank = q * total
    previous_bound = 0.0
    previous_count = 0.0
    for bound, count in finite:
        if count >= rank:
            if bound == float("inf"):
                return previous_bound
            if count == previous_count:
                return bound
            fraction = (rank - previous_count) / (count - previous_count)
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound = bound if bound != float("inf") else previous_bound
        previous_count = count
    return previous_bound


class _WindowRule:
    """Shared machinery for rules that group a source series set."""

    def _write(
        self,
        store: TsdbStore,
        record: str,
        groups: dict[tuple[tuple[str, str], ...], float],
        at: float,
    ) -> int:
        written = 0
        for key, value in sorted(groups.items()):
            store.append(record, dict(key), value, at, kind="gauge")
            written += 1
        return written


@dataclass(frozen=True)
class IncreaseRule(_WindowRule):
    """``record = sum by(by) (increase(source[window]))``."""

    record: str
    source: str
    window: float
    by: tuple[str, ...] = ()

    def evaluate(self, store: TsdbStore, at: float) -> int:
        groups: dict[tuple[tuple[str, str], ...], float] = {}
        for series in store.select(self.source):
            key = _group_key(series, self.by)
            groups[key] = groups.get(key, 0.0) + series.increase(
                at - self.window, at
            )
        return self._write(store, self.record, groups, at)


@dataclass(frozen=True)
class RateRule(_WindowRule):
    """``record = sum by(by) (rate(source[window]))`` (per second)."""

    record: str
    source: str
    window: float
    by: tuple[str, ...] = ()

    def evaluate(self, store: TsdbStore, at: float) -> int:
        groups: dict[tuple[tuple[str, str], ...], float] = {}
        for series in store.select(self.source):
            key = _group_key(series, self.by)
            groups[key] = groups.get(key, 0.0) + series.increase(
                at - self.window, at
            ) / self.window
        return self._write(store, self.record, groups, at)


@dataclass(frozen=True)
class RatioRule(_WindowRule):
    """``record = increase(num[window]) / increase(den[window])``.

    The canonical use is a histogram's windowed mean:
    ``_sum`` over ``_count``.  Groups with a zero denominator are
    skipped rather than written as 0 -- "no data" and "mean of zero"
    are different dashboard facts.
    """

    record: str
    numerator: str
    denominator: str
    window: float
    by: tuple[str, ...] = ()

    def evaluate(self, store: TsdbStore, at: float) -> int:
        start = at - self.window
        tops: dict[tuple[tuple[str, str], ...], float] = {}
        bottoms: dict[tuple[tuple[str, str], ...], float] = {}
        for series in store.select(self.numerator):
            key = _group_key(series, self.by)
            tops[key] = tops.get(key, 0.0) + series.increase(start, at)
        for series in store.select(self.denominator):
            key = _group_key(series, self.by)
            bottoms[key] = bottoms.get(key, 0.0) + series.increase(start, at)
        groups = {
            key: tops.get(key, 0.0) / bottom
            for key, bottom in bottoms.items()
            if bottom > 0
        }
        return self._write(store, self.record, groups, at)


@dataclass(frozen=True)
class QuantileOverTimeRule(_WindowRule):
    """``record = histogram_quantile(q, increase(hist_bucket[window]))``."""

    record: str
    histogram: str
    q: float
    window: float
    by: tuple[str, ...] = ()

    def evaluate(self, store: TsdbStore, at: float) -> int:
        start = at - self.window
        grouped: dict[
            tuple[tuple[str, str], ...], dict[float, float]
        ] = {}
        for series in store.select(f"{self.histogram}_bucket"):
            raw_le = series.label("le")
            if raw_le is None:
                continue
            bound = float("inf") if raw_le == "+Inf" else float(raw_le)
            key = _group_key(series, self.by)
            buckets = grouped.setdefault(key, {})
            buckets[bound] = buckets.get(bound, 0.0) + series.increase(
                start, at
            )
        groups: dict[tuple[tuple[str, str], ...], float] = {}
        for key, buckets in grouped.items():
            value = histogram_quantile(self.q, list(buckets.items()))
            if value is not None:
                groups[key] = value
        return self._write(store, self.record, groups, at)


@dataclass(frozen=True)
class ShareRule(_WindowRule):
    """``record = increase per group / total increase`` over the window.

    The per-stage cost attribution rule: grouping
    ``verifier_stage_wall_seconds_sum`` by ``stage`` yields each
    pipeline stage's fraction of the window's total attestation cost.
    Written only when the window saw any increase at all -- an idle
    window has no shares, not a division by zero.
    """

    record: str
    source: str
    window: float
    by: tuple[str, ...] = ()

    def evaluate(self, store: TsdbStore, at: float) -> int:
        start = at - self.window
        groups: dict[tuple[tuple[str, str], ...], float] = {}
        total = 0.0
        for series in store.select(self.source):
            key = _group_key(series, self.by)
            increase = series.increase(start, at)
            groups[key] = groups.get(key, 0.0) + increase
            total += increase
        if total <= 0:
            return 0
        shares = {
            key: value / total for key, value in groups.items() if value > 0
        }
        return self._write(store, self.record, shares, at)


@dataclass(frozen=True)
class AggregateRule(_WindowRule):
    """``record = agg by(by) (source)`` over instants at *at*."""

    record: str
    source: str
    agg: str = "sum"
    by: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.agg not in AGGREGATIONS:
            raise ConfigurationError(
                f"unknown aggregation {self.agg!r}; choose from {AGGREGATIONS}"
            )

    def evaluate(self, store: TsdbStore, at: float) -> int:
        grouped: dict[tuple[tuple[str, str], ...], list[float]] = {}
        for series in store.select(self.source):
            value = series.instant(at)
            if value is None:
                continue
            grouped.setdefault(_group_key(series, self.by), []).append(value)
        reducers = {
            "sum": sum,
            "avg": lambda values: sum(values) / len(values),
            "min": min,
            "max": max,
            "count": len,
        }
        reduce = reducers[self.agg]
        groups = {
            key: float(reduce(values)) for key, values in grouped.items()
        }
        return self._write(store, self.record, groups, at)


@dataclass(frozen=True)
class BalanceRule(_WindowRule):
    """``record = avg(source) / max(source)`` across ``by`` groups.

    The shard-evenness rule: grouping ``fleet_shard_agents`` by
    ``shard`` yields the mean-over-max occupancy in ``(0, 1]`` -- the
    factor by which consistent-hash imbalance discounts the fleet's
    parallel speedup (a tick's critical path is its largest shard).
    Instants are summed within a group first, so a federated store
    where each source reports its own shards still reads per-shard
    totals.  Nothing is written when the source has no data or every
    group is empty -- "no shards" is absence, not balance 0.
    """

    record: str
    source: str
    by: tuple[str, ...] = ()

    def evaluate(self, store: TsdbStore, at: float) -> int:
        grouped: dict[tuple[tuple[str, str], ...], float] = {}
        for series in store.select(self.source):
            value = series.instant(at)
            if value is None:
                continue
            key = _group_key(series, self.by)
            grouped[key] = grouped.get(key, 0.0) + value
        if not grouped:
            return 0
        values = list(grouped.values())
        peak = max(values)
        if peak <= 0:
            return 0
        balance = (sum(values) / len(values)) / peak
        return self._write(store, self.record, {(): balance}, at)


RecordingRule = (
    IncreaseRule | RateRule | RatioRule | QuantileOverTimeRule
    | ShareRule | AggregateRule | BalanceRule
)


class RuleEngine:
    """Evaluates a recording-rule set against one store."""

    def __init__(
        self, store: TsdbStore, rules: Iterable[Any] | None = None
    ) -> None:
        self.store = store
        self.rules: list[Any] = list(rules or ())
        self.evaluations = 0

    def add(self, rule: Any) -> None:
        """Register one more rule."""
        self.rules.append(rule)

    def evaluate(self, at: float) -> int:
        """Run every rule at *at*; returns derived samples written."""
        written = 0
        for rule in self.rules:
            written += rule.evaluate(self.store, at)
        self.evaluations += 1
        return written


def standard_recording_rules(
    poll_interval: float = 1800.0,
) -> list[Any]:
    """The default derived-series set for attestation fleets.

    Windows are expressed in poll intervals (like the burn-rate rules)
    so the rules stay meaningful at any cadence; every rule collapses
    the federation ``source`` label unless it groups by something, so
    the same set works on a single-process store and on the hub.
    """
    window = max(4 * poll_interval, 3600.0)
    return [
        RateRule("fleet:poll_rate", "verifier_polls_total", window),
        RateRule(
            "fleet:poll_rate_by_result", "verifier_polls_total", window,
            by=("result",),
        ),
        IncreaseRule(
            "fleet:poll_failures", "verifier_polls_total", window,
            by=("result",),
        ),
        RatioRule(
            "fleet:poll_latency_mean",
            "verifier_poll_wall_seconds_sum",
            "verifier_poll_wall_seconds_count",
            window,
        ),
        QuantileOverTimeRule(
            "fleet:poll_latency_p95", "verifier_poll_wall_seconds",
            0.95, window,
        ),
        AggregateRule("fleet:nodes", "fleet_nodes", "sum", by=("state",)),
        AggregateRule(
            "fleet:quarantined_nodes", "fleet_quarantined_nodes", "sum"
        ),
        AggregateRule(
            "fleet:attestation_age_max",
            "obs_agent_attestation_age_seconds", "max",
        ),
        AggregateRule(
            "fleet:coverage_gaps_active", "obs_coverage_gaps_active", "sum"
        ),
        IncreaseRule(
            "fleet:chaos_faults", "transport_faults_injected_total", window,
        ),
        IncreaseRule(
            "fleet:degraded_rounds", "verifier_degraded_rounds_total", window,
        ),
        # Saturation / capacity set (repro.obs.capacity): windowed
        # busy-over-budget utilization, the overrun fraction, and the
        # per-stage share of attestation cost.
        RatioRule(
            "fleet:utilization",
            "fleet_tick_busy_seconds_total",
            "fleet_tick_budget_seconds_total",
            window,
        ),
        RatioRule(
            "fleet:tick_overrun_ratio",
            "fleet_tick_overruns_total",
            "fleet_ticks_total",
            window,
        ),
        ShareRule(
            "fleet:stage_cost_share",
            "verifier_stage_wall_seconds_sum",
            window,
            by=("stage",),
        ),
        # Sharded-fleet set: how evenly the consistent-hash ring spread
        # the agents (written only once shard gauges exist).
        BalanceRule("fleet:shard_balance", "fleet_shard_agents", by=("shard",)),
    ]


# ---------------------------------------------------------------------------
# Health sampling + SLO tracking over the store
# ---------------------------------------------------------------------------


class TsdbSampleSource:
    """The :class:`HealthMonitor` sampling API, served from a store.

    ``HealthMonitor.check(now)`` reads the current cumulative value of
    a handful of series and diffs against its previous tick; this
    source answers those reads with TSDB instants at *now*.  Because
    the observatory scrapes the registry at the top of the same tick,
    the instants equal the live registry values exactly -- which is the
    equivalence the tests pin down.
    """

    def __init__(self, store: TsdbStore) -> None:
        self.store = store

    def counter_value(
        self, name: str, labels: dict[str, str], at: float
    ) -> float | None:
        """Cumulative counter value at *at*, ``None`` if never scraped."""
        return self.store.instant(name, labels or None, at)

    def histogram_totals(
        self, name: str, at: float
    ) -> tuple[float, float] | None:
        """The default child's ``(count, sum)`` at *at*."""
        count = self.store.instant(f"{name}_count", None, at)
        total = self.store.instant(f"{name}_sum", None, at)
        if count is None or total is None:
            return None
        return count, total


class TsdbSloTracker(SloTracker):
    """A :class:`SloTracker` whose samples live in the TSDB.

    Every ``record(now, good)`` appends the cumulative total/bad counts
    to two counter series at the *exact* event time (not the scrape
    grid), so ``window_counts`` -- reimplemented as reset-adjusted
    store increases with the same left-closed ``time >= start`` edge
    the deque implementation uses -- returns identical numbers, and
    the burn-rate rules riding on it fire identically.  The series
    names use the ``slo:`` prefix so they can never collide with a
    registry-scraped family.

    When a *registry* is supplied, each sample also bumps
    ``slo_events_total{slo,outcome}`` so scrape-grid exports and the
    federation hub see SLO activity too (display resolution only; the
    alert math always uses the exact-time series).
    """

    def __init__(
        self,
        store: TsdbStore,
        name: str,
        objective: float,
        description: str = "",
        max_window: float = 7 * 86400.0,
        registry=None,
    ) -> None:
        super().__init__(
            name, objective, description=description, max_window=max_window
        )
        self.store = store
        self.registry = registry
        self._total_name = f"slo:{name}:total"
        self._bad_name = f"slo:{name}:bad"

    def record(self, now: float, good: bool) -> None:
        """Record one sample as cumulative counter points at *now*."""
        self.total += 1
        if not good:
            self.total_bad += 1
        self.store.append(
            self._total_name, None, float(self.total), now, kind="counter"
        )
        self.store.append(
            self._bad_name, None, float(self.total_bad), now, kind="counter"
        )
        if self.registry is not None:
            self.registry.counter(
                "slo_events_total",
                "SLO samples recorded, by objective and outcome",
                ("slo", "outcome"),
            ).labels(slo=self.name, outcome="good" if good else "bad").inc()

    def window_counts(self, window: float, now: float) -> tuple[int, int]:
        """``(total, bad)`` over the trailing window, from store history."""
        start = now - window
        total = self.store.increase(self._total_name, None, start, now)
        bad = self.store.increase(self._bad_name, None, start, now)
        return int(round(total)), int(round(bad))


def tsdb_slos(
    store: TsdbStore,
    registry=None,
    max_window: float = 7 * 86400.0,
) -> SloSet:
    """:func:`standard_slos` built on :class:`TsdbSloTracker`."""
    def make(
        name: str, objective: float, description: str = "",
        max_window: float = max_window,
    ) -> TsdbSloTracker:
        return TsdbSloTracker(
            store, name, objective, description=description,
            max_window=max_window, registry=registry,
        )

    return standard_slos(max_window=max_window, make=make)


class Observatory:
    """Store + scraper + rule engine, bundled for one run.

    Attach order per tick matters and is handled by the callers:
    :meth:`collect` (scrape, then rules) runs *before* the health
    monitor's check, so detector reads at ``now`` see this tick's
    scrape.  ``collect`` is idempotent per timestamp -- a scheduled
    fleet collector and a health-watch tick landing on the same sim
    instant scrape once.
    """

    def __init__(
        self,
        store: TsdbStore | None = None,
        registry=None,
        rules: Iterable[Any] | None = None,
        poll_interval: float = 1800.0,
    ) -> None:
        self.store = store if store is not None else TsdbStore()
        self.poll_interval = poll_interval
        self.engine = RuleEngine(
            self.store,
            rules if rules is not None
            else standard_recording_rules(poll_interval),
        )
        self.registry = None
        self.scraper: RegistryScraper | None = None
        self.collections = 0
        if registry is not None:
            self.bind(registry)

    def bind(self, registry) -> "Observatory":
        """Point the observatory at a live registry; returns self."""
        self.registry = registry
        self.store.on_counter_reset = meta_registry_reset_hook(registry)
        self.scraper = RegistryScraper(self.store)
        return self

    @property
    def bound(self) -> bool:
        """Whether :meth:`bind` has been called."""
        return self.scraper is not None

    def collect(self, now: float) -> int:
        """One scrape + rule evaluation; returns samples appended.

        No-op (returns 0) when already collected at exactly *now* or
        when no registry is bound yet.
        """
        if self.scraper is None or self.store.last_scrape_at == now:
            return 0
        appended = self.scraper.scrape(self.registry, now)
        appended += self.engine.evaluate(now)
        self.collections += 1
        return appended

    def health_source(self) -> TsdbSampleSource:
        """A :class:`HealthMonitor`-compatible sample source."""
        return TsdbSampleSource(self.store)

    def slos(self, max_window: float = 7 * 86400.0) -> SloSet:
        """TSDB-backed standard SLO trackers for this store."""
        return tsdb_slos(self.store, registry=self.registry, max_window=max_window)

    def schedule(self, scheduler):
        """Collect every ``poll_interval`` on *scheduler*; returns stop."""
        return scheduler.every(
            self.poll_interval,
            lambda: self.collect(scheduler.clock.now),
            label="obs.observatory",
        )
