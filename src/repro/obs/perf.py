"""Perf observatory: benchmark records, trajectory, regression verdicts.

The repo's ``benchmarks/bench_*.py`` scripts each measure one claim
(cache speedup, scrape overhead, push-vs-pull cost, ...) but until now
every run was ad hoc: no shared schema, no recorded history, no
automated regression signal -- so the ROADMAP's next arc, which must be
"gated with benchmarks", had nothing to gate against.  This module is
the instrument every scale-out PR reports through:

* **Registration.**  A bench declares itself once --
  :func:`register_bench` with a name, its :class:`BenchMetric` list
  (unit + better-direction per metric), the modes it supports and its
  seed -- and ``benchmarks/harness.py`` discovers and runs everything
  registered under one runner.
* **Records.**  Every run appends one normalized :class:`BenchRecord`
  (bench, mode, seed, metric values, environment capture) to a durable
  ``perf/trajectory.jsonl`` via :class:`TrajectoryStore` -- appends are
  single ``write`` + ``fsync`` of complete lines, the loader tolerates
  a torn tail line from a crash mid-append, and
  :func:`write_trajectory` / :func:`load_trajectory` round-trip the
  file exactly, like the TSDB's ``export_records`` pair.
* **Noise-aware regression detection.**  :func:`compare_trajectory`
  scores the newest run of each ``(bench, mode)`` against the median
  of the last N same-mode runs per metric, with a noise floor derived
  from the baseline's MAD (median absolute deviation, the robust
  sibling of the :class:`repro.obs.health.SlidingWindow` z-score) so a
  wall-clock metric's ordinary jitter never flags while a genuine 2x
  slowdown always does.  Each metric classifies as ``ok`` /
  ``improved`` / ``regressed`` / ``noisy`` and every verdict is a
  machine-readable record.
* **TSDB loading.**  :func:`trajectory_to_store` turns a trajectory
  into ``perf:metric`` series (one sample per run, indexed by run
  sequence) so ``repro-cli obs top`` grows a perf-trajectory panel and
  the dashboard sparkline machinery applies unchanged.
* **Continuous profiling (opt-in).**  :class:`SamplingProfiler` wraps
  a bench's hot section in a stack-sampling thread emitting collapsed
  flamegraph folds in the :func:`repro.obs.profiling.collapsed_stacks`
  text format; a regression verdict then links the candidate's folds
  to the baseline's so the diff is one :func:`diff_folds` away.

Determinism contract: a bench's *workload* must be a pure function of
``(mode, seed)`` -- both are stamped into every record -- so the only
run-to-run variance in a same-seed rerun is wall-clock noise, which is
exactly what the MAD floor absorbs.  Counts, byte sizes and ratios of
counts are domain-pure and must reproduce bit-identically.
"""

from __future__ import annotations

import json
import math
import os
import platform
import statistics
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.common.errors import ConfigurationError
from repro.obs.exporters import write_jsonl_atomic
from repro.obs.tsdb import TsdbStore

#: Default trajectory location, relative to the working directory.
TRAJECTORY_PATH = os.path.join("perf", "trajectory.jsonl")

#: Modes a bench may support.  ``smoke`` is the CI shape (seconds, no
#: tight assertions); ``full`` the measurement shape.
BENCH_MODES = ("smoke", "full")

#: Allowed better-directions for a metric.
BETTER_DIRECTIONS = ("lower", "higher")

#: TSDB series name trajectory samples load under.
PERF_SERIES = "perf:metric"

#: Baseline runs (per bench+mode, newest first) the detector medians.
DEFAULT_BASELINE_RUNS = 5

#: Deviation threshold in noise-floor units before a metric flags.
DEFAULT_Z_THRESHOLD = 2.5

#: Relative noise floor: deviations under this fraction of the
#: baseline median are jitter by definition, whatever the MAD says.
DEFAULT_REL_FLOOR = 0.05

#: Absolute noise floor, guarding zero-median metrics.
DEFAULT_ABS_FLOOR = 1e-12

#: Baselines whose MAD-derived noise exceeds this fraction of the
#: median are too unstable to call a direction: verdict ``noisy``.
NOISY_BASELINE_RATIO = 0.25

#: MAD -> sigma for a normal distribution (the robust z-score scale).
MAD_SIGMA = 1.4826

#: Classification outcomes, worst first (ordering used by roll-ups).
VERDICT_STATUSES = ("regressed", "noisy", "improved", "ok")


# -- registration -----------------------------------------------------------


@dataclass(frozen=True)
class BenchMetric:
    """One metric a bench reports: name, unit and better-direction."""

    name: str
    unit: str
    better: str = "lower"
    description: str = ""

    def __post_init__(self) -> None:
        if self.better not in BETTER_DIRECTIONS:
            raise ConfigurationError(
                f"metric {self.name!r}: better must be one of "
                f"{BETTER_DIRECTIONS}, got {self.better!r}"
            )

    def to_record(self) -> dict[str, Any]:
        """Plain-dict form for ``bench list --json``."""
        return {
            "name": self.name,
            "unit": self.unit,
            "better": self.better,
            "description": self.description,
        }


@dataclass(frozen=True)
class BenchSpec:
    """A registered bench: identity, declared metrics, runner."""

    name: str
    metrics: tuple[BenchMetric, ...]
    runner: Callable[[str, str], dict[str, float]]
    seed: str
    modes: tuple[str, ...] = BENCH_MODES
    description: str = ""

    def __post_init__(self) -> None:
        if not self.metrics:
            raise ConfigurationError(f"bench {self.name!r} declares no metrics")
        for mode in self.modes:
            if mode not in BENCH_MODES:
                raise ConfigurationError(
                    f"bench {self.name!r}: mode must be one of {BENCH_MODES}, "
                    f"got {mode!r}"
                )
        seen: set[str] = set()
        for metric in self.metrics:
            if metric.name in seen:
                raise ConfigurationError(
                    f"bench {self.name!r} declares metric {metric.name!r} twice"
                )
            seen.add(metric.name)

    def metric(self, name: str) -> BenchMetric | None:
        """The declared metric of that name, or ``None``."""
        for metric in self.metrics:
            if metric.name == name:
                return metric
        return None

    def to_record(self) -> dict[str, Any]:
        """Machine-readable spec (no runner) for ``bench list --json``."""
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "modes": list(self.modes),
            "metrics": [metric.to_record() for metric in self.metrics],
        }


_REGISTRY: dict[str, BenchSpec] = {}


def register_bench(
    name: str,
    metrics: Iterable[BenchMetric],
    runner: Callable[[str, str], dict[str, float]],
    seed: str,
    modes: Iterable[str] = BENCH_MODES,
    description: str = "",
) -> BenchSpec:
    """Register (or re-register) a bench; returns the stored spec.

    Re-registration replaces the previous entry: a bench module may be
    imported more than once in a process (pytest collection plus
    harness discovery), and the last definition wins.
    """
    spec = BenchSpec(
        name=name, metrics=tuple(metrics), runner=runner, seed=seed,
        modes=tuple(modes), description=description,
    )
    _REGISTRY[spec.name] = spec
    return spec


def registered_benches() -> list[BenchSpec]:
    """Every registered bench, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_bench(name: str) -> BenchSpec | None:
    """One registered bench by name, or ``None``."""
    return _REGISTRY.get(name)


def clear_registry() -> None:
    """Drop every registration (test isolation)."""
    _REGISTRY.clear()


# -- environment capture ----------------------------------------------------


def git_sha(cwd: str | None = None) -> str:
    """The short git SHA of *cwd* (or CWD), ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10.0,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def capture_environment(cwd: str | None = None) -> dict[str, Any]:
    """The environment block stamped into every :class:`BenchRecord`."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "git_sha": git_sha(cwd),
    }


# -- records ----------------------------------------------------------------


@dataclass
class BenchRecord:
    """One normalized benchmark run.

    ``metrics`` maps metric name to value; ``units`` / ``better`` carry
    the declaration alongside so a trajectory file is self-describing
    (the detector never needs the registry to score history).  ``seq``
    is the record's position in its trajectory file, assigned at append
    or load time -- it is the run axis for sparklines and TSDB loading.
    """

    bench: str
    mode: str
    seed: str
    metrics: dict[str, float]
    units: dict[str, str] = field(default_factory=dict)
    better: dict[str, str] = field(default_factory=dict)
    env: dict[str, Any] = field(default_factory=dict)
    recorded_at: float = 0.0
    profile: str | None = None
    seq: int | None = None

    def to_record(self) -> dict[str, Any]:
        """One ``bench_record`` JSONL line (round-trips exactly)."""
        record: dict[str, Any] = {
            "type": "bench_record",
            "bench": self.bench,
            "mode": self.mode,
            "seed": self.seed,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            "units": {k: self.units[k] for k in sorted(self.units)},
            "better": {k: self.better[k] for k in sorted(self.better)},
            "env": self.env,
            "recorded_at": self.recorded_at,
        }
        if self.profile is not None:
            record["profile"] = self.profile
        if self.seq is not None:
            record["seq"] = self.seq
        return record

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "BenchRecord":
        """Rebuild from :meth:`to_record` output."""
        return cls(
            bench=str(record["bench"]),
            mode=str(record["mode"]),
            seed=str(record["seed"]),
            metrics={
                str(k): float(v) for k, v in record.get("metrics", {}).items()
            },
            units={str(k): str(v) for k, v in record.get("units", {}).items()},
            better={
                str(k): str(v) for k, v in record.get("better", {}).items()
            },
            env=dict(record.get("env", {})),
            recorded_at=float(record.get("recorded_at", 0.0)),
            profile=record.get("profile"),
            seq=(int(record["seq"]) if record.get("seq") is not None else None),
        )


def record_from_run(
    spec: BenchSpec,
    mode: str,
    values: dict[str, float],
    seed: str | None = None,
    env: dict[str, Any] | None = None,
    recorded_at: float | None = None,
) -> BenchRecord:
    """Normalize a runner's raw values against the bench's declaration.

    Only declared metrics are kept (a runner may compute extras for its
    own assertions); a declared metric a runner legitimately cannot
    produce in some mode (e.g. a knee that needs a full sweep) is
    simply absent from the record.  Non-finite values are rejected --
    an ``inf`` entries/sec from a zero-duration loop is a measurement
    bug, not a data point.
    """
    if mode not in spec.modes:
        raise ConfigurationError(
            f"bench {spec.name!r} does not support mode {mode!r}"
        )
    metrics: dict[str, float] = {}
    units: dict[str, str] = {}
    better: dict[str, str] = {}
    for metric in spec.metrics:
        if metric.name not in values or values[metric.name] is None:
            continue
        value = float(values[metric.name])
        if not math.isfinite(value):
            raise ConfigurationError(
                f"bench {spec.name!r} metric {metric.name!r} is non-finite "
                f"({value!r})"
            )
        metrics[metric.name] = value
        units[metric.name] = metric.unit
        better[metric.name] = metric.better
    if not metrics:
        raise ConfigurationError(
            f"bench {spec.name!r} produced none of its declared metrics"
        )
    environment = dict(env if env is not None else capture_environment())
    environment["smoke"] = mode == "smoke"
    return BenchRecord(
        bench=spec.name,
        mode=mode,
        seed=seed if seed is not None else spec.seed,
        metrics=metrics,
        units=units,
        better=better,
        env=environment,
        recorded_at=(
            recorded_at if recorded_at is not None else round(time.time(), 3)
        ),
    )


# -- trajectory store -------------------------------------------------------


class TrajectoryStore:
    """Durable append-only JSONL store of :class:`BenchRecord` lines.

    Appends write one complete serialized line per record with an
    ``fsync`` before returning, so a crash never interleaves partial
    records mid-file -- at worst the final line is torn, which
    :meth:`load` tolerates (and counts in :attr:`torn_lines`).
    """

    def __init__(self, path: str = TRAJECTORY_PATH) -> None:
        self.path = path
        self.torn_lines = 0
        self._count: int | None = None

    def load(self) -> list[BenchRecord]:
        """Every record in file order, ``seq`` assigned positionally.

        Malformed lines are skipped and counted in :attr:`torn_lines`
        rather than raised: a crash mid-append tears the tail line, and
        a later :meth:`append` newline-repairs that fragment into a
        standalone malformed line mid-file -- both are expected wreckage
        of the crash-recovery story, not corruption worth refusing the
        other records over.
        """
        self.torn_lines = 0
        records: list[BenchRecord] = []
        if not os.path.exists(self.path):
            self._count = 0
            return records
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        for line in lines:
            if not line.strip():
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                self.torn_lines += 1
                continue
            if raw.get("type") != "bench_record":
                continue
            record = BenchRecord.from_record(raw)
            record.seq = len(records)
            records.append(record)
        self._count = len(records)
        return records

    def next_seq(self) -> int:
        """The ``seq`` the next :meth:`append` will assign."""
        if self._count is None:
            self.load()
        return self._count or 0

    def append(self, record: BenchRecord) -> BenchRecord:
        """Durably append one record; assigns and returns its ``seq``."""
        if self._count is None:
            self.load()
        record.seq = self._count or 0
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        # A crash mid-append leaves a torn tail with no newline; repair
        # it first so this record starts a fresh line instead of fusing
        # with the fragment (load() skips the fragment either way).
        needs_newline = False
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            with open(self.path, "rb") as tail:
                tail.seek(-1, os.SEEK_END)
                needs_newline = tail.read(1) != b"\n"
        line = json.dumps(record.to_record(), sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            if needs_newline:
                handle.write("\n")
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self._count = record.seq + 1
        return record


def load_trajectory(path: str = TRAJECTORY_PATH) -> list[BenchRecord]:
    """Load a trajectory file (empty list when absent)."""
    return TrajectoryStore(path).load()


def write_trajectory(path: str, records: Iterable[BenchRecord]) -> int:
    """Atomically (re)write a whole trajectory; returns lines written.

    The compaction/export path: ``load_trajectory(p) ==
    load_trajectory(q)`` after ``write_trajectory(q, load_trajectory(p))``
    -- the exact round-trip the tests assert.
    """
    return write_jsonl_atomic(
        path, (record.to_record() for record in records)
    )


# -- TSDB loading -----------------------------------------------------------


def trajectory_to_store(
    records: Iterable[BenchRecord], store: TsdbStore | None = None
) -> TsdbStore:
    """Load a trajectory into a :class:`TsdbStore` as ``perf:metric``.

    One gauge sample per (record, metric), at time = record ``seq`` --
    the run index is the only honest x-axis for a trajectory that mixes
    hosts and dates -- labelled by bench / metric / mode / unit /
    better, so the dashboard's sparkline and instant machinery applies
    unchanged and an ``obs top --replay`` export carries the series
    through its ordinary TSDB round-trip.
    """
    store = store if store is not None else TsdbStore()
    ordered = sorted(
        (record for record in records),
        key=lambda record: (record.seq if record.seq is not None else 0),
    )
    for record in ordered:
        at = float(record.seq if record.seq is not None else 0)
        for name, value in sorted(record.metrics.items()):
            store.append(
                PERF_SERIES,
                {
                    "bench": record.bench,
                    "metric": name,
                    "mode": record.mode,
                    "unit": record.units.get(name, ""),
                    "better": record.better.get(name, "lower"),
                },
                value,
                at,
                kind="gauge",
            )
    return store


# -- regression detection ---------------------------------------------------


@dataclass
class MetricVerdict:
    """One metric's classification against its baseline."""

    bench: str
    mode: str
    metric: str
    unit: str
    better: str
    value: float
    status: str
    baseline_median: float | None = None
    baseline_runs: int = 0
    noise_scale: float | None = None
    score: float | None = None
    reason: str = ""
    seed: str = ""
    baseline_seeds_match: bool = True
    profile: str | None = None
    baseline_profile: str | None = None

    @property
    def delta_ratio(self) -> float | None:
        """Relative deviation from the baseline median (signed)."""
        if self.baseline_median in (None, 0.0):
            return None
        return (self.value - self.baseline_median) / abs(self.baseline_median)

    def to_record(self) -> dict[str, Any]:
        """One machine-readable ``bench_verdict`` record."""
        record: dict[str, Any] = {
            "type": "bench_verdict",
            "bench": self.bench,
            "mode": self.mode,
            "metric": self.metric,
            "unit": self.unit,
            "better": self.better,
            "value": self.value,
            "status": self.status,
            "baseline_median": self.baseline_median,
            "baseline_runs": self.baseline_runs,
            "noise_scale": self.noise_scale,
            "score": self.score,
            "delta_ratio": self.delta_ratio,
            "reason": self.reason,
            "seed": self.seed,
            "baseline_seeds_match": self.baseline_seeds_match,
        }
        if self.profile is not None:
            record["profile"] = self.profile
        if self.baseline_profile is not None:
            record["baseline_profile"] = self.baseline_profile
        return record


def classify_metric(
    value: float,
    baseline: list[float],
    better: str,
    z_threshold: float = DEFAULT_Z_THRESHOLD,
    rel_floor: float = DEFAULT_REL_FLOOR,
    abs_floor: float = DEFAULT_ABS_FLOOR,
    noisy_ratio: float = NOISY_BASELINE_RATIO,
) -> tuple[str, float | None, float | None, float | None, str]:
    """Score one value against its baseline window.

    Returns ``(status, baseline_median, noise_scale, score, reason)``.
    The noise scale is ``max(MAD * 1.4826, rel_floor * |median|,
    abs_floor)`` -- the MAD term adapts to a metric's observed jitter,
    the relative floor keeps a bit-stable baseline (MAD = 0) from
    flagging sub-percent drift, and the absolute floor guards
    zero-median metrics.  Beyond the threshold, direction decides
    improved vs regressed per the metric's better-direction -- unless
    the baseline itself is too unstable to call (MAD noise above
    *noisy_ratio* of the median), which is ``noisy``.
    """
    if better not in BETTER_DIRECTIONS:
        raise ConfigurationError(
            f"better must be one of {BETTER_DIRECTIONS}, got {better!r}"
        )
    if not baseline:
        return "noisy", None, None, None, "no baseline runs"
    median = statistics.median(baseline)
    mad = statistics.median(abs(x - median) for x in baseline)
    noise = max(mad * MAD_SIGMA, rel_floor * abs(median), abs_floor)
    deviation = value - median
    score = deviation / noise
    if abs(score) <= z_threshold:
        return "ok", median, noise, score, ""
    if len(baseline) < 2:
        # One run is a reference point, not a noise model: beyond the
        # floor it is impossible to tell drift from jitter, so the
        # verdict stays advisory until a second run lands.
        return (
            "noisy", median, noise, score,
            "single-run baseline cannot separate drift from jitter",
        )
    if median != 0.0 and mad * MAD_SIGMA > noisy_ratio * abs(median):
        return (
            "noisy", median, noise, score,
            f"baseline MAD noise {mad * MAD_SIGMA / abs(median):.1%} of "
            f"median exceeds {noisy_ratio:.0%}",
        )
    worse = deviation > 0 if better == "lower" else deviation < 0
    status = "regressed" if worse else "improved"
    return status, median, noise, score, ""


@dataclass
class CompareResult:
    """All metric verdicts for the newest run of each (bench, mode)."""

    verdicts: list[MetricVerdict]
    baseline_runs: int
    mode: str | None = None

    @property
    def counts(self) -> dict[str, int]:
        """Verdict counts by status (every status key present)."""
        out = {status: 0 for status in VERDICT_STATUSES}
        for verdict in self.verdicts:
            out[verdict.status] += 1
        return out

    @property
    def regressed(self) -> list[MetricVerdict]:
        """The regressed verdicts, worst score first."""
        out = [v for v in self.verdicts if v.status == "regressed"]
        out.sort(key=lambda v: -(abs(v.score) if v.score is not None else 0.0))
        return out

    @property
    def status(self) -> str:
        """Roll-up: worst status present (``ok`` when empty)."""
        counts = self.counts
        for status in VERDICT_STATUSES:
            if counts[status]:
                return status
        return "ok"

    def to_record(self) -> dict[str, Any]:
        """One ``bench_compare`` summary record."""
        return {
            "type": "bench_compare",
            "status": self.status,
            "counts": self.counts,
            "baseline_runs": self.baseline_runs,
            "mode": self.mode,
            "metrics": len(self.verdicts),
            "regressed": [
                {
                    "bench": v.bench,
                    "mode": v.mode,
                    "metric": v.metric,
                    "delta_ratio": v.delta_ratio,
                }
                for v in self.regressed
            ],
        }


def compare_trajectory(
    records: Iterable[BenchRecord],
    baseline_runs: int = DEFAULT_BASELINE_RUNS,
    mode: str | None = None,
    benches: Iterable[str] | None = None,
    z_threshold: float = DEFAULT_Z_THRESHOLD,
    rel_floor: float = DEFAULT_REL_FLOOR,
    abs_floor: float = DEFAULT_ABS_FLOOR,
    noisy_ratio: float = NOISY_BASELINE_RATIO,
) -> CompareResult:
    """Verdicts for the newest run of every (bench, mode) group.

    The candidate is each group's latest record; its baseline is the up
    to *baseline_runs* records before it **in the same mode** (the
    smoke and full populations are different workloads and never mix).
    Metrics absent from the candidate are not scored; metrics absent
    from the whole baseline classify ``noisy`` (no history).
    """
    if baseline_runs < 1:
        raise ConfigurationError(
            f"baseline_runs must be >= 1, got {baseline_runs}"
        )
    wanted = set(benches) if benches is not None else None
    groups: dict[tuple[str, str], list[BenchRecord]] = {}
    for record in sorted(
        records, key=lambda r: (r.seq if r.seq is not None else 0)
    ):
        if mode is not None and record.mode != mode:
            continue
        if wanted is not None and record.bench not in wanted:
            continue
        groups.setdefault((record.bench, record.mode), []).append(record)

    verdicts: list[MetricVerdict] = []
    for (bench, run_mode), history in sorted(groups.items()):
        candidate = history[-1]
        baseline_records = history[:-1][-baseline_runs:]
        baseline_profiles = [
            r.profile for r in baseline_records if r.profile is not None
        ]
        seeds_match = all(
            r.seed == candidate.seed for r in baseline_records
        )
        for metric_name in sorted(candidate.metrics):
            value = candidate.metrics[metric_name]
            better = candidate.better.get(metric_name, "lower")
            baseline = [
                r.metrics[metric_name]
                for r in baseline_records
                if metric_name in r.metrics
            ]
            status, median, noise, score, reason = classify_metric(
                value, baseline, better,
                z_threshold=z_threshold, rel_floor=rel_floor,
                abs_floor=abs_floor, noisy_ratio=noisy_ratio,
            )
            verdicts.append(MetricVerdict(
                bench=bench,
                mode=run_mode,
                metric=metric_name,
                unit=candidate.units.get(metric_name, ""),
                better=better,
                value=value,
                status=status,
                baseline_median=median,
                baseline_runs=len(baseline),
                noise_scale=noise,
                score=score,
                reason=reason,
                seed=candidate.seed,
                baseline_seeds_match=seeds_match,
                profile=candidate.profile,
                baseline_profile=(
                    baseline_profiles[-1] if baseline_profiles else None
                ),
            ))
    return CompareResult(
        verdicts=verdicts, baseline_runs=baseline_runs, mode=mode,
    )


# -- sampling profiler (opt-in continuous profiling) ------------------------


class SamplingProfiler:
    """Wall-clock stack sampler emitting collapsed flamegraph folds.

    A daemon thread snapshots the target thread's stack every
    *interval* seconds via ``sys._current_frames()`` and accumulates
    ``root;child;leaf -> samples`` folds -- the same collapsed-stack
    text format :func:`repro.obs.profiling.collapsed_stacks` emits for
    span trees, so one flamegraph toolchain (and :func:`diff_folds`)
    serves both.  Opt-in: sampling perturbs the measured section by the
    cost of walking its stack, so the harness only engages it under
    ``--profile`` and never derives metrics from a profiled run's
    timings relative to an unprofiled baseline of a *different* flag
    setting.
    """

    def __init__(self, interval: float = 0.005) -> None:
        if interval <= 0:
            raise ConfigurationError(
                f"sampling interval must be positive, got {interval}"
            )
        self.interval = interval
        self.samples = 0
        self._folds: dict[str, int] = {}
        self._target_ident: int | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    @staticmethod
    def _stack_of(frame) -> str:
        parts: list[str] = []
        while frame is not None:
            module = frame.f_globals.get("__name__", "?")
            parts.append(f"{module}:{frame.f_code.co_name}")
            frame = frame.f_back
        parts.reverse()
        return ";".join(parts)

    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target_ident)
            if frame is None:
                continue
            stack = self._stack_of(frame)
            self._folds[stack] = self._folds.get(stack, 0) + 1
            self.samples += 1

    def start(self) -> None:
        """Begin sampling the *calling* thread."""
        if self._thread is not None:
            raise ConfigurationError("profiler already started")
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="perf-sampler", daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling (idempotent)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def folds(self) -> dict[str, int]:
        """``stack -> sample count`` folds accumulated so far."""
        return dict(self._folds)

    def collapsed(self) -> str:
        """Folds as flamegraph-ready ``stack count`` text lines."""
        return "\n".join(
            f"{stack} {count}" for stack, count in sorted(self._folds.items())
        )


def load_folds(text: str) -> dict[str, int]:
    """Parse collapsed-stack text back into ``stack -> count`` folds."""
    folds: dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack:
            continue
        folds[stack] = folds.get(stack, 0) + int(count)
    return folds


def diff_folds(
    a: dict[str, int], b: dict[str, int]
) -> list[tuple[str, int]]:
    """Per-stack count deltas ``b - a``, biggest movement first.

    The flamegraph-diff primitive behind a regression verdict: *a* is
    the baseline run's folds, *b* the regressed candidate's, and the
    top positive deltas are where the new time went.
    """
    deltas = [
        (stack, b.get(stack, 0) - a.get(stack, 0))
        for stack in sorted(set(a) | set(b))
    ]
    deltas = [(stack, delta) for stack, delta in deltas if delta != 0]
    deltas.sort(key=lambda item: (-abs(item[1]), item[0]))
    return deltas


def render_fold_diff(
    deltas: list[tuple[str, int]],
    a_label: str = "baseline",
    b_label: str = "candidate",
    limit: int = 12,
) -> str:
    """Human-readable top of a fold diff."""
    lines = [f"== flamegraph fold diff: {a_label} -> {b_label} (samples) =="]
    if not deltas:
        return lines[0] + "\n(no stack movement)"
    for stack, delta in deltas[:limit]:
        leaf = stack.rsplit(";", 1)[-1]
        lines.append(f"  {delta:+6d}  {leaf}  [{stack}]")
    if len(deltas) > limit:
        lines.append(f"  ... {len(deltas) - limit} more stacks")
    return "\n".join(lines)
