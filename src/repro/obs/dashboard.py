"""Mission-control rendering of a (possibly federated) TSDB store.

``repro-cli obs top`` is the fleet-over-time counterpart to the
point-in-time ``obs watch`` dashboard: every line is answered from
:class:`~repro.obs.tsdb.TsdbStore` queries -- instants for the current
state, ranges for the sparkline trends, windowed increases for the SLO
burn -- so the same renderer works live against a local observatory,
against a :class:`~repro.obs.federation.FederationHub` merging N
registries, or post-hoc against a store rebuilt from a JSONL export.

Rendering is plain console text in the existing ``render_dashboard``
idiom; :func:`top_frame_record` is the machine-readable twin for
``--jsonl`` output, carrying the same numbers as typed records.
"""

from __future__ import annotations

from typing import Any

from repro.obs.tsdb import TsdbStore

#: Unicode block glyphs, lowest to highest.
SPARK_GLYPHS = "▁▂▃▄▅▆▇█"

#: Freshness heat glyphs: index = whole missed poll intervals, capped.
HEAT_GLYPHS = ("·", "▁", "▂", "▄", "▅", "▆", "▇", "█")

#: SLO objectives used when rendering burn from scraped
#: ``slo_events_total`` series (matches ``standard_slos``).
STANDARD_OBJECTIVES = {
    "attestation_freshness": 0.99,
    "poll_success": 0.995,
    "detection_latency": 0.95,
}


def sparkline(values: list[float], width: int = 32) -> str:
    """Render *values* as a fixed-width unicode sparkline.

    The series is resampled to *width* points (last value per cell);
    a flat series renders as a line of the lowest glyph.
    """
    if not values:
        return " " * width
    if len(values) > width:
        step = len(values) / width
        values = [values[min(int((i + 1) * step) - 1, len(values) - 1)]
                  for i in range(width)]
    low = min(values)
    high = max(values)
    span = high - low
    out = []
    for value in values:
        if span <= 0:
            out.append(SPARK_GLYPHS[0])
        else:
            index = int((value - low) / span * (len(SPARK_GLYPHS) - 1))
            out.append(SPARK_GLYPHS[index])
    return "".join(out).ljust(width)


def heat_row(ages: list[float | None], poll_interval: float) -> str:
    """Freshness glyphs for one agent: one cell per sampled instant.

    Each cell encodes the attestation age at that instant in whole
    missed poll intervals -- ``·`` fresh, darkening blocks as the gap
    grows, a space where the store holds no data yet.
    """
    cells = []
    for age in ages:
        if age is None:
            cells.append(" ")
            continue
        missed = int(age // poll_interval) if poll_interval > 0 else 0
        cells.append(HEAT_GLYPHS[min(missed, len(HEAT_GLYPHS) - 1)])
    return "".join(cells)


def _series_total(store: TsdbStore, name: str, at: float, **filters) -> float:
    """Sum of instants at *at* across matching series (0.0 when none)."""
    total = 0.0
    for series in store.select(name, **filters):
        value = series.instant(at)
        if value is not None:
            total += value
    return total


def _grouped_instants(
    store: TsdbStore, name: str, label: str, at: float
) -> dict[str, float]:
    """``{label_value: summed instant}`` across matching series."""
    out: dict[str, float] = {}
    for series in store.select(name):
        value = series.instant(at)
        if value is None:
            continue
        key = series.label(label) or ""
        out[key] = out.get(key, 0.0) + value
    return out


def slo_burn(
    store: TsdbStore,
    now: float,
    window: float = 86400.0,
    objectives: dict[str, float] | None = None,
) -> list[dict[str, Any]]:
    """Burn-rate summary per SLO from store history.

    Prefers the exact-time ``slo:{name}:total``/``:bad`` series a
    :class:`~repro.obs.rules.TsdbSloTracker` writes; falls back to the
    scrape-grid ``slo_events_total{slo,outcome}`` counters, which is
    what a federation hub sees from remote registries.
    """
    objectives = objectives or STANDARD_OBJECTIVES
    start = now - window
    out = []
    for name, objective in sorted(objectives.items()):
        total = store.increase(f"slo:{name}:total", None, start, now)
        bad = store.increase(f"slo:{name}:bad", None, start, now)
        if total <= 0:
            total = sum(
                series.increase(start, now)
                for series in store.select("slo_events_total", slo=name)
            )
            bad = sum(
                series.increase(start, now)
                for series in store.select(
                    "slo_events_total", slo=name, outcome="bad"
                )
            )
        if total <= 0:
            continue
        bad_fraction = bad / total
        burn = bad_fraction / (1.0 - objective)
        out.append({
            "slo": name,
            "objective": objective,
            "window": window,
            "total": int(round(total)),
            "bad": int(round(bad)),
            "burn_rate": round(burn, 3),
            "budget_remaining": round(1.0 - min(1.0, burn), 4),
        })
    return out


def _agent_heat(
    store: TsdbStore, now: float, poll_interval: float, width: int
) -> list[tuple[str, str, float | None]]:
    """``(agent, heat_glyphs, current_age)`` rows, worst-first."""
    span = width * poll_interval
    ticks = [now - span + (i + 1) * poll_interval for i in range(width)]
    by_agent: dict[str, list] = {}
    for series in store.select("obs_agent_attestation_age_seconds"):
        agent = series.label("agent")
        if agent is None:
            continue
        # Shards reuse agent ids; keep federated rows apart by source.
        origin = series.label("source")
        if origin:
            agent = f"{origin}/{agent}"
        by_agent.setdefault(agent, []).append(series)
    rows = []
    for agent, serieses in sorted(by_agent.items()):
        ages: list[float | None] = []
        for tick in ticks:
            best: float | None = None
            for series in serieses:
                value = series.instant(tick)
                if value is not None and (best is None or value > best):
                    best = value
            ages.append(best)
        rows.append((agent, heat_row(ages, poll_interval), ages[-1]))
    rows.sort(key=lambda row: -(row[2] if row[2] is not None else -1.0))
    return rows


def _series_max(store: TsdbStore, name: str, at: float) -> float | None:
    """Max instant at *at* across matching series (``None`` when none)."""
    best: float | None = None
    for series in store.select(name):
        value = series.instant(at)
        if value is not None and (best is None or value > best):
            best = value
    return best


def _saturation_panel(
    store: TsdbStore, now: float, span: float, width: int
) -> list[str]:
    """Verifier-load lines for :func:`render_top` (empty without data)."""
    ticks = _series_total(store, "fleet_ticks_total", now)
    if ticks <= 0:
        return []
    lines = ["  -- verifier load --"]
    points = store.range_values("fleet:utilization", None, now - span, now)
    values = [value for _, value in points]
    utilization = store.instant("fleet:utilization", None, now)
    if utilization is None and values:
        utilization = values[-1]
    current = f"{utilization:8.1%}" if utilization is not None else "      --"
    lines.append(f"  utilization  {sparkline(values, width)} {current}")
    overruns = _series_total(store, "fleet_tick_overruns_total", now)
    overrun_ratio = store.instant("fleet:tick_overrun_ratio", None, now)
    budget = _series_max(store, "fleet_tick_budget_seconds", now)
    saturated_sources = sum(
        1 for series in store.select("fleet_saturated")
        if (series.instant(now) or 0.0) >= 1.0
    )
    parts = [f"{int(overruns)} overruns/{int(ticks)} ticks"]
    if overrun_ratio is not None:
        parts.append(f"overrun_ratio={overrun_ratio:.1%}")
    if budget is not None:
        parts.append(f"budget={budget:.3f}s")
    if saturated_sources:
        parts.append(f"{saturated_sources} source(s) SATURATED")
    lines.append("  " + ", ".join(parts))
    shares = _grouped_instants(store, "fleet:stage_cost_share", "stage", now)
    total_share = sum(shares.values())
    if total_share > 0:
        # Summing across federated sources can exceed 1.0; renormalise
        # so the row always reads as a fleet-wide share.
        ranked = sorted(shares.items(), key=lambda item: -item[1])
        rendered = " ".join(
            f"{stage}={share / total_share:.0%}" for stage, share in ranked[:6]
        )
        lines.append(f"  stage cost share: {rendered}")
    return lines


def _shard_rows(store: TsdbStore, now: float) -> list[tuple[str, float, str]]:
    """``(shard, agents, host)`` rows from the shard gauges."""
    # Freshest series per shard, NOT a sum across label sets: after a
    # failover the dead member's stale per-source series would double
    # the shard with the adopter's live one.
    sizes: dict[str, float] = {}
    size_at: dict[str, float] = {}
    for series in store.select("fleet_shard_agents"):
        value = series.instant(now)
        shard = series.label("shard")
        if value is None or shard is None:
            continue
        last_at = series.raw[-1][0] if series.raw else float("-inf")
        if shard not in sizes or last_at > size_at[shard]:
            sizes[shard], size_at[shard] = value, last_at
    hosts: dict[str, tuple[float, str]] = {}
    for series in store.select("fleet_shard_hosted"):
        value = series.instant(now)
        shard = series.label("shard")
        host = series.label("host")
        if value is None or value < 1.0 or shard is None or host is None:
            continue
        # A dead member stops federating, so its pre-failover hosted=1
        # sample lingers in the store; the freshest sample is the
        # member actually answering for the shard now.
        last_at = series.raw[-1][0] if series.raw else float("-inf")
        if shard not in hosts or last_at > hosts[shard][0]:
            hosts[shard] = (last_at, host)
    return [
        (shard, count, hosts.get(shard, (0.0, shard))[1])
        for shard, count in sorted(sizes.items())
    ]


def _shard_panel(store: TsdbStore, now: float) -> list[str]:
    """Shard layout lines for :func:`render_top` (empty without data).

    One row per shard with its agent count and hosting member --
    adopted shards (host differs from the shard's home member) are
    flagged, since a lasting adoption means a verifier is still down.
    The header carries the ``fleet:shard_balance`` recording rule and
    the cumulative failover/migration counters.
    """
    rows = _shard_rows(store, now)
    if not rows:
        return []
    members = None
    member_instants = [
        value for series in store.select("fleet_shard_members")
        if (value := series.instant(now)) is not None
    ]
    if member_instants:
        # A gauge, not a counter: the freshest source wins (in a local
        # store there is exactly one series; federated, one per hub).
        members = member_instants[-1]
    balance = store.instant("fleet:shard_balance", None, now)
    failovers = _series_total(store, "fleet_shard_failovers_total", now)
    migrations = _series_total(store, "fleet_shard_migrations_total", now)
    header = f"  -- shards ({len(rows)})"
    if members is not None:
        header += f", {int(members)} live member(s)"
    if balance is not None:
        header += f", balance={balance:.2f}"
    header += " --"
    lines = [header]
    for shard, count, host in rows:
        marker = "" if host == shard else f"  host={host} (adopted)"
        lines.append(f"    {shard:<14s} {int(count):4d} agents{marker}")
    lines.append(
        f"    failovers={int(failovers)} migrations={int(migrations)}"
    )
    return lines


def _perf_series(store: TsdbStore) -> dict[tuple[str, str, str], dict]:
    """Perf-trajectory samples grouped by (bench, mode, metric).

    The ``perf:metric`` series are loaded by
    :func:`repro.obs.perf.trajectory_to_store` with the *run sequence*
    as their time axis, so the whole history is read (no ``now``
    cutoff -- run index and simulated seconds are different clocks).
    """
    groups: dict[tuple[str, str, str], dict] = {}
    for series in store.select("perf:metric"):
        bench = series.label("bench") or "?"
        metric = series.label("metric") or "?"
        mode = series.label("mode") or "?"
        values = [
            value for _, value in
            series.range_values(float("-inf"), float("inf"))
        ]
        if not values:
            continue
        groups[(bench, mode, metric)] = {
            "values": values,
            "unit": series.label("unit") or "",
            "better": series.label("better") or "lower",
        }
    return groups


def _perf_panel(
    store: TsdbStore, width: int, max_rows: int = 12
) -> list[str]:
    """Perf-trajectory lines for :func:`render_top` (empty without data)."""
    groups = _perf_series(store)
    if not groups:
        return []
    runs = max(len(group["values"]) for group in groups.values())
    lines = [f"  -- perf trajectory ({len(groups)} metric(s), "
             f"up to {runs} run(s)) --"]
    shown = sorted(groups.items())[:max_rows]
    label_width = max(
        len(f"{bench}/{metric}") for (bench, _, metric), _ in shown
    )
    for (bench, mode, metric), group in shown:
        values = group["values"]
        label = f"{bench}/{metric}"
        lines.append(
            f"    {label:<{label_width}s} [{mode:<5s}] "
            f"{sparkline(values, width)} {values[-1]:10.4g}{group['unit']}"
        )
    if len(groups) > max_rows:
        lines.append(f"    ... {len(groups) - max_rows} more metrics")
    return lines


def render_top(
    store: TsdbStore,
    now: float,
    staleness: dict[str, float | None] | None = None,
    poll_interval: float = 1800.0,
    width: int = 32,
    max_heat_rows: int = 12,
) -> str:
    """One full mission-control frame as console text."""
    lines = [
        f"== obs top @ t={now / 3600.0:.1f}h (day {now / 86400.0:.2f}) =="
    ]

    # Federation sources and their staleness.
    if staleness:
        parts = []
        for name, age in sorted(staleness.items()):
            if age is None:
                parts.append(f"{name}: never")
            elif age > 2 * poll_interval:
                parts.append(f"{name}: {age / 60.0:.0f}m STALE")
            else:
                parts.append(f"{name}: {age / 60.0:.0f}m")
        lines.append(f"  sources: {len(staleness)} federated [{', '.join(parts)}]")

    # Fleet rollup: nodes by verifier state, summed across sources.
    states = _grouped_instants(store, "fleet_nodes", "state", now)
    if states:
        total = sum(states.values())
        by_state = " ".join(
            f"{state}={int(count)}" for state, count in sorted(states.items())
        )
        quarantined = _series_total(store, "fleet_quarantined_nodes", now)
        lines.append(
            f"  fleet: {int(total)} nodes [{by_state}] "
            f"quarantined={int(quarantined)}"
        )
    gaps = _series_total(store, "fleet:coverage_gaps_active", now) or \
        _series_total(store, "obs_coverage_gaps_active", now)
    age_max = _series_total(store, "fleet:attestation_age_max", now)
    lines.append(
        f"  coverage: {int(gaps)} open gap(s), "
        f"oldest attestation {age_max / 3600.0:.1f}h"
    )

    # Trend sparklines from the recording-rule series.
    span = width * poll_interval
    for title, name, scale, unit in (
        ("poll rate", "fleet:poll_rate", 3600.0, "/h"),
        ("poll latency", "fleet:poll_latency_mean", 1000.0, "ms"),
    ):
        points = store.range_values(name, None, now - span, now)
        values = [value * scale for _, value in points]
        current = f"{values[-1]:8.2f}{unit}" if values else "      --"
        lines.append(f"  {title:<13s}{sparkline(values, width)} {current}")

    # Verifier load / saturation, from the capacity accounting series.
    lines.extend(_saturation_panel(store, now, span, width))

    # Shard layout (present once a multi-verifier fleet reports).
    lines.extend(_shard_panel(store, now))

    # SLO burn over the trailing day.
    burns = slo_burn(store, now, window=86400.0)
    if burns:
        lines.append("  -- SLO burn (trailing day) --")
        for burn in burns:
            marker = " !!" if burn["burn_rate"] >= 1.0 else ""
            lines.append(
                f"    {burn['slo']:<22s} burn={burn['burn_rate']:6.2f}x "
                f"bad={burn['bad']}/{burn['total']} "
                f"budget_left={burn['budget_remaining']:6.1%}{marker}"
            )

    # Chaos / degraded-mode counters (cumulative, all sources).
    faults = _grouped_instants(
        store, "transport_faults_injected_total", "kind", now
    )
    degraded = _series_total(store, "verifier_degraded_rounds_total", now)
    if faults or degraded:
        by_kind = " ".join(
            f"{kind}={int(count)}" for kind, count in sorted(faults.items())
        )
        lines.append(
            f"  chaos: {int(sum(faults.values()))} faults injected "
            f"[{by_kind}] degraded_rounds={int(degraded)}"
        )

    # Perf trajectory (present when a bench trajectory was loaded).
    lines.extend(_perf_panel(store, width))

    # Per-agent freshness heatmap, worst first.
    rows = _agent_heat(store, now, poll_interval, width)
    if rows:
        lines.append(
            f"  -- attestation freshness (last {span / 3600.0:.0f}h, "
            f"{poll_interval / 60.0:.0f}m cells; darker = staler) --"
        )
        for agent, heat, current in rows[:max_heat_rows]:
            age = f"{current / 3600.0:5.1f}h" if current is not None else "    --"
            lines.append(f"    {agent:<24s} {heat} {age}")
        if len(rows) > max_heat_rows:
            lines.append(f"    ... {len(rows) - max_heat_rows} more agents")

    stats = store.stats()
    lines.append(
        f"  tsdb: {stats['series']} series, {stats['samples']} samples "
        f"(budget {stats['budget']}), {stats['scrapes']} scrapes, "
        f"{stats['counter_resets']} counter resets"
    )
    return "\n".join(lines)


def top_frame_record(
    store: TsdbStore,
    now: float,
    staleness: dict[str, float | None] | None = None,
    poll_interval: float = 1800.0,
) -> dict[str, Any]:
    """The machine-readable twin of :func:`render_top` (``--jsonl``)."""
    states = _grouped_instants(store, "fleet_nodes", "state", now)
    faults = _grouped_instants(
        store, "transport_faults_injected_total", "kind", now
    )
    agents = {}
    for series in store.select("obs_agent_attestation_age_seconds"):
        agent = series.label("agent")
        value = series.instant(now)
        if agent is None or value is None:
            continue
        origin = series.label("source")
        if origin:
            agent = f"{origin}/{agent}"
        agents[agent] = max(value, agents.get(agent, 0.0))
    return {
        "type": "top_frame",
        "time": now,
        "sources": dict(staleness or {}),
        "fleet_nodes": {state: int(count) for state, count in states.items()},
        "quarantined": int(_series_total(store, "fleet_quarantined_nodes", now)),
        "coverage_gaps_active": int(
            _series_total(store, "fleet:coverage_gaps_active", now)
            or _series_total(store, "obs_coverage_gaps_active", now)
        ),
        "poll_rate_per_hour": (
            (store.instant("fleet:poll_rate", None, now) or 0.0) * 3600.0
        ),
        "poll_latency_mean_ms": (
            (store.instant("fleet:poll_latency_mean", None, now) or 0.0)
            * 1000.0
        ),
        "ticks_total": int(_series_total(store, "fleet_ticks_total", now)),
        "tick_overruns_total": int(
            _series_total(store, "fleet_tick_overruns_total", now)
        ),
        "utilization": store.instant("fleet:utilization", None, now),
        "tick_overrun_ratio": store.instant(
            "fleet:tick_overrun_ratio", None, now
        ),
        "stage_cost_share": _grouped_instants(
            store, "fleet:stage_cost_share", "stage", now
        ),
        "shards": {
            shard: {"agents": int(count), "host": host}
            for shard, count, host in _shard_rows(store, now)
        },
        "shard_balance": store.instant("fleet:shard_balance", None, now),
        "shard_failovers": int(
            _series_total(store, "fleet_shard_failovers_total", now)
        ),
        "shard_migrations": int(
            _series_total(store, "fleet_shard_migrations_total", now)
        ),
        "saturated_sources": sum(
            1 for series in store.select("fleet_saturated")
            if (series.instant(now) or 0.0) >= 1.0
        ),
        "slo_burn": slo_burn(store, now, window=86400.0),
        "chaos_faults": {kind: int(count) for kind, count in faults.items()},
        "degraded_rounds": int(
            _series_total(store, "verifier_degraded_rounds_total", now)
        ),
        "attestation_age_seconds": agents,
        "perf_trajectory": {
            f"{bench}/{metric}[{mode}]": {
                "last": group["values"][-1],
                "runs": len(group["values"]),
                "unit": group["unit"],
                "better": group["better"],
            }
            for (bench, mode, metric), group in
            sorted(_perf_series(store).items())
        },
        "tsdb": store.stats(),
    }
