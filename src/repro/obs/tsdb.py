"""An embedded ring-buffer time-series store for the telemetry layer.

Everything PRs 1-5 record is *point-in-time*: the metrics registry
holds one cumulative value per series, the health detectors keep their
own private sliding windows, and the fleet dashboard can only show the
instant it is looking at.  The paper's operational lesson cuts the
other way -- coverage gaps, policy-update storms and slow appraisal are
*trends*, visible only over time -- and the ROADMAP's scale-out arc
(sharded multi-verifier fleets) needs cross-process history before the
first shard exists.  This module is that substrate:

* :class:`TsdbStore` -- a bounded in-memory store of
  ``(name, labels)`` series.  A :class:`RegistryScraper` periodically
  samples a :class:`repro.obs.metrics.MetricsRegistry` into it
  (counters and gauges as raw values, histograms exploded into
  ``_count`` / ``_sum`` / per-``le`` ``_bucket`` series).
* **Resolution tiers under a fixed budget.**  Each series keeps a raw
  ring; samples evicted from it fold (``fold``-at-a-time, default 10x)
  into tier-1 frames, and tier-1 evictions fold again into tier-2
  (100x).  Per-series capacities are rebalanced from the store-wide
  ``max_samples`` budget as series appear, so a 66-day longrun stays
  bounded while remaining queryable at every resolution.
* **Counter-reset safety.**  A cumulative value going backwards
  (process restart, registry swap, federation source reboot) is
  detected at append time (``counter_resets`` and the
  ``obs_tsdb_counter_resets_total`` meta-counter) and again inside
  :meth:`Series.increase`, which restarts the extrapolation at the
  reset instead of emitting a giant negative spike -- the
  Prometheus-style adjustment.
* **Queries.**  ``instant`` (latest value at-or-before a time, any
  tier), ``range_values`` (stitched across tiers, oldest first),
  ``range_frames`` (uniform aggregate view for windowed math) and
  ``increase`` / ``rate`` with the reset guard.
* **Export/import.**  ``export_records()`` emits typed JSONL records
  (``tsdb_meta`` / ``tsdb_series``) and :meth:`TsdbStore.from_records`
  rebuilds an identical store, so ``repro-cli obs top --replay`` and
  ``obs report`` work post-hoc from a file.

Query semantics at downsampled resolution: a tier frame contributes one
point at its *end* time carrying the window's *last* value (exact for
cumulative counters; last-write for gauges); the frame itself keeps
``count/sum/min/max/first/last`` plus the reset-adjusted increase, so
windowed rules (:mod:`repro.obs.rules`) lose no counter mass to
downsampling.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from repro.common.errors import ConfigurationError

#: Default store-wide sample budget (raw samples + tier frames all
#: count as one slot each).  At the default 30-minute scrape cadence a
#: few hundred series fit a multi-month run comfortably.
DEFAULT_MAX_SAMPLES = 200_000

#: Samples folded into one frame at each downsampling step: raw -> 10x
#: (tier 1) -> 100x (tier 2).
DEFAULT_FOLD = 10

#: Floor on the per-series slot allowance; below this a series cannot
#: hold a meaningful window at any tier.
MIN_SERIES_SLOTS = 24

#: Series kinds the store distinguishes (reset detection applies to
#: counters only).
SERIES_KINDS = ("counter", "gauge")

#: Name of the meta-counter bumped on every detected counter reset.
COUNTER_RESETS_METRIC = "obs_tsdb_counter_resets_total"


def label_key(labels: dict[str, str] | None) -> tuple[tuple[str, str], ...]:
    """Canonical (sorted, stringified) form of a label mapping."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class Frame:
    """One downsampled window of a series.

    ``inc`` is the reset-adjusted increase across the folded points
    (0.0 for gauges); ``resets`` how many counter resets were folded
    in.  Together they let :meth:`Series.increase` stay exact across
    resolution tiers.
    """

    start: float
    end: float
    count: int
    v_sum: float
    v_min: float
    v_max: float
    v_first: float
    v_last: float
    inc: float = 0.0
    resets: int = 0

    @property
    def mean(self) -> float:
        """Arithmetic mean of the folded samples."""
        return self.v_sum / self.count if self.count else 0.0

    def to_list(self) -> list:
        """Compact list form for the JSONL export."""
        return [
            self.start, self.end, self.count, self.v_sum, self.v_min,
            self.v_max, self.v_first, self.v_last, self.inc, self.resets,
        ]

    @classmethod
    def from_list(cls, raw: list) -> "Frame":
        """Rebuild a frame from :meth:`to_list` output."""
        return cls(
            start=float(raw[0]), end=float(raw[1]), count=int(raw[2]),
            v_sum=float(raw[3]), v_min=float(raw[4]), v_max=float(raw[5]),
            v_first=float(raw[6]), v_last=float(raw[7]),
            inc=float(raw[8]), resets=int(raw[9]),
        )


def _fold_samples(samples: list[tuple[float, float]], kind: str) -> Frame:
    """Fold raw ``(t, value)`` samples into one frame."""
    values = [value for _, value in samples]
    inc = 0.0
    resets = 0
    if kind == "counter":
        for previous, current in zip(values, values[1:]):
            delta = current - previous
            if delta < 0:
                resets += 1
                delta = current
            inc += delta
    return Frame(
        start=samples[0][0], end=samples[-1][0], count=len(samples),
        v_sum=sum(values), v_min=min(values), v_max=max(values),
        v_first=values[0], v_last=values[-1], inc=inc, resets=resets,
    )


def _fold_frames(frames: list[Frame], kind: str) -> Frame:
    """Fold tier-N frames into one tier-(N+1) frame."""
    inc = 0.0
    resets = 0
    if kind == "counter":
        for previous, current in zip(frames, frames[1:]):
            delta = current.v_first - previous.v_last
            if delta < 0:
                resets += 1
                delta = current.v_first
            inc += delta
        inc += sum(frame.inc for frame in frames)
        resets += sum(frame.resets for frame in frames)
    return Frame(
        start=frames[0].start, end=frames[-1].end,
        count=sum(frame.count for frame in frames),
        v_sum=sum(frame.v_sum for frame in frames),
        v_min=min(frame.v_min for frame in frames),
        v_max=max(frame.v_max for frame in frames),
        v_first=frames[0].v_first, v_last=frames[-1].v_last,
        inc=inc, resets=resets,
    )


class Series:
    """One time-series: a raw ring plus two downsampled tiers."""

    __slots__ = (
        "name", "labels", "kind", "raw", "tier1", "tier2",
        "resets", "dropped_frames", "_store",
    )

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...],
                 kind: str, store: "TsdbStore") -> None:
        if kind not in SERIES_KINDS:
            raise ConfigurationError(
                f"series kind must be one of {SERIES_KINDS}, got {kind!r}"
            )
        self.name = name
        self.labels = labels
        self.kind = kind
        self.raw: deque[tuple[float, float]] = deque()
        self.tier1: deque[Frame] = deque()
        self.tier2: deque[Frame] = deque()
        self.resets = 0
        #: tier-2 frames evicted past the retention horizon.
        self.dropped_frames = 0
        self._store = store

    def __len__(self) -> int:
        return len(self.raw) + len(self.tier1) + len(self.tier2)

    def label(self, name: str) -> str | None:
        """The value of one label, or ``None``."""
        for key, value in self.labels:
            if key == name:
                return value
        return None

    @property
    def labels_dict(self) -> dict[str, str]:
        """Labels as a plain dict."""
        return dict(self.labels)

    def append(self, at: float, value: float) -> None:
        """Append one sample (monotonically increasing time expected)."""
        value = float(value)
        if self.raw and at < self.raw[-1][0]:
            # Out-of-order within a series: drop rather than corrupt the
            # ring (federation guards against this per source already).
            return
        if (
            self.kind == "counter"
            and self.raw
            and value < self.raw[-1][1]
        ):
            self.resets += 1
            self._store._on_counter_reset(self)
        self.raw.append((at, value))
        self.enforce()

    def enforce(self) -> None:
        """Fold rings down to the store's current per-series caps."""
        fold = self._store.fold
        raw_cap, t1_cap, t2_cap = self._store.series_caps()
        while len(self.raw) > raw_cap:
            if len(self.raw) < fold + 1:
                break
            batch = [self.raw.popleft() for _ in range(fold)]
            self.tier1.append(_fold_samples(batch, self.kind))
        while len(self.tier1) > t1_cap:
            if len(self.tier1) < fold + 1:
                break
            batch = [self.tier1.popleft() for _ in range(fold)]
            self.tier2.append(_fold_frames(batch, self.kind))
        while len(self.tier2) > t2_cap:
            self.tier2.popleft()
            self.dropped_frames += 1

    # -- point access ------------------------------------------------------

    def _points(self) -> Iterator[tuple[float, float, Frame | None]]:
        """All retained points, oldest first: ``(end_time, last_value,
        frame_or_None)``.  Frames surface as one point at their end."""
        for frame in self.tier2:
            yield frame.end, frame.v_last, frame
        for frame in self.tier1:
            yield frame.end, frame.v_last, frame
        for at, value in self.raw:
            yield at, value, None

    def instant(self, at: float | None = None) -> float | None:
        """Latest value at-or-before *at* (``None`` = newest overall).

        Resolution degrades gracefully: inside a downsampled window the
        answer is that window's last value.
        """
        if at is None:
            if self.raw:
                return self.raw[-1][1]
            for tier in (self.tier1, self.tier2):
                if tier:
                    return tier[-1].v_last
            return None
        # Fast path: the common "now" query lands in the raw ring.
        if self.raw and self.raw[0][0] <= at:
            times = [t for t, _ in self.raw]
            index = bisect_right(times, at) - 1
            return self.raw[index][1] if index >= 0 else None
        best: float | None = None
        for end, value, frame in self._points():
            start = frame.start if frame is not None else end
            if start > at:
                break
            best = value
        return best

    def instant_before(self, at: float) -> float | None:
        """Latest value *strictly* before *at* (window-base lookups)."""
        best: float | None = None
        for end, value, frame in self._points():
            if end >= at:
                # A frame straddling `at` still counts when it *started*
                # before: resolution-limited, but never skips history.
                if frame is not None and frame.start < at:
                    best = value
                break
            best = value
        return best

    def range_values(self, start: float, end: float) -> list[tuple[float, float]]:
        """``(t, value)`` points with ``start <= t <= end``, oldest first."""
        out = []
        for at, value, _frame in self._points():
            if at < start:
                continue
            if at > end:
                break
            out.append((at, value))
        return out

    def range_frames(self, start: float, end: float) -> list[Frame]:
        """Uniform aggregate view of the window (raw samples become
        single-sample frames), oldest first."""
        out: list[Frame] = []
        for at, value, frame in self._points():
            if at < start:
                continue
            if (frame.start if frame is not None else at) > end:
                break
            if frame is None:
                frame = Frame(
                    start=at, end=at, count=1, v_sum=value, v_min=value,
                    v_max=value, v_first=value, v_last=value,
                )
            out.append(frame)
        return out

    def increase(self, start: float, end: float) -> float:
        """Reset-adjusted counter increase over ``[start, end]``.

        The base is the latest point *strictly* before *start*, so a
        sample sitting exactly on the window edge contributes -- the
        same left-closed convention the SLO trackers use.  A value drop
        anywhere in the walk restarts the extrapolation window (the
        post-reset value counts as fresh increase) instead of producing
        a negative spike.
        """
        inc = 0.0
        previous: float | None = None
        for end_t, value, frame in self._points():
            frame_start = frame.start if frame is not None else end_t
            if end_t < start:
                previous = value
                continue
            if frame_start > end:
                break
            base = previous if previous is not None else 0.0
            first = frame.v_first if frame is not None else value
            delta = first - base
            if delta < 0:
                delta = first
            inc += delta
            if frame is not None:
                inc += frame.inc
            previous = value
        return inc

    def rate(self, window: float, at: float) -> float | None:
        """Per-second rate over the trailing *window* at *at*."""
        if window <= 0:
            raise ConfigurationError(f"rate window must be positive, got {window}")
        if not len(self):
            return None
        return self.increase(at - window, at) / window

    def to_record(self) -> dict[str, Any]:
        """One ``tsdb_series`` JSONL record."""
        return {
            "type": "tsdb_series",
            "name": self.name,
            "labels": self.labels_dict,
            "kind": self.kind,
            "resets": self.resets,
            "dropped_frames": self.dropped_frames,
            "raw": [[at, value] for at, value in self.raw],
            "t1": [frame.to_list() for frame in self.tier1],
            "t2": [frame.to_list() for frame in self.tier2],
        }


class TsdbStore:
    """Bounded multi-series store with store-wide budget rebalancing.

    *max_samples* is the total slot budget (raw samples and frames both
    count one); per-series caps are recomputed whenever a series is
    created, splitting each series' allowance roughly 1/2 raw, 1/4
    tier-1, 1/4 tier-2 -- with the 10x folds that yields a retention
    horizon of ``raw + 10*t1 + 100*t2`` scrape intervals per series.
    """

    def __init__(
        self,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        fold: int = DEFAULT_FOLD,
        on_counter_reset: Callable[["Series"], None] | None = None,
    ) -> None:
        if max_samples < MIN_SERIES_SLOTS:
            raise ConfigurationError(
                f"max_samples must be >= {MIN_SERIES_SLOTS}, got {max_samples}"
            )
        if fold < 2:
            raise ConfigurationError(f"fold must be >= 2, got {fold}")
        self.max_samples = max_samples
        self.fold = fold
        self.on_counter_reset = on_counter_reset
        self.counter_resets = 0
        self.scrapes = 0
        self.last_scrape_at: float | None = None
        self._series: dict[tuple[str, tuple[tuple[str, str], ...]], Series] = {}
        self._caps: tuple[int, int, int] | None = None

    def __len__(self) -> int:
        return len(self._series)

    # -- capacity ----------------------------------------------------------

    def series_caps(self) -> tuple[int, int, int]:
        """Current per-series ``(raw, tier1, tier2)`` caps."""
        if self._caps is None:
            per = max(MIN_SERIES_SLOTS, self.max_samples // max(1, len(self._series)))
            raw_cap = max(self.fold, per // 2)
            t1_cap = max(4, per // 4)
            t2_cap = max(4, per - raw_cap - t1_cap)
            self._caps = (raw_cap, t1_cap, t2_cap)
        return self._caps

    def total_samples(self) -> int:
        """Retained slots across every series (raw + frames)."""
        return sum(len(series) for series in self._series.values())

    def _on_counter_reset(self, series: Series) -> None:
        self.counter_resets += 1
        if self.on_counter_reset is not None:
            self.on_counter_reset(series)

    # -- writes ------------------------------------------------------------

    def append(
        self,
        name: str,
        labels: dict[str, str] | None,
        value: float,
        at: float,
        kind: str = "gauge",
    ) -> Series:
        """Append one sample, creating the series on first use."""
        key = (name, label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = Series(name, key[1], kind, self)
            self._series[key] = series
            # New series dilute everyone's allowance; recompute caps and
            # let each series fold down lazily on its next append.
            self._caps = None
        series.append(at, value)
        return series

    # -- reads -------------------------------------------------------------

    def series(self) -> list[Series]:
        """Every series, sorted by (name, labels)."""
        return [self._series[key] for key in sorted(self._series)]

    def names(self) -> list[str]:
        """Distinct series names, sorted."""
        return sorted({name for name, _ in self._series})

    def get_series(
        self, name: str, labels: dict[str, str] | None = None
    ) -> Series | None:
        """The exact (name, labels) series, or ``None``."""
        return self._series.get((name, label_key(labels)))

    def select(self, name: str, **label_filters: str) -> list[Series]:
        """Series named *name* whose labels contain every filter pair."""
        wanted = sorted((k, str(v)) for k, v in label_filters.items())
        out = []
        for (series_name, _), series in sorted(self._series.items()):
            if series_name != name:
                continue
            labels = series.labels_dict
            if all(labels.get(k) == v for k, v in wanted):
                out.append(series)
        return out

    def instant(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        at: float | None = None,
    ) -> float | None:
        """Instant query against one exact series (``None`` if absent)."""
        series = self.get_series(name, labels)
        return series.instant(at) if series is not None else None

    def range_values(
        self, name: str, labels: dict[str, str] | None, start: float, end: float
    ) -> list[tuple[float, float]]:
        """Range query against one exact series (empty if absent)."""
        series = self.get_series(name, labels)
        return series.range_values(start, end) if series is not None else []

    def increase(
        self, name: str, labels: dict[str, str] | None, start: float, end: float
    ) -> float:
        """Reset-adjusted increase over one exact series (0.0 if absent)."""
        series = self.get_series(name, labels)
        return series.increase(start, end) if series is not None else 0.0

    def rate(
        self, name: str, labels: dict[str, str] | None, window: float, at: float
    ) -> float | None:
        """Trailing-window rate over one exact series."""
        series = self.get_series(name, labels)
        return series.rate(window, at) if series is not None else None

    def time_span(self) -> tuple[float, float] | None:
        """Oldest and newest retained sample times across the store."""
        oldest: float | None = None
        newest: float | None = None
        for series in self._series.values():
            for end_t, _value, frame in series._points():
                start_t = frame.start if frame is not None else end_t
                oldest = start_t if oldest is None else min(oldest, start_t)
                break
            if series.raw:
                candidate = series.raw[-1][0]
            elif series.tier1:
                candidate = series.tier1[-1].end
            elif series.tier2:
                candidate = series.tier2[-1].end
            else:
                continue
            newest = candidate if newest is None else max(newest, candidate)
        if oldest is None or newest is None:
            return None
        return oldest, newest

    def stats(self) -> dict[str, Any]:
        """Store roll-up for dashboards and ``obs report``."""
        raw_cap, t1_cap, t2_cap = self.series_caps()
        return {
            "series": len(self._series),
            "samples": self.total_samples(),
            "budget": self.max_samples,
            "caps": {"raw": raw_cap, "tier1": t1_cap, "tier2": t2_cap},
            "scrapes": self.scrapes,
            "counter_resets": self.counter_resets,
            "dropped_frames": sum(
                series.dropped_frames for series in self._series.values()
            ),
        }

    # -- persistence -------------------------------------------------------

    def export_records(self) -> Iterator[dict[str, Any]]:
        """Typed JSONL records: one ``tsdb_meta`` then every series."""
        yield {
            "type": "tsdb_meta",
            "max_samples": self.max_samples,
            "fold": self.fold,
            "scrapes": self.scrapes,
            "counter_resets": self.counter_resets,
            "last_scrape_at": self.last_scrape_at,
        }
        for series in self.series():
            yield series.to_record()

    @classmethod
    def from_records(cls, records: Iterable[dict[str, Any]]) -> "TsdbStore":
        """Rebuild a store from :meth:`export_records` output.

        Non-TSDB records (a full ``obs top --jsonl`` export mixes in
        metrics, spans, frames) are skipped, so the whole export file
        can be fed straight in.
        """
        store: "TsdbStore" | None = None
        pending: list[dict[str, Any]] = []

        def _restore(into: "TsdbStore", record: dict[str, Any]) -> None:
            key = (record["name"], label_key(record.get("labels")))
            series = Series(key[0], key[1], record.get("kind", "gauge"), into)
            series.resets = int(record.get("resets", 0))
            series.dropped_frames = int(record.get("dropped_frames", 0))
            series.raw = deque(
                (float(at), float(value)) for at, value in record.get("raw", ())
            )
            series.tier1 = deque(
                Frame.from_list(raw) for raw in record.get("t1", ())
            )
            series.tier2 = deque(
                Frame.from_list(raw) for raw in record.get("t2", ())
            )
            into._series[key] = series

        for record in records:
            kind = record.get("type")
            if kind == "tsdb_meta":
                store = cls(
                    max_samples=int(record.get("max_samples", DEFAULT_MAX_SAMPLES)),
                    fold=int(record.get("fold", DEFAULT_FOLD)),
                )
                store.scrapes = int(record.get("scrapes", 0))
                store.counter_resets = int(record.get("counter_resets", 0))
                store.last_scrape_at = record.get("last_scrape_at")
            elif kind == "tsdb_series":
                if store is None:
                    pending.append(record)
                else:
                    _restore(store, record)
        if store is None:
            store = cls()
        for record in pending:
            _restore(store, record)
        store._caps = None
        return store


def format_le(bound: float) -> str:
    """The ``le`` label value for a bucket bound (Prometheus style)."""
    if bound == float("inf"):
        return "+Inf"
    if float(bound).is_integer():
        return str(int(bound))
    return repr(float(bound))


class RegistryScraper:
    """Samples a :class:`MetricsRegistry` into a :class:`TsdbStore`.

    Counters and gauges map 1:1 onto series; histograms explode into
    ``{name}_count`` / ``{name}_sum`` (cumulative counters) plus one
    ``{name}_bucket{le=...}`` counter per bound.  The registry's
    label-cardinality ``_overflow`` cell is just another label-set, so
    it maps to exactly one series per family no matter how many
    label-sets collapsed into it.  Per-family overflow counts are
    scraped as ``telemetry_label_sets_overflowed_total{metric=...}``.

    *extra_labels* (e.g. ``{"source": "shard-0"}``) are attached to
    every scraped series -- the federation hub uses this to keep N
    registries' series apart in one store.
    """

    def __init__(
        self,
        store: TsdbStore,
        extra_labels: dict[str, str] | None = None,
        scrape_buckets: bool = True,
    ) -> None:
        self.store = store
        self.extra_labels = dict(extra_labels or {})
        self.scrape_buckets = scrape_buckets

    def _labels(self, labels: dict[str, str]) -> dict[str, str]:
        if not self.extra_labels:
            return labels
        merged = dict(labels)
        merged.update(self.extra_labels)
        return merged

    def scrape(self, registry, at: float) -> int:
        """One scrape pass; returns the number of samples appended."""
        appended = 0
        store = self.store
        for family in registry.families():
            for labels, child in family.samples():
                labels = self._labels(labels)
                if family.kind == "histogram":
                    store.append(
                        f"{family.name}_count", labels, child.count, at,
                        kind="counter",
                    )
                    store.append(
                        f"{family.name}_sum", labels, child.sum, at,
                        kind="counter",
                    )
                    appended += 2
                    if self.scrape_buckets:
                        for bound, cumulative in child.cumulative_buckets():
                            bucket_labels = dict(labels)
                            bucket_labels["le"] = format_le(bound)
                            store.append(
                                f"{family.name}_bucket", bucket_labels,
                                cumulative, at, kind="counter",
                            )
                            appended += 1
                else:
                    store.append(
                        family.name, labels, child.value, at, kind=family.kind,
                    )
                    appended += 1
        for metric, count in sorted(registry.label_overflow().items()):
            store.append(
                "telemetry_label_sets_overflowed_total",
                self._labels({"metric": metric}), count, at, kind="counter",
            )
            appended += 1
        store.scrapes += 1
        store.last_scrape_at = at
        return appended


def meta_registry_reset_hook(registry) -> Callable[[Series], None]:
    """An ``on_counter_reset`` hook that bumps the meta-counter.

    Wire it as ``TsdbStore(on_counter_reset=meta_registry_reset_hook(
    registry))`` so every detected reset is itself observable (and, one
    scrape later, historical).
    """
    def _hook(series: Series) -> None:
        registry.counter(
            COUNTER_RESETS_METRIC,
            "Counter resets detected by the TSDB scraper",
            ("metric",),
        ).labels(metric=series.name).inc()

    return _hook
