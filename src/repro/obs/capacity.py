"""Tick-budget accounting, saturation detection and capacity planning.

The paper's central operational tension: continuous attestation must
keep every node's freshness window bounded while the verifier's
per-round cost grows with fleet size and log length.  The moment one
batch tick costs more than the poll interval it is supposed to fit in,
freshness guarantees quietly start slipping fleet-wide -- the most
important verifier failure mode that is *not* an integrity failure.
This module makes that headroom a first-class measured quantity:

* :class:`TickBudgetAccountant` -- per-tick cost accounting for the
  fleet's batch scheduler.  Each ``poll_batch`` tick reports its wall
  cost; the accountant folds in the chaos layer's injected wire delays
  (simulated seconds -- the rounds of a batch run back-to-back, so
  injected latency serialises), compares busy time against the
  configured **tick budget**, and maintains utilization, queue depth,
  inter-tick lag and a consecutive-overrun saturation state that emits
  ``fleet.saturated`` / ``fleet.saturation_cleared`` events.
* :class:`SaturationDetector` -- the health-monitor side.  Mirrors the
  anti-P2 coverage-gap shape: it signals a ``health.verifier_saturated``
  alert every monitor tick while the fleet-side accountant reports
  saturation, so the alert engine dedups/resolves it and the incident
  correlator builds a forensic report the moment it first fires.
* :class:`CapacityModel` / :func:`fit_capacity` -- least-squares fit of
  per-tick busy cost against polled-node count (``fixed + per_node *
  n``), answering the what-ifs: max sustainable nodes per verifier at a
  poll interval, projected verified nodes/sec at N verifiers, time to
  saturation under fleet growth, verifiers needed for a target fleet.
* :func:`capacity_pairs_from_store` / :func:`model_from_store` -- the
  same fit driven from TSDB history (live store or ``--replay`` of a
  JSONL export), using the reset-adjusted counter increases between
  scrape points, per federation source.

Utilization is ``busy / budget`` and an overrun is ``busy > budget``,
so by construction a tick without an overrun has utilization in
``[0, 1]`` -- the invariant the property suite pins down.

Metric families written by the accountant (all under the active
registry, so they scrape into the TSDB and federate like everything
else):

========================================  =======================================
``fleet_ticks_total``                     batch ticks observed (counter)
``fleet_tick_overruns_total``             ticks whose busy time exceeded budget
``fleet_timer_overruns_total{timer}``     the same, attributed per scheduler timer
``fleet_tick_busy_seconds_total``         cumulative busy seconds (wall + delays)
``fleet_tick_budget_seconds_total``       cumulative budget seconds
``fleet_polled_agents_total``             agents actually polled across ticks
``fleet_tick_wall_seconds``               per-tick wall histogram
``fleet_tick_lag_seconds``                inter-tick lag beyond the interval
``fleet_tick_utilization``                busy/budget gauge (last tick)
``fleet_tick_budget_seconds``             configured budget gauge
``fleet_tick_queue_depth{phase}``         registered / polled / skipped gauges
``fleet_saturated``                       1 while consecutive overruns persist
========================================  =======================================
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.alerts import Alert

#: Consecutive overrunning ticks before the accountant declares saturation.
DEFAULT_OVERRUN_TICKS = 3

#: Source tag for accountant-emitted events.
CAPACITY_EVENT_SOURCE = "keylime.fleet"


@dataclass(frozen=True)
class TickRecord:
    """One batch tick, fully accounted."""

    at: float
    wall_seconds: float
    delay_seconds: float
    busy_seconds: float
    budget: float | None
    registered: int
    polled: int
    skipped: int
    lag_seconds: float
    utilization: float | None
    overrun: bool
    stage_seconds: dict[str, float] = field(default_factory=dict)


class TickBudgetAccountant:
    """Accounts every batch tick against a configured tick budget.

    The scheduler's poll interval is *simulated* seconds while the tick
    cost is *wall* seconds, so the budget is independently
    configurable: production-shaped runs set ``budget == interval``
    (saturation means "cannot keep the advertised cadence"), while
    tests and benchmarks set a millisecond-scale budget so the knee is
    reachable without simulating a planet-sized fleet.  Injected chaos
    delays (``transport_injected_delay_seconds``) are folded into busy
    time -- a batch runs its rounds back-to-back, so modeled wire
    latency serialises and eats tick budget exactly like compute does.
    """

    def __init__(
        self,
        budget: float | None = None,
        interval: float | None = None,
        overrun_ticks: int = DEFAULT_OVERRUN_TICKS,
        events=None,
        timer: str = "fleet-poll-batch",
        max_records: int = 4096,
    ) -> None:
        if budget is not None and budget <= 0:
            raise ValueError(f"tick budget must be positive, got {budget}")
        self.budget = budget
        self.interval = interval
        self.overrun_ticks = max(1, int(overrun_ticks))
        self.events = events
        self.timer = timer
        self.enabled = True
        self.records: deque[TickRecord] = deque(maxlen=max_records)
        self.ticks = 0
        self.overruns = 0
        self.consecutive_overruns = 0
        self.saturated_since: float | None = None
        #: Wall seconds spent inside :meth:`observe_tick` itself -- the
        #: direct overhead measurement the acceptance gate divides by.
        self.self_wall_seconds = 0.0
        self._last_at: float | None = None
        self._delay_seen = 0.0
        self._stage_seen: dict[str, float] = {}

    def configure(
        self,
        interval: float | None = None,
        budget: float | None = None,
        timer: str | None = None,
    ) -> None:
        """Bind the accountant to a timer's cadence.

        The budget defaults to the interval when not set explicitly --
        "one tick must fit in one interval" is the production meaning
        of saturation.
        """
        if interval is not None:
            self.interval = interval
        if budget is not None:
            if budget <= 0:
                raise ValueError(f"tick budget must be positive, got {budget}")
            self.budget = budget
        elif self.budget is None and self.interval is not None:
            self.budget = self.interval
        if timer is not None:
            self.timer = timer

    @property
    def saturated(self) -> bool:
        """Whether the consecutive-overrun detector is currently firing."""
        return self.saturated_since is not None

    def _injected_delay_delta(self, registry) -> float:
        """New injected-delay seconds since the previous tick."""
        family = registry.get("transport_injected_delay_seconds")
        if family is None:
            return 0.0
        total = sum(child.sum for _, child in family.samples())
        delta = total - self._delay_seen
        self._delay_seen = total
        return max(0.0, delta)

    def _stage_deltas(self, registry) -> dict[str, float]:
        """Per-stage pipeline wall seconds attributed to this tick."""
        family = registry.get("verifier_stage_wall_seconds")
        if family is None:
            return {}
        deltas: dict[str, float] = {}
        for labels, child in family.samples():
            stage = labels.get("stage", "?")
            delta = child.sum - self._stage_seen.get(stage, 0.0)
            self._stage_seen[stage] = child.sum
            if delta > 0.0:
                deltas[stage] = delta
        return deltas

    def observe_tick(
        self,
        now: float,
        wall_seconds: float,
        registered: int,
        polled: int,
        skipped: int = 0,
        registry=None,
        injected_delay_seconds: float | None = None,
    ) -> TickRecord | None:
        """Account one batch tick; returns the record (``None`` if off).

        *injected_delay_seconds* overrides the registry-sampled chaos
        delay delta (tests drive the accountant without a registry).
        """
        if not self.enabled:
            return None
        from time import perf_counter

        self_start = perf_counter()
        if registry is None:
            from repro.obs import runtime as obs_runtime

            registry = obs_runtime.get().registry
        if injected_delay_seconds is None:
            delay = self._injected_delay_delta(registry)
        else:
            delay = max(0.0, float(injected_delay_seconds))
        wall = max(0.0, float(wall_seconds))
        busy = wall + delay
        budget = self.budget
        utilization = busy / budget if budget else None
        overrun = budget is not None and busy > budget
        lag = 0.0
        if self._last_at is not None and self.interval:
            lag = max(0.0, (now - self._last_at) - self.interval)
        self._last_at = now
        stage_seconds = self._stage_deltas(registry)

        record = TickRecord(
            at=now, wall_seconds=wall, delay_seconds=delay,
            busy_seconds=busy, budget=budget, registered=registered,
            polled=polled, skipped=skipped, lag_seconds=lag,
            utilization=utilization, overrun=overrun,
            stage_seconds=stage_seconds,
        )
        self.records.append(record)
        self.ticks += 1

        registry.counter(
            "fleet_ticks_total", "Fleet batch ticks accounted",
        ).inc()
        registry.counter(
            "fleet_tick_busy_seconds_total",
            "Cumulative busy seconds across batch ticks (wall + injected delay)",
        ).inc(busy)
        registry.counter(
            "fleet_polled_agents_total",
            "Agents polled across fleet batch ticks",
        ).inc(polled)
        registry.histogram(
            "fleet_tick_wall_seconds",
            "Wall-clock cost of one fleet batch tick",
        ).observe(wall)
        registry.histogram(
            "fleet_tick_lag_seconds",
            "Inter-tick lag beyond the configured interval",
        ).observe(lag)
        depth = registry.gauge(
            "fleet_tick_queue_depth",
            "Batch queue depth at the last tick, by phase",
            ("phase",),
        )
        depth.labels(phase="registered").set(registered)
        depth.labels(phase="polled").set(polled)
        depth.labels(phase="skipped").set(skipped)
        if budget is not None:
            registry.counter(
                "fleet_tick_budget_seconds_total",
                "Cumulative tick budget granted across batch ticks",
            ).inc(budget)
            registry.gauge(
                "fleet_tick_budget_seconds", "Configured tick budget",
            ).set(budget)
            registry.gauge(
                "fleet_tick_utilization",
                "busy/budget utilization of the last batch tick",
            ).set(utilization)
        if overrun:
            self.overruns += 1
            self.consecutive_overruns += 1
            registry.counter(
                "fleet_tick_overruns_total",
                "Batch ticks whose busy time exceeded the tick budget",
            ).inc()
            registry.counter(
                "fleet_timer_overruns_total",
                "Tick-budget overruns attributed per scheduler timer",
                ("timer",),
            ).labels(timer=self.timer).inc()
            if (
                self.consecutive_overruns >= self.overrun_ticks
                and self.saturated_since is None
            ):
                self.saturated_since = now
                registry.gauge(
                    "fleet_saturated",
                    "1 while the consecutive-overrun saturation detector fires",
                ).set(1)
                if self.events is not None:
                    self.events.emit(
                        now, CAPACITY_EVENT_SOURCE, "fleet.saturated",
                        timer=self.timer,
                        budget=budget,
                        busy_seconds=round(busy, 6),
                        utilization=round(utilization, 4),
                        consecutive_overruns=self.consecutive_overruns,
                        registered=registered,
                    )
        else:
            self.consecutive_overruns = 0
            if self.saturated_since is not None:
                since = self.saturated_since
                self.saturated_since = None
                registry.gauge(
                    "fleet_saturated",
                    "1 while the consecutive-overrun saturation detector fires",
                ).set(0)
                if self.events is not None:
                    self.events.emit(
                        now, CAPACITY_EVENT_SOURCE, "fleet.saturation_cleared",
                        timer=self.timer, saturated_seconds=now - since,
                    )
        self.self_wall_seconds += perf_counter() - self_start
        return record

    def pairs(self) -> list[tuple[float, float]]:
        """``(polled_nodes, busy_seconds)`` per retained tick."""
        return [
            (float(record.polled), record.busy_seconds)
            for record in self.records
        ]

    def model(self) -> "CapacityModel | None":
        """Fit the per-node cost model from the retained ticks."""
        return fit_capacity(self.pairs())

    def stage_share(self) -> dict[str, float]:
        """Fraction of accounted stage cost per pipeline stage."""
        totals: dict[str, float] = {}
        for record in self.records:
            for stage, seconds in record.stage_seconds.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        grand = sum(totals.values())
        if grand <= 0:
            return {}
        return {stage: value / grand for stage, value in totals.items()}


class SaturationDetector:
    """Signals a saturation alert while the accountant reports one.

    Follows the coverage-gap detector's contract: :meth:`observe`
    returns an alert on *every* monitor tick the condition holds and
    ``None`` once it clears, so :class:`repro.obs.alerts.AlertEngine`
    keeps one firing state and emits the resolve -- the same shape as
    the anti-P2 alarm, and it correlates into incidents identically.
    """

    rule = "health.verifier_saturated"

    def observe(
        self,
        now: float,
        saturated: bool,
        utilization: float | None = None,
        overruns: float = 0.0,
        ticks: float = 0.0,
        budget: float | None = None,
    ) -> Alert | None:
        """One monitor tick's view of the accountant state."""
        if not saturated:
            return None
        util = f" at {utilization:.0%} utilization" if utilization else ""
        detail: dict[str, Any] = {
            "utilization": round(utilization, 4) if utilization else None,
            "overruns_in_window": int(round(overruns)),
            "ticks_in_window": int(round(ticks)),
        }
        if budget is not None:
            detail["budget_seconds"] = budget
        return Alert(
            time=now,
            rule=self.rule,
            severity="critical",
            message=(
                "verifier saturated: batch ticks exceeding their budget"
                f"{util} "
                f"({int(round(overruns))}/{int(round(ticks))} ticks overran "
                "since the last check)"
            ),
            detail=detail,
        )


# ---------------------------------------------------------------------------
# Capacity model + planner
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CapacityModel:
    """``busy(n) = fixed_seconds + per_node_seconds * n`` per tick."""

    fixed_seconds: float
    per_node_seconds: float
    samples: int
    r_squared: float

    def tick_cost(self, nodes: float) -> float:
        """Projected busy seconds for one tick over *nodes* nodes."""
        return self.fixed_seconds + self.per_node_seconds * nodes

    def utilization(self, nodes: float, budget: float) -> float:
        """Projected busy/budget utilization."""
        return self.tick_cost(nodes) / budget

    def max_nodes(self, budget: float) -> float:
        """Max nodes one verifier sustains inside *budget* per tick."""
        if budget <= self.fixed_seconds:
            return 0.0
        if self.per_node_seconds <= 0:
            return math.inf
        return (budget - self.fixed_seconds) / self.per_node_seconds

    def nodes_per_second(self, interval: float, verifiers: int = 1) -> float:
        """Attested nodes/sec at full utilization across *verifiers*."""
        capacity = self.max_nodes(interval)
        if math.isinf(capacity):
            return math.inf
        return verifiers * capacity / interval

    def verifiers_needed(
        self, nodes: float, interval: float, headroom: float = 0.8
    ) -> int:
        """Verifiers needed for *nodes* at *headroom* target utilization."""
        per_verifier = self.max_nodes(interval) * headroom
        if per_verifier <= 0:
            return 0 if nodes <= 0 else 10**9
        if math.isinf(per_verifier):
            return 1
        return max(1, math.ceil(nodes / per_verifier))

    def time_to_saturation(
        self,
        current_nodes: float,
        growth_per_day: float,
        interval: float,
        verifiers: int = 1,
    ) -> float:
        """Days until the fleet outgrows *verifiers*; ``inf`` if never."""
        capacity = verifiers * self.max_nodes(interval)
        if current_nodes >= capacity:
            return 0.0
        if growth_per_day <= 0 or math.isinf(capacity):
            return math.inf
        return (capacity - current_nodes) / growth_per_day

    # -- sharded what-ifs --------------------------------------------------

    def sharded_tick_cost(self, shard_sizes: Iterable[float]) -> float:
        """One sharded tick's critical path: the largest shard's cost.

        Shard verifiers run concurrently, so the tick is as slow as its
        biggest shard -- the quantity ``fleet:shard_balance`` discounts.
        Accepts either bare sizes or a ``{shard: size}`` mapping (the
        shape :meth:`repro.keylime.fleet.VerifierFleet.shard_sizes`
        returns).
        """
        if hasattr(shard_sizes, "values"):
            shard_sizes = shard_sizes.values()
        sizes = list(shard_sizes)
        if not sizes:
            return 0.0
        return self.tick_cost(max(sizes))

    def sharded_max_nodes(
        self, budget: float, verifiers: int, balance: float = 1.0
    ) -> float:
        """Max fleet size *verifiers* shards sustain inside *budget*.

        *balance* is the ring's mean-over-max occupancy (from
        :func:`repro.keylime.sharding.shard_balance` or the
        ``fleet:shard_balance`` series): with balance ``b`` the largest
        shard holds ``nodes / (verifiers * b)``, so capacity scales by
        ``verifiers * b``, not ``verifiers``.
        """
        if verifiers < 1 or balance <= 0:
            return 0.0
        return self.max_nodes(budget) * verifiers * min(1.0, balance)

    def sharded_speedup(self, verifiers: int, balance: float = 1.0) -> float:
        """Projected throughput multiple over a single verifier."""
        if verifiers < 1 or balance <= 0:
            return 0.0
        return verifiers * min(1.0, balance)


def fit_capacity(
    pairs: Iterable[tuple[float, float]]
) -> CapacityModel | None:
    """Least-squares fit of ``(nodes, busy_seconds)`` tick samples.

    Degenerate inputs degrade gracefully: a single node count cannot
    separate fixed from marginal cost, so everything is attributed to
    the marginal term (the conservative choice for ``max_nodes``).
    Returns ``None`` with no samples at all.
    """
    points = [(float(n), float(busy)) for n, busy in pairs]
    if not points:
        return None
    count = len(points)
    sx = sum(n for n, _ in points)
    sy = sum(busy for _, busy in points)
    sxx = sum(n * n for n, _ in points)
    sxy = sum(n * busy for n, busy in points)
    denom = count * sxx - sx * sx
    if abs(denom) < 1e-12:
        mean_n = sx / count
        slope = (sy / count) / mean_n if mean_n > 0 else 0.0
        intercept = 0.0
    else:
        slope = (count * sxy - sx * sy) / denom
        intercept = (sy - slope * sx) / count
        if intercept < 0.0:
            # Negative fixed cost is measurement noise; refit through
            # the origin so projections stay physical.
            intercept = 0.0
            slope = sxy / sxx if sxx > 0 else 0.0
    slope = max(0.0, slope)
    if slope < 1e-15:
        # Sub-femtosecond per-node cost is float noise from a constant
        # fit; snap to zero so max_nodes reports "unbounded" cleanly.
        slope = 0.0
    mean_y = sy / count
    ss_tot = sum((busy - mean_y) ** 2 for _, busy in points)
    ss_res = sum(
        (busy - (intercept + slope * n)) ** 2 for n, busy in points
    )
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return CapacityModel(
        fixed_seconds=intercept,
        per_node_seconds=slope,
        samples=count,
        r_squared=max(0.0, min(1.0, r_squared)),
    )


def capacity_pairs_from_store(
    store, start: float = -math.inf, end: float = math.inf
) -> list[tuple[float, float]]:
    """``(nodes/tick, busy_seconds/tick)`` pairs from TSDB history.

    Walks the scrape points of each federation source's
    ``fleet_ticks_total`` series and takes reset-adjusted increases of
    the polled-agents and busy-seconds counters between consecutive
    scrapes -- so the fit runs identically on a live store and on a
    ``--replay`` of a JSONL export.
    """
    pairs: list[tuple[float, float]] = []
    for ticks_series in store.select("fleet_ticks_total"):
        source = ticks_series.label("source")
        filters = {"source": source} if source else {}
        polled = store.select("fleet_polled_agents_total", **filters)
        busy = store.select("fleet_tick_busy_seconds_total", **filters)
        if not polled or not busy:
            continue
        polled_series, busy_series = polled[0], busy[0]
        stamps = [
            at for at, _ in ticks_series.range_values(start, end)
        ]

        def delta(series, t0: float, t1: float) -> float:
            # Instants, not `increase`: that window is left-closed, so
            # it would double-count the sample sitting exactly on t0.
            v0 = series.instant(t0) or 0.0
            v1 = series.instant(t1) or 0.0
            # A drop is a counter reset; the post-reset value is all
            # fresh increase.
            return v1 if v1 < v0 else v1 - v0

        for t0, t1 in zip(stamps, stamps[1:]):
            d_ticks = delta(ticks_series, t0, t1)
            if d_ticks <= 0:
                continue
            d_polled = delta(polled_series, t0, t1)
            d_busy = delta(busy_series, t0, t1)
            pairs.append((d_polled / d_ticks, d_busy / d_ticks))
    return pairs


def model_from_store(
    store, start: float = -math.inf, end: float = math.inf
) -> CapacityModel | None:
    """Fit the capacity model from a store's scraped tick counters."""
    return fit_capacity(capacity_pairs_from_store(store, start, end))


@dataclass(frozen=True)
class CapacityPlan:
    """The planner's answers for one what-if configuration."""

    model: CapacityModel
    interval: float
    verifiers: int
    current_nodes: float
    growth_per_day: float
    max_nodes_per_verifier: float
    fleet_capacity: float
    nodes_per_second: float
    utilization_now: float | None
    days_to_saturation: float
    verifiers_needed: int | None

    def to_record(self) -> dict[str, Any]:
        """Machine-readable summary (``--json-summary``)."""
        def finite(value: float) -> float | None:
            return None if math.isinf(value) else round(value, 4)

        return {
            "type": "capacity_plan",
            "fixed_seconds": round(self.model.fixed_seconds, 6),
            "per_node_seconds": round(self.model.per_node_seconds, 6),
            "r_squared": round(self.model.r_squared, 4),
            "samples": self.model.samples,
            "interval": self.interval,
            "verifiers": self.verifiers,
            "current_nodes": self.current_nodes,
            "growth_per_day": self.growth_per_day,
            "max_nodes_per_verifier": finite(self.max_nodes_per_verifier),
            "fleet_capacity": finite(self.fleet_capacity),
            "nodes_per_second": finite(self.nodes_per_second),
            "utilization_now": (
                round(self.utilization_now, 4)
                if self.utilization_now is not None else None
            ),
            "days_to_saturation": finite(self.days_to_saturation),
            "verifiers_needed": self.verifiers_needed,
        }


def plan_capacity(
    model: CapacityModel,
    interval: float,
    verifiers: int = 1,
    current_nodes: float = 0.0,
    growth_per_day: float = 0.0,
    target_nodes: float | None = None,
) -> CapacityPlan:
    """Answer the standard what-ifs for one configuration."""
    per_verifier = model.max_nodes(interval)
    capacity = per_verifier * verifiers
    utilization = None
    if current_nodes > 0 and verifiers > 0:
        utilization = model.utilization(current_nodes / verifiers, interval)
    return CapacityPlan(
        model=model,
        interval=interval,
        verifiers=verifiers,
        current_nodes=current_nodes,
        growth_per_day=growth_per_day,
        max_nodes_per_verifier=per_verifier,
        fleet_capacity=capacity,
        nodes_per_second=model.nodes_per_second(interval, verifiers),
        utilization_now=utilization,
        days_to_saturation=model.time_to_saturation(
            current_nodes, growth_per_day, interval, verifiers
        ),
        verifiers_needed=(
            model.verifiers_needed(target_nodes, interval)
            if target_nodes is not None else None
        ),
    )


def render_capacity_plan(plan: CapacityPlan) -> str:
    """Console rendering of one :class:`CapacityPlan`."""
    model = plan.model

    def fmt(value: float, suffix: str = "") -> str:
        if math.isinf(value):
            return "unbounded"
        return f"{value:,.1f}{suffix}"

    def fmt_seconds(value: float) -> str:
        if value < 1.0:
            return f"{value * 1000:.1f}ms"
        return f"{value:,.1f}s"

    lines = [
        "== capacity plan ==",
        (
            f"  model: busy(n) = {model.fixed_seconds * 1000:.3f}ms "
            f"+ {model.per_node_seconds * 1000:.3f}ms/node "
            f"(r2={model.r_squared:.3f}, {model.samples} tick samples)"
        ),
        (
            f"  max sustainable nodes/verifier @ {fmt_seconds(plan.interval)} "
            f"interval: {fmt(plan.max_nodes_per_verifier)}"
        ),
        (
            f"  fleet capacity @ {plan.verifiers} verifier(s): "
            f"{fmt(plan.fleet_capacity)} nodes "
            f"({fmt(plan.nodes_per_second, ' nodes/sec')} attested)"
        ),
    ]
    if plan.utilization_now is not None:
        lines.append(
            f"  projected utilization at {plan.current_nodes:.0f} "
            f"current node(s): {plan.utilization_now:.1%}"
        )
    if plan.growth_per_day > 0 or plan.current_nodes > 0:
        when = plan.days_to_saturation
        if when == 0.0:
            verdict = "ALREADY SATURATED"
        elif math.isinf(when):
            verdict = "never (no growth or unbounded capacity)"
        else:
            verdict = f"{when:.1f} days"
        lines.append(
            f"  time to saturation (+{plan.growth_per_day:.1f} nodes/day): "
            f"{verdict}"
        )
    if plan.verifiers_needed is not None:
        lines.append(
            f"  verifiers needed for target fleet: {plan.verifiers_needed} "
            "(at 80% target utilization)"
        )
    return "\n".join(lines)


def saturation_summary(registry) -> list[str]:
    """Dashboard lines for the accountant state under *registry*.

    Empty when no batch ticks have been accounted, so existing
    dashboards render unchanged on runs without a fleet scheduler.
    """
    if registry is None:
        return []
    ticks_family = registry.get("fleet_ticks_total")
    if ticks_family is None:
        return []
    try:
        ticks = ticks_family.value
    except Exception:
        return []

    def gauge_value(name: str) -> float | None:
        family = registry.get(name)
        if family is None:
            return None
        try:
            return family.value
        except Exception:
            return None

    def counter_value(name: str) -> float:
        family = registry.get(name)
        if family is None:
            return 0.0
        try:
            return family.value
        except Exception:
            return 0.0

    overruns = counter_value("fleet_tick_overruns_total")
    utilization = gauge_value("fleet_tick_utilization")
    budget = gauge_value("fleet_tick_budget_seconds")
    saturated = (gauge_value("fleet_saturated") or 0.0) >= 1.0
    parts = [f"{int(overruns)} overruns/{int(ticks)} ticks"]
    if utilization is not None:
        parts.insert(0, f"utilization={utilization:.1%}")
    if budget is not None:
        parts.append(f"budget={budget:.3f}s")
    line = "  verifier load: " + ", ".join(parts)
    if saturated:
        line += "  ** SATURATED **"
    return [line]


def tick_critical_path(span_store, name: str = "fleet.poll_batch"):
    """Critical path of the slowest recorded batch tick, or ``None``.

    Convenience glue between the accountant ("the tick is too slow")
    and the PR-4 profiling layer ("here is where the time went"):
    resolves the slowest ``fleet.poll_batch`` trace in *span_store* and
    runs :func:`repro.obs.profiling.critical_path` over it.
    """
    from repro.obs.profiling import critical_path

    slowest = span_store.slowest(1, name=name)
    if not slowest:
        return None
    return critical_path(slowest[0].primary)
