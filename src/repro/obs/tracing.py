"""Span tracing over the simulated clock.

A *span* is one timed phase of work with a name, attributes, and
parent/child nesting: one verifier poll is a ``verifier.poll`` root span
whose children are the four protocol phases (challenge, quote-verify,
log-replay, policy-eval), which in turn nest the spans emitted by the
agent and the TPM quote verifier.

Two timelines are recorded per span:

* **Simulated time** (``sim_start``/``sim_end``) from the bound
  :class:`repro.common.clock.SimClock` -- *when* in the experiment the
  work happened.  Within one scheduler callback the simulated clock does
  not advance, so nested spans of a single poll share a timestamp.
* **Wall time** (``wall_start``/``wall_end`` via ``perf_counter``) --
  how long the reproduction actually spent computing, which is what the
  per-phase performance breakdowns report.

Everything in the simulation is synchronous, so a simple span stack
gives correct parentage; the tracer is not thread-safe by design.
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from types import MappingProxyType
from typing import Any, Iterator

#: Default cap on retained root spans (a 31-day run polls ~1,500 times;
#: the cap only matters for pathological million-poll runs).
DEFAULT_MAX_ROOTS = 20_000

#: W3C-style version prefix of the ``traceparent`` wire field.
TRACEPARENT_VERSION = "00"


def format_traceparent(span: "Span | None") -> str | None:
    """The ``traceparent`` string naming *span* as the remote parent.

    The shape follows the W3C Trace Context header
    (``version-traceid-spanid-flags``, ids in fixed-width lowercase
    hex) so an export is recognisable to standard tooling; ``None`` in
    (no open span, or a null span) yields ``None`` out (nothing to
    propagate).
    """
    trace_id = getattr(span, "trace_id", None)
    span_id = getattr(span, "span_id", None)
    if trace_id is None or span_id is None:
        return None
    return f"{TRACEPARENT_VERSION}-{trace_id:032x}-{span_id:016x}-01"


def parse_traceparent(text: str | None) -> tuple[int, int] | None:
    """Decode a traceparent into ``(trace_id, span_id)``.

    Returns ``None`` for anything malformed -- an absent, truncated, or
    tampered field never raises, it simply fails to link (the spans it
    would have joined are recorded as a detached trace instead).
    """
    if not isinstance(text, str):
        return None
    parts = text.split("-")
    if len(parts) != 4 or parts[0] != TRACEPARENT_VERSION:
        return None
    if len(parts[1]) != 32 or len(parts[2]) != 16:
        return None
    try:
        trace_id = int(parts[1], 16)
        span_id = int(parts[2], 16)
    except ValueError:
        return None
    if trace_id <= 0 or span_id <= 0:
        return None
    return trace_id, span_id


def exemplar_of(span) -> dict[str, int] | None:
    """A histogram exemplar reference for *span* (``None`` if unlinked).

    Accepts real spans and null spans alike, so instrumented call sites
    can pass ``exemplar_of(tracer.current)`` unconditionally.
    """
    trace_id = getattr(span, "trace_id", None)
    span_id = getattr(span, "span_id", None)
    if trace_id is None or span_id is None:
        return None
    return {"trace_id": trace_id, "span_id": span_id}


@dataclass
class Span:
    """One timed, attributed, nestable unit of work."""

    name: str
    span_id: int
    trace_id: int
    parent_id: int | None
    sim_start: float
    wall_start: float
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    sim_end: float | None = None
    wall_end: float | None = None
    status: str = "ok"

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    @property
    def sim_duration(self) -> float:
        """Simulated seconds covered by the span (0.0 while open)."""
        return (self.sim_end - self.sim_start) if self.sim_end is not None else 0.0

    @property
    def wall_duration(self) -> float:
        """Wall-clock seconds spent inside the span (0.0 while open)."""
        return (self.wall_end - self.wall_start) if self.wall_end is not None else 0.0

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def tree_lines(self, indent: int = 0) -> list[str]:
        """Human-readable rendering of the span tree."""
        pad = "  " * indent
        line = (
            f"{pad}{self.name}  sim={self.sim_duration:.1f}s "
            f"wall={self.wall_duration * 1000:.3f}ms"
        )
        if self.attributes:
            rendered = ", ".join(f"{k}={v}" for k, v in self.attributes.items())
            line += f"  [{rendered}]"
        lines = [line]
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1))
        return lines


@dataclass
class SpanStats:
    """Aggregate over every finished span of one name."""

    count: int = 0
    wall_total: float = 0.0
    sim_total: float = 0.0

    @property
    def wall_mean(self) -> float:
        """Mean wall seconds per span."""
        return self.wall_total / self.count if self.count else 0.0


class _RemoteBoundary:
    """Stack marker for a serialised channel crossing.

    Spans opened while a boundary is on the stack take their parentage
    from the *propagated* traceparent, never from the spans the caller
    happens to have open -- exactly what a remote process would do.  In
    the in-process reproduction both sides share one tracer, so a
    traceparent that names a still-open local span re-attaches to it
    (the join the wire format exists to prove); anything else -- absent,
    malformed, or forged context -- yields a detached trace.
    """

    __slots__ = ("context", "resolved")

    def __init__(self, context: tuple[int, int] | None, resolved: Span | None) -> None:
        self.context = context
        self.resolved = resolved


class SpanTracer:
    """Records nested spans against a bindable simulated clock.

    *store* (a :class:`repro.obs.tracestore.SpanStore`, or anything with
    an ``ingest(root_span)`` method) receives every finished root trace;
    *on_drop* fires once per root evicted by the ``max_roots`` ring, so
    the owner can count silent trace loss into a metric.
    """

    def __init__(
        self,
        clock=None,
        max_roots: int = DEFAULT_MAX_ROOTS,
        store=None,
        on_drop=None,
    ) -> None:
        self._clock = clock
        self._stack: list[Span | _RemoteBoundary] = []
        self._roots: deque[Span] = deque(maxlen=max_roots)
        self._ids = itertools.count(1)
        self._traces = itertools.count(1)
        self.dropped_roots = 0
        self.store = store
        self.on_drop = on_drop

    def bind_clock(self, clock) -> None:
        """Attach the simulated clock (anything with a ``.now`` float)."""
        self._clock = clock

    def _now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    @property
    def current(self) -> Span | None:
        """The innermost open span, or ``None``.

        A remote boundary hides the caller's spans: from inside one,
        ``current`` is the innermost span opened *within* the boundary
        (or ``None``), mirroring what a separate process would see.
        """
        for frame in reversed(self._stack):
            if isinstance(frame, _RemoteBoundary):
                return None
            return frame
        return None

    @property
    def roots(self) -> list[Span]:
        """Finished root spans, oldest first (bounded by ``max_roots``)."""
        return list(self._roots)

    def last_trace(self) -> Span | None:
        """The most recently finished root span."""
        return self._roots[-1] if self._roots else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a span; nests under the currently open span, if any.

        A span that exits via an exception is closed with
        ``status="error"`` and an ``error.type`` attribute naming the
        exception class, then the exception is re-raised -- the trace
        records the failure instead of losing it.
        """
        parent = self._stack[-1] if self._stack else None
        remote_detached = False
        if isinstance(parent, _RemoteBoundary):
            boundary = parent
            if boundary.resolved is not None:
                # The propagated traceparent names a live local span:
                # join it, exactly as if the call had never left the
                # process.
                parent = boundary.resolved
            elif boundary.context is not None:
                # Valid context for a span we cannot see (already
                # closed, or forged): record a detached root carrying
                # the claimed parentage, never graft onto a live tree.
                parent = None
                remote_detached = True
                span = Span(
                    name=name,
                    span_id=next(self._ids),
                    trace_id=boundary.context[0],
                    parent_id=boundary.context[1],
                    sim_start=self._now(),
                    wall_start=perf_counter(),
                    attributes=dict(attributes),
                )
                span.attributes["traceparent.resolved"] = False
            else:
                # No/malformed context: a fresh local trace, flagged so
                # the break in propagation is visible.
                parent = None
                span = Span(
                    name=name,
                    span_id=next(self._ids),
                    trace_id=next(self._traces),
                    parent_id=None,
                    sim_start=self._now(),
                    wall_start=perf_counter(),
                    attributes=dict(attributes),
                )
                span.attributes["traceparent.resolved"] = False
                remote_detached = True
        if not remote_detached:
            span = Span(
                name=name,
                span_id=next(self._ids),
                trace_id=parent.trace_id if parent is not None else next(self._traces),
                parent_id=parent.span_id if parent is not None else None,
                sim_start=self._now(),
                wall_start=perf_counter(),
                attributes=dict(attributes),
            )
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.attributes["error.type"] = type(exc).__name__
            raise
        finally:
            span.sim_end = self._now()
            span.wall_end = perf_counter()
            self._stack.pop()
            if parent is None:
                if len(self._roots) == self._roots.maxlen:
                    self.dropped_roots += 1
                    if self.on_drop is not None:
                        self.on_drop()
                self._roots.append(span)
                if self.store is not None:
                    self.store.ingest(span)

    def _open_span(self, span_id: int, trace_id: int) -> Span | None:
        """The still-open local span with the given ids, if any."""
        for frame in self._stack:
            if (
                isinstance(frame, Span)
                and frame.span_id == span_id
                and frame.trace_id == trace_id
            ):
                return frame
        return None

    @contextmanager
    def remote_context(self, traceparent: str | None) -> Iterator[None]:
        """Record the enclosed spans under a *propagated* trace context.

        Models the far side of a serialised channel: spans opened inside
        the block take their parentage from *traceparent* alone.  A
        traceparent naming a still-open local span re-attaches to it
        (the in-process join); any other value -- ``None``, malformed,
        or referencing an unknown span -- produces a detached trace
        whose roots carry ``traceparent.resolved=False``, so a tampered
        channel can break linkage but never graft spans onto a live
        trace it does not own.
        """
        context = parse_traceparent(traceparent)
        resolved = self._open_span(context[1], context[0]) if context else None
        self._stack.append(_RemoteBoundary(context, resolved))
        try:
            yield
        finally:
            self._stack.pop()

    def iter_spans(self) -> Iterator[Span]:
        """Every finished span, depth-first within each root trace."""
        for root in self._roots:
            yield from root.walk()

    def aggregate(self) -> dict[str, SpanStats]:
        """Per-name totals over every finished span."""
        stats: dict[str, SpanStats] = {}
        for span in self.iter_spans():
            entry = stats.setdefault(span.name, SpanStats())
            entry.count += 1
            entry.wall_total += span.wall_duration
            entry.sim_total += span.sim_duration
        return stats


class _NullSpan:
    """Context-manager stand-in returned while tracing is disabled.

    ``attributes`` and ``children`` are *immutable* sentinels (a
    mapping proxy and a tuple): the singleton is shared by every
    disabled-tracing call site, so a caller that tried to mutate them
    directly would otherwise leak state process-wide.  Mutation now
    raises instead of silently cross-contaminating call sites; the
    supported no-op path is :meth:`set_attribute`.
    """

    __slots__ = ()
    attributes: Any = MappingProxyType({})
    children: tuple = ()
    status: str = "ok"

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer stand-in used while telemetry is disabled."""

    __slots__ = ()
    dropped_roots = 0
    store = None

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        """No-op span (a shared singleton context manager)."""
        return _NULL_SPAN

    @contextmanager
    def remote_context(self, traceparent: str | None) -> Iterator[None]:
        """No-op boundary while tracing is disabled."""
        yield

    def bind_clock(self, clock) -> None:  # noqa: D102
        pass

    @property
    def current(self) -> None:  # noqa: D102
        return None

    @property
    def roots(self) -> list:  # noqa: D102
        return []

    def last_trace(self) -> None:  # noqa: D102
        return None

    def iter_spans(self) -> Iterator[Span]:  # noqa: D102
        return iter(())

    def aggregate(self) -> dict[str, SpanStats]:  # noqa: D102
        return {}


NULL_TRACER = NullTracer()
