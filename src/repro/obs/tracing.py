"""Span tracing over the simulated clock.

A *span* is one timed phase of work with a name, attributes, and
parent/child nesting: one verifier poll is a ``verifier.poll`` root span
whose children are the four protocol phases (challenge, quote-verify,
log-replay, policy-eval), which in turn nest the spans emitted by the
agent and the TPM quote verifier.

Two timelines are recorded per span:

* **Simulated time** (``sim_start``/``sim_end``) from the bound
  :class:`repro.common.clock.SimClock` -- *when* in the experiment the
  work happened.  Within one scheduler callback the simulated clock does
  not advance, so nested spans of a single poll share a timestamp.
* **Wall time** (``wall_start``/``wall_end`` via ``perf_counter``) --
  how long the reproduction actually spent computing, which is what the
  per-phase performance breakdowns report.

Everything in the simulation is synchronous, so a simple span stack
gives correct parentage; the tracer is not thread-safe by design.
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Iterator

#: Default cap on retained root spans (a 31-day run polls ~1,500 times;
#: the cap only matters for pathological million-poll runs).
DEFAULT_MAX_ROOTS = 20_000


@dataclass
class Span:
    """One timed, attributed, nestable unit of work."""

    name: str
    span_id: int
    trace_id: int
    parent_id: int | None
    sim_start: float
    wall_start: float
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    sim_end: float | None = None
    wall_end: float | None = None

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    @property
    def sim_duration(self) -> float:
        """Simulated seconds covered by the span (0.0 while open)."""
        return (self.sim_end - self.sim_start) if self.sim_end is not None else 0.0

    @property
    def wall_duration(self) -> float:
        """Wall-clock seconds spent inside the span (0.0 while open)."""
        return (self.wall_end - self.wall_start) if self.wall_end is not None else 0.0

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def tree_lines(self, indent: int = 0) -> list[str]:
        """Human-readable rendering of the span tree."""
        pad = "  " * indent
        line = (
            f"{pad}{self.name}  sim={self.sim_duration:.1f}s "
            f"wall={self.wall_duration * 1000:.3f}ms"
        )
        if self.attributes:
            rendered = ", ".join(f"{k}={v}" for k, v in self.attributes.items())
            line += f"  [{rendered}]"
        lines = [line]
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1))
        return lines


@dataclass
class SpanStats:
    """Aggregate over every finished span of one name."""

    count: int = 0
    wall_total: float = 0.0
    sim_total: float = 0.0

    @property
    def wall_mean(self) -> float:
        """Mean wall seconds per span."""
        return self.wall_total / self.count if self.count else 0.0


class SpanTracer:
    """Records nested spans against a bindable simulated clock."""

    def __init__(self, clock=None, max_roots: int = DEFAULT_MAX_ROOTS) -> None:
        self._clock = clock
        self._stack: list[Span] = []
        self._roots: deque[Span] = deque(maxlen=max_roots)
        self._ids = itertools.count(1)
        self._traces = itertools.count(1)
        self.dropped_roots = 0

    def bind_clock(self, clock) -> None:
        """Attach the simulated clock (anything with a ``.now`` float)."""
        self._clock = clock

    def _now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    @property
    def current(self) -> Span | None:
        """The innermost open span, or ``None``."""
        return self._stack[-1] if self._stack else None

    @property
    def roots(self) -> list[Span]:
        """Finished root spans, oldest first (bounded by ``max_roots``)."""
        return list(self._roots)

    def last_trace(self) -> Span | None:
        """The most recently finished root span."""
        return self._roots[-1] if self._roots else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a span; nests under the currently open span, if any."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            span_id=next(self._ids),
            trace_id=parent.trace_id if parent is not None else next(self._traces),
            parent_id=parent.span_id if parent is not None else None,
            sim_start=self._now(),
            wall_start=perf_counter(),
            attributes=dict(attributes),
        )
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.sim_end = self._now()
            span.wall_end = perf_counter()
            self._stack.pop()
            if parent is None:
                if len(self._roots) == self._roots.maxlen:
                    self.dropped_roots += 1
                self._roots.append(span)

    def iter_spans(self) -> Iterator[Span]:
        """Every finished span, depth-first within each root trace."""
        for root in self._roots:
            yield from root.walk()

    def aggregate(self) -> dict[str, SpanStats]:
        """Per-name totals over every finished span."""
        stats: dict[str, SpanStats] = {}
        for span in self.iter_spans():
            entry = stats.setdefault(span.name, SpanStats())
            entry.count += 1
            entry.wall_total += span.wall_duration
            entry.sim_total += span.sim_duration
        return stats


class _NullSpan:
    """Context-manager stand-in returned while tracing is disabled."""

    __slots__ = ()
    attributes: dict[str, Any] = {}
    children: list = []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer stand-in used while telemetry is disabled."""

    __slots__ = ()
    dropped_roots = 0

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        """No-op span (a shared singleton context manager)."""
        return _NULL_SPAN

    def bind_clock(self, clock) -> None:  # noqa: D102
        pass

    @property
    def current(self) -> None:  # noqa: D102
        return None

    @property
    def roots(self) -> list:  # noqa: D102
        return []

    def last_trace(self) -> None:  # noqa: D102
        return None

    def iter_spans(self) -> Iterator[Span]:  # noqa: D102
        return iter(())

    def aggregate(self) -> dict[str, SpanStats]:  # noqa: D102
        return {}


NULL_TRACER = NullTracer()
