"""Streaming health detectors over the attestation telemetry.

PR 1 made the system *emit* telemetry; this module *watches* it.  Three
detector families run on every monitor tick:

* :class:`LatencyAnomalyDetector` -- sliding-window z-score over the
  per-tick mean verifier poll latency, sampled as deltas from the
  ``verifier_poll_wall_seconds`` histogram in the metrics registry.
* :class:`FailureRateDetector` -- EWMA of the per-tick quote-verify /
  policy failure fraction, sampled as deltas from the
  ``verifier_polls_total`` counter family.
* :class:`CoverageGapDetector` -- the anti-P2 detector.  The paper's
  worst observability failure is a verifier that halts polling after a
  self-induced false positive, leaving a *silent gap* in the
  attestation history for an adaptive attacker to act in.  This
  detector tracks the last successful attestation per watched agent
  and fires when an agent has gone ``gap_polls`` expected poll
  intervals without one -- detecting the silence itself, not any
  particular failure.

:class:`HealthMonitor` wires the detectors to a run: it subscribes to
the :class:`repro.common.events.EventLog` for per-agent attestation
outcomes, samples the metrics registry for rates, records into the SLO
trackers (:mod:`repro.obs.alerts`), and turns detector findings into
:class:`~repro.obs.alerts.Alert` values on :meth:`check`.

:class:`HealthWatch` is the one-stop bundle the scenarios and the
``repro-cli obs watch`` command attach to a run: monitor + alert
engine + incident correlator + periodic tick.
"""

from __future__ import annotations

import math
import sys
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.alerts import (
    Alert,
    AlertEngine,
    SloSet,
    standard_burn_rules,
    standard_slos,
)
from repro.obs.capacity import SaturationDetector, saturation_summary
from repro.obs.incidents import IncidentCorrelator, IncidentReport

#: Default number of missed poll intervals before a coverage gap fires.
DEFAULT_GAP_POLLS = 3


class Ewma:
    """Exponentially weighted moving average with a sample counter."""

    def __init__(self, alpha: float = 0.3) -> None:
        self.alpha = alpha
        self.value = 0.0
        self.samples = 0

    def update(self, observation: float) -> float:
        """Fold one observation in; returns the new average."""
        if self.samples == 0:
            self.value = observation
        else:
            self.value = self.alpha * observation + (1.0 - self.alpha) * self.value
        self.samples += 1
        return self.value


class SlidingWindow:
    """Bounded window with O(1) mean/std via running sums.

    The running-sums variance ``E[x^2] - E[x]^2`` cancels
    catastrophically on near-constant large samples: both terms are
    ~1e18 for 1e9-scale latencies, their true difference is ~0, and
    the float subtraction leaves pure rounding noise.  Clamping at
    zero is not enough -- *positive* noise yields a tiny bogus sigma
    that turns nanoseconds of jitter into huge z-scores.  Two guards:
    a relative noise floor (variance below the cancellation error of
    the inputs is reported as exactly 0.0), and a periodic recompute
    of the running sums from the retained window so drift from
    evicted samples cannot accumulate over a long run.
    """

    #: Pushes between full recomputations of the running sums.
    RESYNC_EVERY = 4096

    def __init__(self, size: int) -> None:
        self._window: deque[float] = deque(maxlen=size)
        self._sum = 0.0
        self._sum_sq = 0.0
        self._pushes = 0

    def __len__(self) -> int:
        return len(self._window)

    def push(self, value: float) -> None:
        """Add a value, evicting the oldest when full."""
        if len(self._window) == self._window.maxlen:
            evicted = self._window[0]
            self._sum -= evicted
            self._sum_sq -= evicted * evicted
        self._window.append(value)
        self._sum += value
        self._sum_sq += value * value
        self._pushes += 1
        if self._pushes % self.RESYNC_EVERY == 0:
            self._sum = sum(self._window)
            self._sum_sq = sum(v * v for v in self._window)

    @property
    def mean(self) -> float:
        """Window mean (0.0 when empty)."""
        return self._sum / len(self._window) if self._window else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation of the window."""
        n = len(self._window)
        if n < 2:
            return 0.0
        mean_sq = self.mean**2
        variance = self._sum_sq / n - mean_sq
        # Anything below the cancellation error of the two ~equal terms
        # is numerical noise, not spread.
        noise_floor = 16.0 * sys.float_info.epsilon * max(
            self._sum_sq / n, mean_sq
        )
        if variance <= noise_floor:
            return 0.0
        return math.sqrt(variance)

    def zscore(self, value: float) -> float:
        """How many window standard deviations *value* sits from the mean."""
        sigma = self.std
        if sigma == 0.0:
            return 0.0
        return (value - self.mean) / sigma


class LatencyAnomalyDetector:
    """Z-score anomaly detection on a latency stream.

    Each observation is compared against the sliding window *before*
    being folded in, so a spike is judged against history rather than
    against itself.
    """

    def __init__(
        self,
        window: int = 32,
        threshold: float = 3.0,
        min_samples: int = 8,
        min_ratio: float = 1.5,
    ) -> None:
        self.window = SlidingWindow(window)
        self.threshold = threshold
        self.min_samples = min_samples
        # A z-score alone over-fires on a quiet stream (tiny sigma makes
        # microsecond jitter look like many sigmas); require the value
        # to also exceed the mean by a real margin.
        self.min_ratio = min_ratio

    def observe(self, now: float, value: float) -> Alert | None:
        """Feed one observation; returns an alert when it is anomalous."""
        anomaly = None
        if len(self.window) >= self.min_samples:
            z = self.window.zscore(value)
            if z >= self.threshold and value >= self.window.mean * self.min_ratio:
                anomaly = Alert(
                    time=now,
                    rule="health.poll_latency_anomaly",
                    severity="warning",
                    message=(
                        f"poll latency {value * 1000:.2f}ms is {z:.1f} sigma above "
                        f"the trailing mean {self.window.mean * 1000:.2f}ms"
                    ),
                    detail={
                        "value_seconds": value,
                        "zscore": round(z, 2),
                        "window_mean_seconds": self.window.mean,
                        "window_std_seconds": self.window.std,
                    },
                )
        self.window.push(value)
        return anomaly


class FailureRateDetector:
    """EWMA threshold detection on a failure-fraction stream."""

    def __init__(
        self, alpha: float = 0.3, threshold: float = 0.5, min_samples: int = 3
    ) -> None:
        self.ewma = Ewma(alpha)
        self.threshold = threshold
        self.min_samples = min_samples

    def observe(self, now: float, failed: int, total: int) -> Alert | None:
        """Feed one tick's (failed, total) poll counts."""
        if total <= 0:
            return None
        smoothed = self.ewma.update(failed / total)
        if self.ewma.samples < self.min_samples or smoothed < self.threshold:
            return None
        return Alert(
            time=now,
            rule="health.failure_rate",
            severity="critical",
            message=(
                f"attestation failure rate EWMA at {smoothed:.0%} "
                f"(threshold {self.threshold:.0%})"
            ),
            detail={
                "ewma": round(smoothed, 4),
                "threshold": self.threshold,
                "failed": failed,
                "total": total,
            },
        )


@dataclass
class _WatchedAgent:
    agent_id: str
    poll_interval: float
    watched_since: float
    last_ok: float | None = None
    last_poll: float | None = None
    halted_at: float | None = None
    gap_open_since: float | None = None
    # Degraded-mode context: how many rounds degraded on transport
    # faults, and when the verifier marked the node SUSPECT (None while
    # healthy).  A coverage gap with these set is *explained* -- the
    # verifier kept polling, the wire kept failing -- which is exactly
    # the distinction the paper's P2 verifier cannot make.
    degraded_rounds: int = 0
    suspect_since: float | None = None
    quarantined_at: float | None = None


class CoverageGapDetector:
    """Fires when a watched agent's attestation history goes silent.

    The reference point is the last *successful* attestation (or the
    watch start): a halted verifier, a crashed agent, and a
    fail-looping restart cycle all look identical from the trust
    history -- no fresh evidence -- and all must alert.  That is
    exactly the gap the paper's P2 attacker hides in.
    """

    def __init__(self, gap_polls: float = DEFAULT_GAP_POLLS) -> None:
        if gap_polls <= 0:
            raise ValueError(f"gap_polls must be positive, got {gap_polls}")
        self.gap_polls = gap_polls
        self._agents: dict[str, _WatchedAgent] = {}

    def watch(self, agent_id: str, poll_interval: float, now: float = 0.0) -> None:
        """Start expecting attestations from *agent_id* every interval."""
        self._agents[agent_id] = _WatchedAgent(
            agent_id=agent_id, poll_interval=poll_interval, watched_since=now
        )

    def agents(self) -> list[str]:
        """Watched agent ids, in watch order."""
        return list(self._agents)

    def record_success(self, agent_id: str, now: float) -> None:
        """Note a successful attestation (resets any open gap)."""
        agent = self._agents.get(agent_id)
        if agent is None:
            return
        agent.last_ok = now
        agent.last_poll = now
        agent.gap_open_since = None
        agent.halted_at = None

    def record_failure(self, agent_id: str, now: float) -> None:
        """Note a failed attestation (polling happened, trust did not)."""
        agent = self._agents.get(agent_id)
        if agent is not None:
            agent.last_poll = now

    def record_halt(self, agent_id: str, now: float) -> None:
        """Note that the verifier stopped polling the agent (P2)."""
        agent = self._agents.get(agent_id)
        if agent is not None:
            agent.halted_at = now

    def record_degraded(self, agent_id: str, now: float) -> None:
        """Note a degraded round: polling happened, the wire did not.

        Counts toward the gap *explanation*, not the gap itself -- the
        reference point stays the last successful attestation, so a
        wire that fails for long enough still opens a coverage gap; the
        alert just carries the transport context.
        """
        agent = self._agents.get(agent_id)
        if agent is not None:
            agent.last_poll = now
            agent.degraded_rounds += 1

    def record_suspect(self, agent_id: str, now: float) -> None:
        """Note that the verifier marked the node SUSPECT."""
        agent = self._agents.get(agent_id)
        if agent is not None:
            agent.suspect_since = now

    def record_recovered(self, agent_id: str, now: float) -> None:
        """Note that a SUSPECT node attested clean again."""
        agent = self._agents.get(agent_id)
        if agent is not None:
            agent.suspect_since = None

    def record_quarantined(self, agent_id: str, now: float) -> None:
        """Note a quarantine: polling stops, but announced, not silent."""
        agent = self._agents.get(agent_id)
        if agent is not None:
            agent.quarantined_at = now
            agent.halted_at = now

    def suspects(self) -> list[str]:
        """Agents currently marked SUSPECT, in watch order."""
        return [
            agent.agent_id for agent in self._agents.values()
            if agent.suspect_since is not None
        ]

    def freshness(self, agent_id: str, now: float) -> float:
        """Seconds since the agent's last successful attestation."""
        agent = self._agents[agent_id]
        reference = agent.last_ok if agent.last_ok is not None else agent.watched_since
        return now - reference

    def check(self, now: float) -> list[Alert]:
        """Evaluate every watched agent; returns gap alerts (one per tick
        while the gap persists, so the engine keeps the firing state)."""
        alerts = []
        for agent in self._agents.values():
            threshold = self.gap_polls * agent.poll_interval
            age = self.freshness(agent.agent_id, now)
            if age <= threshold:
                continue
            reference = (
                agent.last_ok if agent.last_ok is not None else agent.watched_since
            )
            if agent.gap_open_since is None:
                agent.gap_open_since = reference + threshold
            detail: dict[str, Any] = {
                "last_ok": agent.last_ok,
                "last_poll": agent.last_poll,
                "poll_interval": agent.poll_interval,
                "missed_polls": int(age // agent.poll_interval),
                "gap_started": reference,
                "gap_detected": agent.gap_open_since,
            }
            if agent.halted_at is not None:
                detail["polling_halted_at"] = agent.halted_at
            if agent.degraded_rounds:
                detail["degraded_rounds"] = agent.degraded_rounds
            if agent.suspect_since is not None:
                detail["suspect_since"] = agent.suspect_since
            if agent.quarantined_at is not None:
                detail["quarantined_at"] = agent.quarantined_at
            if agent.quarantined_at is not None:
                why = ", node quarantined"
            elif agent.suspect_since is not None:
                why = ", node suspect (transport degraded)"
            elif agent.halted_at is not None:
                why = ", polling halted"
            else:
                why = ""
            alerts.append(
                Alert(
                    time=now,
                    rule="health.coverage_gap",
                    severity="critical",
                    agent=agent.agent_id,
                    message=(
                        f"no successful attestation from {agent.agent_id} for "
                        f"{age / 3600.0:.1f}h "
                        f"(~{int(age // agent.poll_interval)} missed polls"
                        + why
                        + ")"
                    ),
                    detail=detail,
                )
            )
        return alerts


class RegistrySampleSource:
    """Counter/histogram instants read straight off a live registry.

    This is the seed sampling path, factored behind the same API
    :class:`repro.obs.rules.TsdbSampleSource` serves from TSDB history,
    so :class:`HealthMonitor` is source-agnostic: ``None`` answers mean
    "no data yet" and leave the monitor's delta bookkeeping untouched.
    """

    def __init__(self, registry) -> None:
        self.registry = registry

    def counter_value(
        self, name: str, labels: dict[str, str], at: float
    ) -> float | None:
        """Current cumulative value of one counter child."""
        family = self.registry.get(name)
        if family is None:
            return None
        try:
            return family.labels(**labels).value if labels else family.value
        except Exception:
            return None

    def histogram_totals(
        self, name: str, at: float
    ) -> tuple[float, float] | None:
        """The default child's current ``(count, sum)``."""
        family = self.registry.get(name)
        if family is None:
            return None
        try:
            child = family._default_child()
        except Exception:
            return None
        return child.count, child.sum


class HealthMonitor:
    """Wires the detectors to one run's EventLog and metrics registry."""

    def __init__(
        self,
        events,
        registry=None,
        slos: SloSet | None = None,
        gap_polls: float = DEFAULT_GAP_POLLS,
        freshness_target_polls: float = 2.0,
        detection_target_polls: float = 4.0,
        source=None,
    ) -> None:
        self.events = events
        self.registry = registry
        if source is None and registry is not None:
            source = RegistrySampleSource(registry)
        self.source = source
        self.slos = slos if slos is not None else standard_slos()
        self.gaps = CoverageGapDetector(gap_polls=gap_polls)
        self.latency = LatencyAnomalyDetector()
        self.failure_rate = FailureRateDetector()
        self.saturation = SaturationDetector()
        self.freshness_target_polls = freshness_target_polls
        self.detection_target_polls = detection_target_polls
        self.last_check: float | None = None
        self._sampled: dict[str, float] = {}
        self._latency_sampled_gaps: set[tuple[str | None, float]] = set()
        self._unsubscribe = events.subscribe(self._on_event)

    def close(self) -> None:
        """Stop listening to the EventLog."""
        self._unsubscribe()

    # -- event intake ------------------------------------------------------

    def _on_event(self, record) -> None:
        if record.source != "keylime.verifier":
            return
        agent = record.details.get("agent")
        if agent is None or agent not in self.gaps.agents():
            return
        if record.kind == "attestation.ok":
            self.gaps.record_success(agent, record.time)
            self.slos.poll_success.record(record.time, True)
        elif record.kind.startswith("attestation.failed"):
            self.gaps.record_failure(agent, record.time)
            self.slos.poll_success.record(record.time, False)
        elif record.kind == "attestation.degraded":
            # A degraded round burns poll-success budget (the FP study's
            # operational-noise cost) without counting as an integrity
            # failure anywhere.
            self.gaps.record_degraded(agent, record.time)
            self.slos.poll_success.record(record.time, False)
        elif record.kind == "node.suspect":
            self.gaps.record_suspect(agent, record.time)
        elif record.kind == "node.recovered":
            self.gaps.record_recovered(agent, record.time)
        elif record.kind == "node.quarantined":
            self.gaps.record_quarantined(agent, record.time)
        elif record.kind == "polling.halted":
            self.gaps.record_halt(agent, record.time)

    # -- agent registration ------------------------------------------------

    def watch_agent(self, agent_id: str, poll_interval: float, now: float = 0.0) -> None:
        """Watch one agent's attestation cadence from *now* on."""
        self.gaps.watch(agent_id, poll_interval, now=now)

    # -- telemetry sampling ------------------------------------------------
    #
    # The monitor owns the delta bookkeeping (previous cumulative value
    # per sampled key); the *source* only answers "what is the value at
    # now" -- from the live registry (seed path) or from TSDB history.

    def _counter_delta(self, name: str, now: float, **labels: str) -> float:
        if self.source is None:
            return 0.0
        current = self.source.counter_value(name, labels, now)
        if current is None:
            return 0.0
        key = name + "".join(f"|{k}={v}" for k, v in sorted(labels.items()))
        delta = current - self._sampled.get(key, 0.0)
        self._sampled[key] = current
        return delta

    def _histogram_delta(self, name: str, now: float) -> tuple[float, float]:
        if self.source is None:
            return 0.0, 0.0
        totals = self.source.histogram_totals(name, now)
        if totals is None:
            return 0.0, 0.0
        count, total = totals
        d_count = count - self._sampled.get(name + "|count", 0.0)
        d_sum = total - self._sampled.get(name + "|sum", 0.0)
        self._sampled[name + "|count"] = count
        self._sampled[name + "|sum"] = total
        return d_count, d_sum

    # -- the tick ----------------------------------------------------------

    def check(self, now: float) -> list[Alert]:
        """One monitor tick: sample, detect, record SLOs, gauge health."""
        alerts: list[Alert] = []

        # Poll-latency stream: per-tick mean from the histogram deltas.
        d_count, d_sum = self._histogram_delta("verifier_poll_wall_seconds", now)
        if d_count > 0:
            anomaly = self.latency.observe(now, d_sum / d_count)
            if anomaly is not None:
                alerts.append(anomaly)

        # Failure-rate stream: per-tick fractions from the counters.
        failed = self._counter_delta(
            "verifier_polls_total", now, result="failed"
        )
        ok = self._counter_delta("verifier_polls_total", now, result="ok")
        spike = self.failure_rate.observe(now, int(failed), int(failed + ok))
        if spike is not None:
            alerts.append(spike)

        # Saturation stream: the batch scheduler's tick-budget
        # accounting (repro.obs.capacity).  Counter deltas give this
        # tick's activity; the gauges give the accountant's current
        # state -- both through the source API, so the seed registry
        # path and the TSDB path stay alert-for-alert identical.
        ticks = self._counter_delta("fleet_ticks_total", now)
        overruns = self._counter_delta("fleet_tick_overruns_total", now)
        saturated = utilization = budget = None
        if self.source is not None:
            saturated = self.source.counter_value("fleet_saturated", {}, now)
            utilization = self.source.counter_value(
                "fleet_tick_utilization", {}, now
            )
            budget = self.source.counter_value(
                "fleet_tick_budget_seconds", {}, now
            )
        congestion = self.saturation.observe(
            now,
            saturated=bool(saturated),
            utilization=utilization,
            overruns=overruns,
            ticks=ticks,
            budget=budget,
        )
        if congestion is not None:
            alerts.append(congestion)
        if self.slos.freshness_headroom is not None and ticks > 0:
            # One headroom sample per accounted tick, bad per overrun.
            total = min(int(round(ticks)), 10_000)
            bad = min(int(round(overruns)), total)
            for index in range(total):
                self.slos.freshness_headroom.record(now, index >= bad)

        # Coverage gaps + the freshness SLO.
        gap_alerts = self.gaps.check(now)
        firing = {alert.agent for alert in gap_alerts}
        for alert in gap_alerts:
            # Detection-latency SLO: sampled once per gap, at detection
            # time -- good when the silence was caught within target.
            key = (alert.agent, alert.detail.get("gap_started", 0.0))
            if key not in self._latency_sampled_gaps:
                self._latency_sampled_gaps.add(key)
                latency = now - alert.detail["gap_started"]
                target = self.detection_target_polls * alert.detail["poll_interval"]
                self.slos.detection_latency.record(now, latency <= target)
        alerts.extend(gap_alerts)

        for agent_id in self.gaps.agents():
            interval = self.gaps._agents[agent_id].poll_interval
            age = self.gaps.freshness(agent_id, now)
            fresh = age <= self.freshness_target_polls * interval
            self.slos.freshness.record(now, fresh)
            if self.registry is not None:
                self.registry.gauge(
                    "obs_agent_attestation_age_seconds",
                    "Seconds since the agent's last successful attestation",
                    ("agent",),
                ).labels(agent=agent_id).set(age)
        if self.registry is not None:
            self.registry.gauge(
                "obs_coverage_gaps_active",
                "Watched agents currently inside a coverage gap",
            ).set(len(firing - {None}))

        self.last_check = now
        return alerts


class HealthWatch:
    """Monitor + alert engine + incident correlator for one run.

    Scenarios accept an (optional) instance and call :meth:`attach`
    once the run's EventLog/scheduler/audit exist, then :meth:`tick`
    on a periodic schedule.  Every alert that fires builds an incident
    report on the spot, so the forensic timeline is assembled while
    the run is still warm.
    """

    def __init__(
        self,
        gap_polls: float = DEFAULT_GAP_POLLS,
        tick_interval: float = 1800.0,
        on_frame: Callable[[float, "HealthWatch"], None] | None = None,
        frame_every: int = 0,
        incident_lookback_polls: float = 8.0,
        observatory=None,
    ) -> None:
        self.gap_polls = gap_polls
        self.tick_interval = tick_interval
        self.on_frame = on_frame
        self.frame_every = frame_every
        self.incident_lookback_polls = incident_lookback_polls
        # When a repro.obs.rules.Observatory is supplied, the monitor's
        # detectors and SLO trackers run on TSDB history instead of
        # private registry sampling; each tick collects (scrape + rules)
        # before checking, so instants at `now` are this tick's scrape.
        self.observatory = observatory
        self.monitor: HealthMonitor | None = None
        self.engine: AlertEngine | None = None
        self.correlator: IncidentCorrelator | None = None
        self.incidents: list[IncidentReport] = []
        self.poll_interval: float = tick_interval
        self._ticks = 0
        self._incident_index: dict[tuple[str, str | None], int] = {}

    @property
    def attached(self) -> bool:
        """Whether :meth:`attach` has been called."""
        return self.monitor is not None

    def attach(
        self, events, registry=None, tracer=None, audit=None,
        poll_interval: float = 1800.0, now: float = 0.0,
    ) -> "HealthWatch":
        """Bind to a run's plumbing; returns self for chaining."""
        self.poll_interval = poll_interval
        source = None
        slos = None
        if self.observatory is not None:
            if registry is not None and not self.observatory.bound:
                self.observatory.bind(registry)
            source = self.observatory.health_source()
            slos = self.observatory.slos()
        self.monitor = HealthMonitor(
            events, registry=registry, gap_polls=self.gap_polls,
            source=source, slos=slos,
        )
        self.engine = AlertEngine(events)
        self.engine.add_rules(
            standard_burn_rules(self.monitor.slos, poll_interval=poll_interval)
        )
        self.correlator = IncidentCorrelator(events, tracer=tracer, audit=audit)
        return self

    def watch_agent(self, agent_id: str, poll_interval: float | None = None,
                    now: float = 0.0) -> None:
        """Register one agent's expected cadence with the gap detector."""
        self.monitor.watch_agent(
            agent_id,
            poll_interval if poll_interval is not None else self.poll_interval,
            now=now,
        )

    def schedule(self, scheduler) -> Callable[[], None]:
        """Tick on *scheduler* every ``tick_interval``; returns the stop."""
        return scheduler.every(
            self.tick_interval,
            lambda: self.tick(scheduler.clock.now),
            label="obs.health_watch",
        )

    def tick(self, now: float) -> list[Alert]:
        """One watch cycle: detect, alert, correlate; returns new alerts."""
        if self.observatory is not None:
            self.observatory.collect(now)
        signals = self.monitor.check(now)
        fired = self.engine.ingest(signals, now)
        fired.extend(self.engine.evaluate(now))
        for alert in fired:
            self._incident_index[alert.key] = len(self.incidents)
            self.incidents.append(self._correlate(alert, now))
        self._ticks += 1
        if self.on_frame is not None and self.frame_every > 0:
            if self._ticks % self.frame_every == 0:
                self.on_frame(now, self)
        return fired

    def _correlate(self, alert: Alert, now: float) -> IncidentReport:
        lookback = self.incident_lookback_polls * self.poll_interval
        # Gap incidents should span from *before* the silence began.
        gap_started = alert.detail.get("gap_started")
        if gap_started is not None:
            lookback = max(lookback, alert.time - gap_started + self.poll_interval)
        return self.correlator.build(
            alert, lookback=lookback, lookahead=max(0.0, now - alert.time)
        )

    def finalize(self, now: float) -> list[IncidentReport]:
        """End-of-run sweep: re-correlate every still-active alert.

        An incident is first built at detection time, but a P2 attacker
        acts *after* detection would have fired on a stock stack -- the
        backdoor lands deep in the still-open gap.  Extending each
        active alert's window through *now* puts that late evidence in
        the report; the refreshed report keeps its incident id and
        replaces the detection-time snapshot.
        """
        refreshed: list[IncidentReport] = []
        if self.engine is None:
            return refreshed
        for alert in self.engine.active():
            report = self._correlate(alert, now)
            index = self._incident_index.get(alert.key)
            if index is not None:
                report.incident_id = self.incidents[index].incident_id
                self.incidents[index] = report
            else:
                self._incident_index[alert.key] = len(self.incidents)
                self.incidents.append(report)
            refreshed.append(report)
        return refreshed


def pipeline_stage_breakdown(registry) -> list[str]:
    """Per-stage verifier pipeline lines for dashboards and reports.

    Reads the ``verifier_stage_wall_seconds{stage}`` histogram and the
    ``verifier_verdict_cache_total{result}`` counters recorded by
    :class:`repro.keylime.pipeline.VerificationPipeline`; returns an
    empty list when no pipeline has run under this registry.
    """
    if registry is None:
        return []
    family = registry.get("verifier_stage_wall_seconds")
    if family is None:
        return []
    lines = ["  -- verification pipeline (wall per stage) --"]
    for labels, child in family.samples():
        stage = labels.get("stage", "?")
        lines.append(
            f"    {stage:<14s} n={child.count:<8d} "
            f"mean={child.mean * 1000.0:8.4f}ms total={child.sum * 1000.0:10.2f}ms"
        )
    cache = registry.get("verifier_verdict_cache_total")
    if cache is not None:
        counts = {labels.get("result"): child.value for labels, child in cache.samples()}
        hits = counts.get("hit", 0)
        misses = counts.get("miss", 0)
        total = hits + misses
        if total:
            lines.append(
                f"    verdict cache: {hits:.0f} hits / {misses:.0f} misses "
                f"({hits / total:.1%} hit ratio)"
            )
    return lines


def render_dashboard(watch: HealthWatch, now: float) -> str:
    """A console snapshot of the watch state: health, SLOs, alerts."""
    lines = [f"== obs watch @ t={now / 3600.0:.1f}h (day {now / 86400.0:.2f}) =="]
    monitor, engine = watch.monitor, watch.engine
    agents = monitor.gaps.agents()
    fresh = stale = 0
    for agent_id in agents:
        interval = monitor.gaps._agents[agent_id].poll_interval
        if monitor.gaps.freshness(agent_id, now) <= watch.gap_polls * interval:
            fresh += 1
        else:
            stale += 1
    lines.append(
        f"  agents: {len(agents)} watched, {fresh} fresh, "
        f"{stale} in coverage gap"
    )
    suspects = monitor.gaps.suspects()
    degraded_total = sum(
        agent.degraded_rounds for agent in monitor.gaps._agents.values()
    )
    if suspects or degraded_total:
        lines.append(
            f"  degraded transport: {degraded_total} degraded rounds, "
            f"{len(suspects)} node(s) currently suspect"
        )
    lines.extend(saturation_summary(monitor.registry))
    lines.append("  -- SLOs (error budget over trailing day) --")
    for tracker in monitor.slos.all():
        total, bad = tracker.window_counts(86400.0, now)
        remaining = tracker.budget_remaining(86400.0, now)
        lines.append(
            f"    {tracker.name:<22s} objective={tracker.objective:.3f} "
            f"samples={total:<6d} bad={bad:<4d} budget_left={remaining:6.1%}"
        )
    active = engine.active()
    if active:
        lines.append("  -- active alerts --")
        for alert in active:
            who = f" agent={alert.agent}" if alert.agent else ""
            lines.append(
                f"    [{alert.severity.upper():8s}] {alert.rule}{who} "
                f"(since t={alert.time / 3600.0:.1f}h)"
            )
    else:
        lines.append("  -- no active alerts --")
    lines.extend(pipeline_stage_breakdown(monitor.registry))
    if watch.incidents:
        lines.append(f"  incidents on file: {len(watch.incidents)}")
    return "\n".join(lines)
