"""Critical-path and self-time analysis over finished traces.

The tracer answers *what happened*; this module answers *where the
wall time went*:

* :func:`self_wall` / :func:`attribution` -- per-span self time (own
  wall minus children) and per-stage attribution for one trace, so a
  slow ``verifier.poll`` decomposes into named stages plus an explicit
  ``(self)`` remainder instead of an opaque total;
* :func:`critical_path` -- the chain of heaviest children from the
  root down, i.e. the minimal set of spans that bounded the trace's
  latency (everything in a synchronous round *is* on some path; the
  critical one is where optimisation pays);
* :func:`profile` / :func:`diff_profiles` -- per-name totals across
  many traces and the delta between two runs (cache-on vs cache-off,
  before vs after a fix);
* :func:`collapsed_stacks` -- the ``stack;frames count`` text format
  flamegraph tooling consumes.

Everything operates on :class:`repro.obs.tracing.Span` trees, whether
recorded live or rebuilt from a JSONL export by
:func:`repro.obs.tracestore.build_spans`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.tracing import Span

#: Label used for a span's own (non-child) time in attributions.
SELF_LABEL = "(self)"


def self_wall(span: Span) -> float:
    """Wall seconds spent in *span* itself, excluding its children.

    Clamped at zero: nested ``perf_counter`` reads can make the
    children's sum exceed the parent by scheduler noise.
    """
    return max(0.0, span.wall_duration - sum(c.wall_duration for c in span.children))


@dataclass
class PathStep:
    """One span on a critical path, with its share of the root's wall."""

    span: Span
    share: float  # fraction of the root's wall duration

    @property
    def name(self) -> str:
        """The span's name."""
        return self.span.name


def critical_path(root: Span) -> list[PathStep]:
    """The heaviest-child chain from *root* to a leaf.

    In a synchronous trace the children partition the parent's wall
    time; descending into the largest child at every level yields the
    chain that dominated the trace's latency.
    """
    total = root.wall_duration or 1.0
    path = [PathStep(root, root.wall_duration / total)]
    node = root
    while node.children:
        node = max(node.children, key=lambda child: child.wall_duration)
        path.append(PathStep(node, node.wall_duration / total))
    return path


def attribution(root: Span) -> dict[str, float]:
    """Wall seconds of *root* attributed to its direct stages.

    Keys are the direct children's names (summed when repeated, e.g. a
    re-challenge after reboot detection) plus :data:`SELF_LABEL` for
    the root's own remainder; values sum to the root's wall duration
    (modulo the self-time clamp), so the attribution covers ~100% of
    the poll by construction.
    """
    out: dict[str, float] = {}
    for child in root.children:
        out[child.name] = out.get(child.name, 0.0) + child.wall_duration
    out[SELF_LABEL] = self_wall(root)
    return out


def coverage(root: Span) -> float:
    """Fraction of the root's wall time its attribution accounts for."""
    if root.wall_duration <= 0.0:
        return 1.0
    return min(1.0, sum(attribution(root).values()) / root.wall_duration)


@dataclass
class ProfileEntry:
    """Aggregate totals for every span of one name."""

    name: str
    count: int = 0
    total_wall: float = 0.0
    self_wall: float = 0.0
    on_critical_path: int = 0

    @property
    def mean_wall(self) -> float:
        """Mean wall seconds per span."""
        return self.total_wall / self.count if self.count else 0.0


def profile(roots: Iterable[Span]) -> dict[str, ProfileEntry]:
    """Per-name totals (total wall, self wall, critical-path hits)."""
    out: dict[str, ProfileEntry] = {}
    for root in roots:
        on_path = {id(step.span) for step in critical_path(root)}
        for span in root.walk():
            entry = out.setdefault(span.name, ProfileEntry(span.name))
            entry.count += 1
            entry.total_wall += span.wall_duration
            entry.self_wall += self_wall(span)
            if id(span) in on_path:
                entry.on_critical_path += 1
    return out


@dataclass
class ProfileDelta:
    """One name's movement between two profiles."""

    name: str
    a: ProfileEntry | None
    b: ProfileEntry | None

    @property
    def delta_self(self) -> float:
        """Self-wall seconds gained (positive) or saved (negative)."""
        return (self.b.self_wall if self.b else 0.0) - (
            self.a.self_wall if self.a else 0.0
        )

    @property
    def delta_total(self) -> float:
        """Total-wall seconds gained (positive) or saved (negative)."""
        return (self.b.total_wall if self.b else 0.0) - (
            self.a.total_wall if self.a else 0.0
        )


def diff_profiles(
    a: dict[str, ProfileEntry], b: dict[str, ProfileEntry]
) -> list[ProfileDelta]:
    """Per-name deltas from profile *a* to profile *b*.

    Sorted by absolute self-time movement, biggest first -- the order
    you would read a cache-on vs cache-off comparison in.
    """
    deltas = [
        ProfileDelta(name, a.get(name), b.get(name))
        for name in sorted(set(a) | set(b))
    ]
    deltas.sort(key=lambda d: abs(d.delta_self), reverse=True)
    return deltas


def collapsed_stacks(roots: Iterable[Span]) -> dict[str, int]:
    """Flamegraph folds: ``root;child;leaf -> self-wall microseconds``.

    The standard collapsed-stack text format (`flamegraph.pl`,
    speedscope, inferno): one line per distinct stack, the count being
    the stack's accumulated *self* time in integer microseconds.
    """
    folds: dict[str, int] = {}

    def descend(span: Span, prefix: str) -> None:
        stack = f"{prefix};{span.name}" if prefix else span.name
        micros = int(round(self_wall(span) * 1_000_000))
        if micros > 0:
            folds[stack] = folds.get(stack, 0) + micros
        for child in span.children:
            descend(child, stack)

    for root in roots:
        descend(root, "")
    return folds


def collapsed_text(roots: Iterable[Span]) -> str:
    """The collapsed-stack folds as flamegraph-ready text lines."""
    folds = collapsed_stacks(roots)
    return "\n".join(f"{stack} {count}" for stack, count in sorted(folds.items()))


# -- rendering ---------------------------------------------------------------


def render_critical_path(root: Span) -> str:
    """Human-readable critical path with per-step shares."""
    lines = [
        f"critical path of {root.name} "
        f"(trace {root.trace_id}, wall {root.wall_duration * 1000:.3f}ms, "
        f"attribution coverage {coverage(root) * 100:.1f}%):"
    ]
    for depth, step in enumerate(critical_path(root)):
        pad = "  " * depth
        lines.append(
            f"  {pad}{step.name}  wall={step.span.wall_duration * 1000:.3f}ms "
            f"self={self_wall(step.span) * 1000:.3f}ms  ({step.share * 100:5.1f}%)"
        )
    stages = attribution(root)
    width = max(len(name) for name in stages)
    lines.append("  -- stage attribution --")
    for name, seconds in sorted(stages.items(), key=lambda kv: -kv[1]):
        share = seconds / root.wall_duration if root.wall_duration else 0.0
        lines.append(
            f"  {name.ljust(width)}  {seconds * 1000:9.3f}ms  ({share * 100:5.1f}%)"
        )
    return "\n".join(lines)


def render_profile(entries: dict[str, ProfileEntry], title: str = "profile") -> str:
    """Fixed-width per-name profile table, heaviest self-time first."""
    lines = [f"== {title} =="]
    if not entries:
        return lines[0] + "\n(no spans)"
    width = max(len(name) for name in entries)
    ordered = sorted(entries.values(), key=lambda e: e.self_wall, reverse=True)
    for entry in ordered:
        lines.append(
            f"  {entry.name.ljust(width)}  n={entry.count:<7d} "
            f"total={entry.total_wall * 1000:10.3f}ms "
            f"self={entry.self_wall * 1000:10.3f}ms "
            f"crit={entry.on_critical_path:<6d}"
        )
    return "\n".join(lines)


def render_diff(deltas: list[ProfileDelta], a_label: str = "A", b_label: str = "B") -> str:
    """Fixed-width diff table between two profiles."""
    lines = [f"== trace diff: {a_label} -> {b_label} (self-wall) =="]
    if not deltas:
        return lines[0] + "\n(no spans on either side)"
    width = max(len(delta.name) for delta in deltas)
    for delta in deltas:
        a_ms = (delta.a.self_wall if delta.a else 0.0) * 1000
        b_ms = (delta.b.self_wall if delta.b else 0.0) * 1000
        lines.append(
            f"  {delta.name.ljust(width)}  {a_label}={a_ms:10.3f}ms "
            f"{b_label}={b_ms:10.3f}ms  delta={delta.delta_self * 1000:+10.3f}ms"
        )
    return "\n".join(lines)
