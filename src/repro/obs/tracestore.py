"""A queryable store of finished traces.

:class:`repro.obs.tracing.SpanTracer` keeps its finished roots in a
blind deque: good enough for "print the last trace", useless for the
questions an incomplete attestation record (the paper's P2) makes
urgent -- *which polls were slow, which errored, what was agent X doing
between t0 and t1, and which trace does this p99 exemplar point at?*

:class:`SpanStore` answers those.  It ingests root spans as the tracer
finishes them (the tracer calls ``store.ingest(root)``), groups them
into per-trace entries -- one trace may arrive as several batches when
agent-side spans cross the serialised transport detached from their
verifier-side parents -- and maintains indexes by span name, agent,
and error status, plus insertion-ordered eviction with explicit loss
accounting.  Entries round-trip through the same JSONL span records
the exporters emit, and export to the Chrome/Perfetto trace-event
format for flamechart inspection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.obs.tracing import Span

#: Default cap on retained traces; old entries are evicted FIFO and the
#: loss is counted (``evicted_traces``/``evicted_spans``), never silent.
DEFAULT_MAX_TRACES = 10_000


def _coerce_trace_id(trace_id: int | str) -> int:
    """Accept a decimal int, decimal string, or 32-hex trace id."""
    if isinstance(trace_id, int):
        return trace_id
    text = str(trace_id).strip()
    if text.isdigit():
        return int(text)
    return int(text, 16)


@dataclass
class TraceEntry:
    """One trace: its root batches plus the derived index keys."""

    trace_id: int
    roots: list[Span] = field(default_factory=list)
    sequence: int = 0

    @property
    def primary(self) -> Span:
        """The trace's top span: the parentless root when one exists."""
        for root in self.roots:
            if root.parent_id is None:
                return root
        return self.roots[0]

    @property
    def name(self) -> str:
        """Name of the primary root span."""
        return self.primary.name

    @property
    def agent(self) -> str | None:
        """The ``agent`` attribute of the first span carrying one."""
        for span in self.walk():
            agent = span.attributes.get("agent")
            if agent is not None:
                return str(agent)
        return None

    @property
    def sim_start(self) -> float:
        """Earliest simulated start across the trace's batches."""
        return min(root.sim_start for root in self.roots)

    @property
    def sim_end(self) -> float:
        """Latest simulated end across the trace's batches."""
        ends = [root.sim_end for root in self.roots if root.sim_end is not None]
        return max(ends) if ends else self.sim_start

    @property
    def wall_duration(self) -> float:
        """Wall seconds of the primary root."""
        return self.primary.wall_duration

    @property
    def error(self) -> bool:
        """True when any span of the trace closed with an error status."""
        return any(span.status == "error" for span in self.walk())

    @property
    def span_count(self) -> int:
        """Total spans across every batch."""
        return sum(1 for _ in self.walk())

    def walk(self) -> Iterator[Span]:
        """Every span of every batch, depth-first within each root."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> Span | None:
        """First span with the given name, searching every batch."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def heaviest(self, name: str) -> Span | None:
        """The longest-wall span of the given name, if any."""
        named = [span for span in self.walk() if span.name == name]
        if not named:
            return None
        return max(named, key=lambda span: span.wall_duration)

    def named_wall(self, name: str) -> float:
        """Wall seconds of the heaviest span with the given name (0.0 if none)."""
        span = self.heaviest(name)
        return span.wall_duration if span is not None else 0.0


class SpanStore:
    """Indexed, bounded retention of finished traces.

    Unlike the tracer's deque, eviction here is *accounted*: the
    ``evicted_traces`` / ``evicted_spans`` counters grow with every
    FIFO drop, and :meth:`stats` reports the live footprint.
    """

    def __init__(self, max_traces: int = DEFAULT_MAX_TRACES) -> None:
        self.max_traces = max_traces
        self.evicted_traces = 0
        self.evicted_spans = 0
        self._entries: dict[int, TraceEntry] = {}
        self._order: list[int] = []  # insertion order, for FIFO eviction
        self._by_name: dict[str, set[int]] = {}
        self._by_agent: dict[str, set[int]] = {}
        self._errors: set[int] = set()
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def span_count(self) -> int:
        """Spans currently retained, across every trace."""
        return sum(entry.span_count for entry in self._entries.values())

    # -- ingestion ---------------------------------------------------------

    def ingest(self, root: Span) -> TraceEntry:
        """Add one finished root (a whole trace, or one remote batch).

        Batches sharing a ``trace_id`` merge into one entry; a batch
        whose root's ``parent_id`` matches an already-stored span is
        re-attached as its child, completing the tree a serialised
        channel delivered in pieces.
        """
        entry = self._entries.get(root.trace_id)
        if entry is None:
            self._sequence += 1
            entry = TraceEntry(trace_id=root.trace_id, sequence=self._sequence)
            self._entries[root.trace_id] = entry
            self._order.append(root.trace_id)
        else:
            self._unindex(entry)
        if not self._reattach(entry, root):
            entry.roots.append(root)
        self._index(entry)
        self._evict()
        return entry

    def _reattach(self, entry: TraceEntry, root: Span) -> bool:
        if root.parent_id is None:
            # A parentless root may be the late-arriving parent of
            # earlier detached batches: adopt any batch naming one of
            # its spans, unless the batch's linkage went unverified at
            # record time (a tampered traceparent stays detached).
            by_id = {span.span_id: span for span in root.walk()}
            for pending in list(entry.roots):
                parent = by_id.get(pending.parent_id)
                unverified = pending.attributes.get("traceparent.resolved") is False
                if parent is not None and not unverified:
                    parent.children.append(pending)
                    entry.roots.remove(pending)
            return False
        for existing in entry.roots:
            for span in existing.walk():
                if span.span_id == root.parent_id:
                    if root.attributes.get("traceparent.resolved") is False:
                        return False  # unverified linkage stays detached
                    span.children.append(root)
                    return True
        return False

    def _index(self, entry: TraceEntry) -> None:
        # Every span name in the trace, not just the primary root's:
        # a fleet batch trace must be findable by "verifier.poll" even
        # though its root is "fleet.poll_batch".
        for name in {span.name for span in entry.walk()}:
            self._by_name.setdefault(name, set()).add(entry.trace_id)
        agent = entry.agent
        if agent is not None:
            self._by_agent.setdefault(agent, set()).add(entry.trace_id)
        if entry.error:
            self._errors.add(entry.trace_id)

    def _unindex(self, entry: TraceEntry) -> None:
        for index in (self._by_name, self._by_agent):
            for key in list(index):
                index[key].discard(entry.trace_id)
                if not index[key]:
                    del index[key]
        self._errors.discard(entry.trace_id)

    def _evict(self) -> None:
        while len(self._order) > self.max_traces:
            trace_id = self._order.pop(0)
            entry = self._entries.pop(trace_id, None)
            if entry is None:
                continue
            self._unindex(entry)
            self.evicted_traces += 1
            self.evicted_spans += entry.span_count

    # -- lookup ------------------------------------------------------------

    def get(self, trace_id: int | str) -> TraceEntry | None:
        """The entry for a trace id (int, decimal string, or hex)."""
        try:
            return self._entries.get(_coerce_trace_id(trace_id))
        except ValueError:
            return None

    def resolve_exemplar(self, exemplar: dict[str, Any]) -> TraceEntry | None:
        """The trace a histogram exemplar's ``trace_id`` points at."""
        trace_id = exemplar.get("trace_id")
        if trace_id is None:
            return None
        return self.get(trace_id)

    def entries(self) -> list[TraceEntry]:
        """Every retained trace, oldest first."""
        return [self._entries[tid] for tid in self._order if tid in self._entries]

    def names(self) -> list[str]:
        """Distinct span names seen across retained traces, sorted."""
        return sorted(self._by_name)

    def agents(self) -> list[str]:
        """Distinct agent attributes seen, sorted."""
        return sorted(self._by_agent)

    def query(
        self,
        name: str | None = None,
        agent: str | None = None,
        errors_only: bool = False,
        since: float | None = None,
        until: float | None = None,
        min_wall: float | None = None,
        limit: int | None = None,
    ) -> list[TraceEntry]:
        """Traces matching every given filter, oldest first.

        *since*/*until* select on the simulated timeline (a trace
        matches when its ``[sim_start, sim_end]`` overlaps the window);
        *min_wall* is a wall-seconds floor on the primary root.  The
        name/agent/error filters use the maintained indexes, so a
        narrow query never scans the whole store.
        """
        candidates: set[int] | None = None
        if name is not None:
            candidates = set(self._by_name.get(name, ()))
        if agent is not None:
            matched = self._by_agent.get(agent, set())
            candidates = matched if candidates is None else candidates & matched
        if errors_only:
            candidates = (
                set(self._errors) if candidates is None else candidates & self._errors
            )
        out: list[TraceEntry] = []
        for trace_id in self._order:
            if candidates is not None and trace_id not in candidates:
                continue
            entry = self._entries.get(trace_id)
            if entry is None:
                continue
            if since is not None and entry.sim_end < since:
                continue
            if until is not None and entry.sim_start > until:
                continue
            if min_wall is not None and entry.wall_duration < min_wall:
                continue
            out.append(entry)
            if limit is not None and len(out) >= limit:
                break
        return out

    def percentile(self, q: float, name: str | None = None) -> float:
        """Nearest-rank wall-duration percentile over matching traces.

        With *name*, the measured duration is the named span's (its
        heaviest occurrence per trace); without, the primary root's.
        """
        durations = sorted(
            entry.named_wall(name) if name is not None else entry.wall_duration
            for entry in self.query(name=name)
        )
        if not durations:
            return 0.0
        rank = min(int(q * len(durations)), len(durations) - 1)
        return durations[rank]

    def slowest(self, n: int = 5, name: str | None = None) -> list[TraceEntry]:
        """The *n* slowest matching traces, slowest first.

        With *name*, traces are ranked by the named span's wall time;
        without, by the primary root's.
        """
        matched = self.query(name=name)
        key = (
            (lambda entry: entry.named_wall(name))
            if name is not None
            else (lambda entry: entry.wall_duration)
        )
        matched.sort(key=key, reverse=True)
        return matched[:n]

    def stats(self) -> dict[str, int]:
        """Retention accounting: live and evicted footprint."""
        return {
            "traces": len(self._entries),
            "spans": self.span_count,
            "evicted_traces": self.evicted_traces,
            "evicted_spans": self.evicted_spans,
        }

    # -- persistence -------------------------------------------------------

    def to_records(self) -> list[dict[str, Any]]:
        """Flat span records (the exporters' JSONL shape), oldest first."""
        return [span_record(span) for entry in self.entries() for span in entry.walk()]

    def dump_jsonl(self) -> str:
        """One span record per line, loadable by :meth:`from_records`."""
        lines = [json.dumps(record, sort_keys=True) for record in self.to_records()]
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_records(
        cls, records: Iterable[dict[str, Any]], max_traces: int = DEFAULT_MAX_TRACES
    ) -> "SpanStore":
        """Rebuild a store from JSONL records (``type: span`` ones)."""
        store = cls(max_traces=max_traces)
        for root in build_spans(records):
            store.ingest(root)
        return store

    @classmethod
    def load_jsonl(cls, text: str) -> "SpanStore":
        """Rebuild a store from a :meth:`dump_jsonl` blob."""
        records = [json.loads(line) for line in text.splitlines() if line.strip()]
        return cls.from_records(records)


def span_record(span: Span) -> dict[str, Any]:
    """The JSONL dict for one span (the exporters' ``type: span`` shape)."""
    return {
        "type": "span",
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "sim_start": span.sim_start,
        "sim_end": span.sim_end,
        "sim_duration": span.sim_duration,
        "wall_ms": span.wall_duration * 1000.0,
        "status": span.status,
        "attributes": dict(span.attributes),
    }


def span_from_record(record: dict[str, Any]) -> Span:
    """One detached :class:`Span` from its JSONL record."""
    wall_ms = float(record.get("wall_ms", 0.0))
    sim_start = float(record.get("sim_start", 0.0))
    sim_end = record.get("sim_end")
    return Span(
        name=record["name"],
        span_id=int(record["span_id"]),
        trace_id=int(record["trace_id"]),
        parent_id=(
            int(record["parent_id"]) if record.get("parent_id") is not None else None
        ),
        sim_start=sim_start,
        wall_start=0.0,
        sim_end=float(sim_end) if sim_end is not None else sim_start,
        wall_end=wall_ms / 1000.0,
        attributes=dict(record.get("attributes", ())),
        status=record.get("status", "ok"),
    )


def build_spans(records: Iterable[dict[str, Any]]) -> list[Span]:
    """Reconstruct span trees from flat records; returns the roots.

    Non-span records are ignored, so a whole JSONL export can be fed
    straight in.  A span whose parent is absent from the batch becomes
    a root of its own (a partial trace batch), which is exactly how
    :meth:`SpanStore.ingest` expects remote batches to arrive.
    """
    spans: dict[int, Span] = {}
    ordered: list[Span] = []
    for record in records:
        if record.get("type", "span") != "span" or "span_id" not in record:
            continue
        span = span_from_record(record)
        spans[span.span_id] = span
        ordered.append(span)
    roots: list[Span] = []
    for span in ordered:
        parent = spans.get(span.parent_id) if span.parent_id is not None else None
        if parent is not None and parent.trace_id == span.trace_id:
            parent.children.append(span)
        else:
            roots.append(span)
    return roots


# -- Chrome/Perfetto trace-event export -------------------------------------


def perfetto_trace(
    entries: Iterable[TraceEntry], time_scale_us: float = 1_000_000.0
) -> dict[str, Any]:
    """Chrome trace-event JSON for *entries* (Perfetto-loadable).

    Each trace is laid out at its simulated start time; spans within a
    trace are offset by their wall-clock position relative to the
    trace's primary root, so the flamechart shows both *when* in the
    experiment a poll ran and *where* its wall time went.  One thread
    lane per agent (lane 0 for agent-less traces), complete events
    (``ph: "X"``) with microsecond timestamps.
    """
    events: list[dict[str, Any]] = []
    lanes: dict[str, int] = {}
    for entry in entries:
        agent = entry.agent or "(none)"
        if agent not in lanes:
            lanes[agent] = len(lanes) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": lanes[agent],
                    "args": {"name": f"agent {agent}"},
                }
            )
        tid = lanes[agent]
        base_wall = entry.primary.wall_start
        base_ts = entry.sim_start * time_scale_us
        for span in entry.walk():
            offset_us = max(0.0, (span.wall_start - base_wall)) * 1_000_000.0
            events.append(
                {
                    "name": span.name,
                    "cat": "attestation",
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": base_ts + offset_us,
                    "dur": span.wall_duration * 1_000_000.0,
                    "args": {
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                        "status": span.status,
                        "sim_start": span.sim_start,
                        **{str(k): v for k, v in span.attributes.items()},
                    },
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
