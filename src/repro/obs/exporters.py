"""Exporters for the telemetry layer.

Three formats, in increasing order of machine-friendliness:

* :func:`console_summary` -- a human-readable table of every metric and
  a per-name span roll-up, printed by ``repro-cli obs``.
* :func:`prometheus_text` -- the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` / samples; histograms as cumulative ``le``
  buckets plus ``_sum``/``_count``), so a scrape endpoint or ``promtool``
  can consume a run's metrics directly.
* :func:`jsonl_dump` -- one JSON object per line for both metrics and
  spans, the interchange format the analysis layer and benchmarks use.

:func:`parse_prometheus_text` and :func:`load_jsonl` are the matching
readers; the exporter tests round-trip through them.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from typing import Any, Iterable

from repro.obs.metrics import (
    CounterChild,
    GaugeChild,
    HistogramChild,
    MetricsRegistry,
    SUMMARY_QUANTILES,
)
from repro.obs.tracing import Span, SpanTracer

# -- Prometheus text exposition --------------------------------------------


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help_text(value: str) -> str:
    # HELP lines escape only backslash and newline (quotes stay as-is).
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_exemplar(exemplar: dict) -> str:
    """OpenMetrics-style exemplar suffix for a ``_bucket`` sample line.

    ``# {trace_id="...",span_id="..."} value`` -- trace/span ids in the
    W3C fixed-width hex the traceparent wire field uses, so the ids in
    a scrape match the ids in a trace export byte-for-byte.
    """
    labels = {
        "trace_id": f"{int(exemplar['trace_id']):032x}",
        "span_id": f"{int(exemplar['span_id']):016x}",
    }
    return f" # {_format_labels(labels)} {_format_value(exemplar.get('value', 0.0))}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every metric in the Prometheus text exposition format.

    Histogram buckets that captured an exemplar carry an
    OpenMetrics-style ``# {trace_id=...,span_id=...} value`` suffix;
    :func:`parse_prometheus_text` (and plain Prometheus scrapers in
    OpenMetrics mode) tolerate it.
    """
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape_help_text(family.help_text)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in family.samples():
            if isinstance(child, HistogramChild):
                for index, (bound, cumulative) in enumerate(
                    child.cumulative_buckets()
                ):
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bound)
                    exemplar = child.exemplars.get(index)
                    lines.append(
                        f"{family.name}_bucket{_format_labels(bucket_labels)}"
                        f" {cumulative}"
                        + (_format_exemplar(exemplar) if exemplar else "")
                    )
                lines.append(
                    f"{family.name}_sum{_format_labels(labels)}"
                    f" {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{_format_labels(labels)} {child.count}")
            else:
                lines.append(
                    f"{family.name}{_format_labels(labels)}"
                    f" {_format_value(child.value)}"
                )
    overflow = registry.label_overflow()
    if overflow:
        name = "telemetry_label_sets_overflowed_total"
        lines.append(
            f"# HELP {name} Label-sets collapsed by the per-metric cardinality cap"
        )
        lines.append(f"# TYPE {name} counter")
        for metric in sorted(overflow):
            lines.append(
                f"{name}{_format_labels({'metric': metric})} {overflow[metric]}"
            )
    return "\n".join(lines) + "\n"


def parse_prometheus_text(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text back into ``{(name, labels): value}``.

    Labels are a sorted tuple of ``(key, value)`` pairs.  Only the
    sample lines are parsed; HELP/TYPE comments are skipped.  This is a
    test/analysis helper, not a full Prometheus parser.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        # Drop an OpenMetrics exemplar suffix (` # {...} value`) so the
        # sample value parses cleanly.
        line = line.split(" # ", 1)[0].rstrip()
        name_part, _, value_part = line.rpartition(" ")
        labels: list[tuple[str, str]] = []
        if "{" in name_part:
            name, _, label_blob = name_part.partition("{")
            label_blob = label_blob.rstrip("}")
            for piece in _split_label_pairs(label_blob):
                key, _, raw = piece.partition("=")
                value = raw.strip('"')
                value = (
                    value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
                )
                labels.append((key, value))
        else:
            name = name_part
        samples[(name, tuple(sorted(labels)))] = float(
            value_part.replace("+Inf", "inf")
        )
    return samples


def _split_label_pairs(blob: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    pieces: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for char in blob:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            pieces.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        pieces.append("".join(current))
    return pieces


# -- JSONL ------------------------------------------------------------------


def _metric_record(family, labels: dict[str, str], child) -> dict[str, Any]:
    record: dict[str, Any] = {
        "type": "metric",
        "kind": family.kind,
        "name": family.name,
        "labels": labels,
    }
    if isinstance(child, HistogramChild):
        record["count"] = child.count
        record["sum"] = child.sum
        record["buckets"] = [
            [("+Inf" if math.isinf(bound) else bound), cumulative]
            for bound, cumulative in child.cumulative_buckets()
        ]
        record["quantiles"] = {
            str(q): child.quantile(q) for q in SUMMARY_QUANTILES
        }
        if child.exemplars:
            record["exemplars"] = {
                _format_value(child.bucket_bound(index)): exemplar
                for index, exemplar in sorted(child.exemplars.items())
            }
    else:
        record["value"] = child.value
    return record


def _span_record(span: Span) -> dict[str, Any]:
    return {
        "type": "span",
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "sim_start": span.sim_start,
        "sim_end": span.sim_end,
        "sim_duration": span.sim_duration,
        "wall_ms": span.wall_duration * 1000.0,
        "status": span.status,
        "attributes": span.attributes,
    }


def _event_record(record) -> dict[str, Any]:
    return {
        "type": "event",
        "time": record.time,
        "source": record.source,
        "kind": record.kind,
        "details": record.details,
    }


def _audit_export_record(record) -> dict[str, Any]:
    return {
        "type": "audit",
        "index": record.index,
        "time": record.time,
        "agent": record.agent_id,
        "ok": record.ok,
        "detail": record.detail,
        "previous_hash": record.previous_hash,
        "record_hash": record.record_hash,
    }


def jsonl_records(
    registry: MetricsRegistry,
    tracer: SpanTracer | None = None,
    events=None,
    audit=None,
    extra_records: Iterable[dict[str, Any]] | None = None,
) -> Iterable[dict[str, Any]]:
    """Yield every export record, in dump order, one dict at a time.

    This is the streaming core of :func:`jsonl_dump`: nothing here
    materialises the full record list, so a long TSDB-backed run can be
    exported in O(1) memory via :func:`write_jsonl_atomic`.
    *extra_records* may itself be a generator (e.g.
    :meth:`repro.obs.tsdb.TsdbStore.export_records`).
    """
    for family in registry.families():
        for labels, child in family.samples():
            yield _metric_record(family, labels, child)
    if tracer is not None:
        for span in tracer.iter_spans():
            yield _span_record(span)
    if events is not None:
        for record in events:
            yield _event_record(record)
    if audit is not None:
        for record in audit.records():
            yield _audit_export_record(record)
    for record in extra_records or ():
        yield record


def jsonl_dump(
    registry: MetricsRegistry,
    tracer: SpanTracer | None = None,
    events=None,
    audit=None,
    extra_records: Iterable[dict[str, Any]] | None = None,
) -> str:
    """One JSON object per line: metrics, spans, events, audit records.

    *events* is an :class:`repro.common.events.EventLog` and *audit* an
    :class:`repro.keylime.audit.AuditLog`; both optional.  Passing them
    makes the export self-contained enough for ``repro-cli obs report``
    to rebuild incident timelines post-hoc.  *extra_records* (already
    dict-shaped, e.g. incident reports or run metadata) are appended
    verbatim.

    Convenient for tests and small runs; writers should prefer
    :func:`write_jsonl_atomic`, which streams the same records to disk
    without building the whole blob in memory.
    """
    lines = [
        json.dumps(record, sort_keys=True)
        for record in jsonl_records(
            registry, tracer, events=events, audit=audit,
            extra_records=extra_records,
        )
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def _atomic_writer(path: str, write) -> None:
    """Run *write(handle)* against a same-directory temp file, then
    fsync + rename over *path* -- the shared atomicity core."""
    directory = os.path.dirname(os.path.abspath(path))
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=directory,
        prefix=os.path.basename(path) + ".", suffix=".tmp", delete=False,
    )
    try:
        with handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def write_text_atomic(path: str, text: str) -> None:
    """Write *text* to *path* via a same-directory temp file + rename.

    A run killed mid-export never leaves a truncated file behind: the
    replace is atomic, so readers see either the old content or the
    complete new one.
    """
    _atomic_writer(path, lambda handle: handle.write(text))


def write_jsonl_atomic(path: str, records: Iterable[dict[str, Any]]) -> int:
    """Stream *records* to *path* as JSONL, atomically; returns lines.

    Each record is serialised and written as it is produced -- O(1)
    memory regardless of export size -- while keeping the temp-file +
    ``os.replace`` guarantee of :func:`write_text_atomic`: a crash
    mid-stream leaves the previous file intact, never a truncated one.
    """
    written = 0

    def _write(handle) -> None:
        nonlocal written
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            written += 1

    _atomic_writer(path, _write)
    return written


def load_jsonl(text: str) -> list[dict[str, Any]]:
    """Parse a :func:`jsonl_dump` blob back into records."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


# -- console summary --------------------------------------------------------


def console_summary(registry: MetricsRegistry, tracer: SpanTracer | None = None) -> str:
    """A fixed-width summary table of metrics and span roll-ups."""
    lines: list[str] = ["== telemetry summary =="]
    families = registry.families()
    if not families:
        lines.append("(no metrics recorded)")
    for family in families:
        for labels, child in family.samples():
            label_text = _format_labels(labels)
            if isinstance(child, HistogramChild):
                q50, q90, q99 = (child.quantile(q) for q in SUMMARY_QUANTILES)
                lines.append(
                    f"  {family.name}{label_text}: count={child.count} "
                    f"mean={child.mean:.6f} p50={q50:.6f} p90={q90:.6f} "
                    f"p99={q99:.6f} sum={child.sum:.6f}"
                )
            else:
                lines.append(
                    f"  {family.name}{label_text}: {_format_value(child.value)}"
                )
    if tracer is not None:
        stats = tracer.aggregate()
        if stats:
            lines.append("-- spans (per name) --")
            width = max(len(name) for name in stats)
            for name in sorted(stats):
                entry = stats[name]
                lines.append(
                    f"  {name.ljust(width)}  n={entry.count:<7d} "
                    f"wall_total={entry.wall_total * 1000:10.3f}ms "
                    f"wall_mean={entry.wall_mean * 1000:8.4f}ms "
                    f"sim_total={entry.sim_total:10.1f}s"
                )
        last = tracer.last_trace()
        if last is not None:
            lines.append("-- last trace --")
            lines.extend("  " + line for line in last.tree_lines())
        if tracer.dropped_roots:
            lines.append(f"  (dropped {tracer.dropped_roots} oldest traces)")
    return "\n".join(lines)
