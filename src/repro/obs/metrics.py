"""A labeled metrics registry cheap enough for the attestation hot paths.

The experiment harness keeps its *measurement* concerns in
:class:`repro.common.events.EventLog`; this module is the *operational*
side: counters, gauges and histograms that the verifier poll loop, the
IMA engine and the mirror/generator pipeline update tens of thousands of
times per simulated month.  The design constraints are therefore:

* **Get-or-create instruments.**  Hot call sites do
  ``registry.counter("name").inc()`` on every event; ``counter()`` must
  be a dictionary lookup, not a registration ceremony.
* **Labels as cached children.**  ``family.labels(kind="policy")``
  returns a mutable child keyed by the label values, so the per-call
  cost after the first observation is two dict lookups.
* **Null objects.**  When telemetry is disabled (the default), the
  module-level :data:`NULL_REGISTRY` absorbs every call without
  allocating, so instrumented code needs no ``if enabled`` guards.

Histograms keep fixed cumulative buckets (Prometheus ``le`` semantics:
a bucket with bound ``b`` counts observations ``<= b``) *and* a bounded
ring-buffer reservoir from which quantile summaries are computed on
demand -- both deterministic, no sampling randomness.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator

from repro.common.errors import ConfigurationError

#: Default histogram bounds, tuned for wall-clock seconds of the
#: operations this codebase times (sub-millisecond PCR extends up to
#: multi-second full-mirror generator runs).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Quantiles reported by summaries (console table, JSONL dump).
SUMMARY_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)

#: Ring-buffer capacity of the histogram quantile reservoir.
RESERVOIR_SIZE = 1024

#: Default cap on distinct label-sets per metric family.  A fleet-scale
#: run that labels by agent id stays well under this; a bug that labels
#: by nonce or path would otherwise grow the registry without bound.
DEFAULT_MAX_LABEL_SETS = 2048

#: Label value every over-cap label-set collapses into.
OVERFLOW_LABEL_VALUE = "_overflow"


class CounterChild:
    """One (label-set, value) cell of a counter family."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class GaugeChild:
    """One cell of a gauge family; free to move in both directions."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to *value*."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* to the gauge."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract *amount* from the gauge."""
        self.value -= amount


class HistogramChild:
    """One cell of a histogram family: buckets, sum/count, reservoir.

    Passing an *exemplar* (a ``{"trace_id": ..., "span_id": ...}`` dict,
    see :func:`repro.obs.tracing.exemplar_of`) to :meth:`observe` keeps
    one exemplar per bucket -- the latest sample that landed there, a
    deterministic rule under the deterministic sim -- so a p99 bucket in
    the export links straight to the trace that produced it.
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count", "_reservoir", "exemplars")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        # One slot per finite bound plus the +Inf overflow slot.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._reservoir: list[float] = []
        #: bucket index -> the latest exemplar that landed in it.
        self.exemplars: dict[int, dict] = {}

    def observe(self, value: float, exemplar: dict | None = None) -> None:
        """Record one observation (optionally carrying a trace exemplar)."""
        bucket = bisect_left(self.bounds, value)
        self.bucket_counts[bucket] += 1
        self.sum += value
        if exemplar is not None:
            self.exemplars[bucket] = {**exemplar, "value": value}
        if len(self._reservoir) < RESERVOIR_SIZE:
            self._reservoir.append(value)
        else:
            self._reservoir[self.count % RESERVOIR_SIZE] = value
        self.count += 1

    def bucket_bound(self, index: int) -> float:
        """The ``le`` bound of bucket *index* (+Inf for the overflow slot)."""
        return self.bounds[index] if index < len(self.bounds) else float("inf")

    def exemplar_for_quantile(self, q: float) -> dict | None:
        """The exemplar of the bucket the q-quantile falls in, if any.

        Prefers the quantile's own bucket, then the nearest populated
        bucket above it (a slower tail sample), then below -- so "the
        p99 trace" resolves even when the exact p99 bucket saw no
        exemplar-carrying sample.
        """
        if not self.exemplars:
            return None
        target = bisect_left(self.bounds, self.quantile(q))
        for bucket in range(target, len(self.bucket_counts)):
            if bucket in self.exemplars:
                return self.exemplars[bucket]
        for bucket in range(target - 1, -1, -1):
            if bucket in self.exemplars:
                return self.exemplars[bucket]
        return None

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the (bounded) reservoir.

        Exact while fewer than :data:`RESERVOIR_SIZE` observations have
        been made; an approximation over the most recent window after.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        rank = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[rank]

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0


_CHILD_TYPES = {
    "counter": CounterChild,
    "gauge": GaugeChild,
    "histogram": HistogramChild,
}


class MetricFamily:
    """A named metric plus its per-label-set children."""

    def __init__(
        self,
        kind: str,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
        max_label_sets: int | None = DEFAULT_MAX_LABEL_SETS,
    ) -> None:
        self.kind = kind
        self.name = name
        self.help_text = help_text
        self.labelnames = labelnames
        self.buckets = buckets
        self.max_label_sets = max_label_sets
        self.overflowed_label_sets = 0
        self._children: dict[tuple[str, ...], object] = {}

    def _new_child(self):
        if self.kind == "histogram":
            return HistogramChild(self.buckets or DEFAULT_BUCKETS)
        return _CHILD_TYPES[self.kind]()

    def labels(self, **labelvalues: str):
        """The child for the given label values (created on first use)."""
        if tuple(sorted(labelvalues)) != tuple(sorted(self.labelnames)):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {list(self.labelnames)}, "
                f"got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            if (
                self.labelnames
                and self.max_label_sets is not None
                and len(self._children) >= self.max_label_sets
            ):
                # Cardinality guard: collapse every over-cap label-set
                # into one overflow cell instead of growing the registry.
                self.overflowed_label_sets += 1
                key = (OVERFLOW_LABEL_VALUE,) * len(self.labelnames)
                child = self._children.get(key)
                if child is None:
                    child = self._new_child()
                    self._children[key] = child
                return child
            child = self._new_child()
            self._children[key] = child
        return child

    def _default_child(self):
        if self.labelnames:
            raise ConfigurationError(
                f"metric {self.name!r} is labeled; use .labels(...) first"
            )
        return self.labels()

    # Unlabeled conveniences, so `registry.counter("x").inc()` works.

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled child (counters and gauges)."""
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the unlabeled child (gauges)."""
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        """Set the unlabeled child (gauges)."""
        self._default_child().set(value)

    def observe(self, value: float, exemplar: dict | None = None) -> None:
        """Observe into the unlabeled child (histograms)."""
        self._default_child().observe(value, exemplar=exemplar)

    @property
    def value(self) -> float:
        """Value of the unlabeled child (counters and gauges)."""
        return self._default_child().value

    def samples(self) -> Iterator[tuple[dict[str, str], object]]:
        """Yield ``(labels_dict, child)`` in insertion order."""
        for key, child in self._children.items():
            yield dict(zip(self.labelnames, key)), child


class MetricsRegistry:
    """Get-or-create home of every metric family.

    ``max_label_sets`` bounds the distinct label-sets each family may
    hold; past the cap, new label-sets collapse into a shared
    ``_overflow`` cell and the family's ``overflowed_label_sets``
    warning counter grows (see :meth:`label_overflow`).
    """

    def __init__(self, max_label_sets: int | None = DEFAULT_MAX_LABEL_SETS) -> None:
        self.max_label_sets = max_label_sets
        self._families: dict[str, MetricFamily] = {}

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def _family(
        self,
        kind: str,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(
                kind, name, help_text, tuple(labelnames), buckets,
                max_label_sets=self.max_label_sets,
            )
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as a {family.kind}, "
                f"cannot re-register as a {kind}"
            )
        if family.labelnames != tuple(labelnames):
            raise ConfigurationError(
                f"metric {name!r} already registered with labels "
                f"{list(family.labelnames)}, got {list(labelnames)}"
            )
        return family

    def counter(
        self, name: str, help_text: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily:
        """Get or create a counter family."""
        return self._family("counter", name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily:
        """Get or create a gauge family."""
        return self._family("gauge", name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Get or create a histogram family with the given bounds."""
        return self._family("histogram", name, help_text, labelnames, tuple(buckets))

    def families(self) -> list[MetricFamily]:
        """Every registered family, sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> MetricFamily | None:
        """The family registered under *name*, or ``None``."""
        return self._families.get(name)

    def label_overflow(self) -> dict[str, int]:
        """Per-family count of label-sets collapsed by the cardinality cap."""
        return {
            family.name: family.overflowed_label_sets
            for family in self._families.values()
            if family.overflowed_label_sets
        }

    def series_count(self) -> int:
        """Distinct (family, label-set) cells currently registered.

        This is the scrape cardinality: how many time-series one TSDB
        scrape of this registry produces, histogram bucket expansion
        aside.
        """
        return sum(
            len(family._children) or 1 for family in self._families.values()
        )


class _NullInstrument:
    """Absorbs the whole instrument API; shared singleton, no state."""

    __slots__ = ()

    def labels(self, **labelvalues: str) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, exemplar: dict | None = None) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Registry stand-in used while telemetry is disabled."""

    __slots__ = ()

    def counter(self, name, help_text="", labelnames=()):  # noqa: D102
        return _NULL_INSTRUMENT

    def gauge(self, name, help_text="", labelnames=()):  # noqa: D102
        return _NULL_INSTRUMENT

    def histogram(self, name, help_text="", labelnames=(), buckets=()):  # noqa: D102
        return _NULL_INSTRUMENT

    def families(self):  # noqa: D102
        return []

    def get(self, name):  # noqa: D102
        return None

    def label_overflow(self):  # noqa: D102
        return {}

    def series_count(self) -> int:  # noqa: D102
        return 0

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False


NULL_REGISTRY = NullRegistry()
