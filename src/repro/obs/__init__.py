"""Operational telemetry: metrics, tracing, health, alerting, incidents.

See :mod:`repro.obs.runtime` for the activation model,
:mod:`repro.obs.health` for the monitoring layer on top of it, and
``docs/OBSERVABILITY.md`` for the tour.
"""

from repro.obs.alerts import (
    Alert,
    AlertEngine,
    BurnRateRule,
    SloSet,
    SloTracker,
    standard_burn_rules,
    standard_slos,
)
from repro.obs.exporters import (
    console_summary,
    jsonl_dump,
    load_jsonl,
    parse_prometheus_text,
    prometheus_text,
    write_text_atomic,
)
from repro.obs.health import (
    CoverageGapDetector,
    Ewma,
    FailureRateDetector,
    HealthMonitor,
    HealthWatch,
    LatencyAnomalyDetector,
    SlidingWindow,
    render_dashboard,
)
from repro.obs.incidents import (
    IncidentCorrelator,
    IncidentReport,
    reports_from_export,
    split_export,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_MAX_LABEL_SETS,
    MetricFamily,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.runtime import (
    NULL_TELEMETRY,
    Telemetry,
    activate,
    deactivate,
    get,
    session,
)
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, SpanStats, SpanTracer

__all__ = [
    "Alert",
    "AlertEngine",
    "BurnRateRule",
    "CoverageGapDetector",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_LABEL_SETS",
    "Ewma",
    "FailureRateDetector",
    "HealthMonitor",
    "HealthWatch",
    "IncidentCorrelator",
    "IncidentReport",
    "LatencyAnomalyDetector",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "SlidingWindow",
    "SloSet",
    "SloTracker",
    "Span",
    "SpanStats",
    "SpanTracer",
    "Telemetry",
    "activate",
    "console_summary",
    "deactivate",
    "get",
    "jsonl_dump",
    "load_jsonl",
    "parse_prometheus_text",
    "prometheus_text",
    "render_dashboard",
    "reports_from_export",
    "session",
    "split_export",
    "standard_burn_rules",
    "standard_slos",
    "write_text_atomic",
]
