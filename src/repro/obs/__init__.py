"""Operational telemetry: metrics, span tracing, and exporters.

See :mod:`repro.obs.runtime` for the activation model, and
``docs/API.md`` ("Observability") for the tour.
"""

from repro.obs.exporters import (
    console_summary,
    jsonl_dump,
    load_jsonl,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.runtime import (
    NULL_TELEMETRY,
    Telemetry,
    activate,
    deactivate,
    get,
    session,
)
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, SpanStats, SpanTracer

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "Span",
    "SpanStats",
    "SpanTracer",
    "Telemetry",
    "activate",
    "console_summary",
    "deactivate",
    "get",
    "jsonl_dump",
    "load_jsonl",
    "parse_prometheus_text",
    "prometheus_text",
    "session",
]
