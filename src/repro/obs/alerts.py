"""SLO tracking and burn-rate alerting over the attestation telemetry.

The paper's P2 failure mode is, operationally, an *alerting* failure:
the verifier halts, nothing watches the resulting silence, and the
attestation history goes dark exactly when an attacker wants it to.
This module provides the rule layer that turns telemetry streams into
structured :class:`Alert` events:

* :class:`SloTracker` -- a windowed good/bad sample store for one
  service-level objective (attestation freshness, poll success a.k.a.
  the false-positive budget, detection latency).  ``burn_rate`` follows
  the SRE convention: the rate at which the error budget is being
  consumed, where 1.0 means "exactly on budget".
* :class:`BurnRateRule` -- the multi-window burn-rate alert shape: fire
  only when both a long window (sustained burn) and a short window
  (still happening right now) exceed the factor, which keeps one
  transient false positive from paging while a sustained burn alerts
  within minutes.
* :class:`AlertEngine` -- evaluates rules, deduplicates firing state,
  and emits ``alert.fired`` / ``alert.resolved`` records into the
  shared :class:`repro.common.events.EventLog`, where the incident
  correlator (:mod:`repro.obs.incidents`) picks them up.

Detector signals from :mod:`repro.obs.health` enter through
:meth:`AlertEngine.ingest`, so anomaly detections and SLO burn alerts
flow through one deduplicated pipeline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.common.errors import ConfigurationError

#: Alert severities, mildest first.
SEVERITIES = ("info", "warning", "critical")

ALERT_SOURCE = "obs.alerts"


@dataclass(frozen=True)
class Alert:
    """One structured alert, as emitted into the EventLog."""

    time: float
    rule: str
    severity: str
    message: str
    agent: str | None = None
    detail: dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> tuple[str, str | None]:
        """Deduplication identity: one firing state per (rule, agent)."""
        return (self.rule, self.agent)

    def to_record(self) -> dict[str, Any]:
        """Dict form used for JSONL export."""
        return {
            "type": "alert",
            "time": self.time,
            "rule": self.rule,
            "severity": self.severity,
            "agent": self.agent,
            "message": self.message,
            "detail": self.detail,
        }


class SloTracker:
    """Windowed good/bad samples for one service-level objective.

    *objective* is the target good fraction (0.999 = "three nines");
    the error budget is ``1 - objective``.  Samples older than
    *max_window* are discarded, so memory stays bounded over a long
    simulated run.
    """

    def __init__(
        self,
        name: str,
        objective: float,
        description: str = "",
        max_window: float = 7 * 86400.0,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ConfigurationError(
                f"SLO objective must be in (0, 1), got {objective}"
            )
        self.name = name
        self.objective = objective
        self.description = description
        self.max_window = max_window
        self._samples: deque[tuple[float, bool]] = deque()
        self.total = 0
        self.total_bad = 0

    @property
    def error_budget(self) -> float:
        """The allowed bad fraction, ``1 - objective``."""
        return 1.0 - self.objective

    def record(self, now: float, good: bool) -> None:
        """Record one sample at *now* and expire anything out of window."""
        self._samples.append((now, bool(good)))
        self.total += 1
        if not good:
            self.total_bad += 1
        horizon = now - self.max_window
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def window_counts(self, window: float, now: float) -> tuple[int, int]:
        """``(total, bad)`` over the trailing *window* seconds."""
        start = now - window
        total = bad = 0
        for time, good in reversed(self._samples):
            if time < start:
                break
            total += 1
            if not good:
                bad += 1
        return total, bad

    def bad_fraction(self, window: float, now: float) -> float:
        """Fraction of bad samples over the trailing window (0.0 if empty)."""
        total, bad = self.window_counts(window, now)
        return bad / total if total else 0.0

    def burn_rate(self, window: float, now: float) -> float:
        """How many error budgets the trailing window is consuming."""
        return self.bad_fraction(window, now) / self.error_budget

    def budget_remaining(self, window: float, now: float) -> float:
        """Fraction of the error budget left over the trailing window."""
        return 1.0 - min(1.0, self.bad_fraction(window, now) / self.error_budget)


@dataclass
class BurnRateRule:
    """A multi-window, multi-burn-rate alert rule over one SLO.

    Fires while the burn rate exceeds *factor* over **both** windows:
    the long window proves the burn is sustained, the short window
    proves it is still happening.  *min_samples* suppresses evaluation
    until the long window holds enough samples to mean anything.
    """

    name: str
    tracker: SloTracker
    long_window: float
    short_window: float
    factor: float
    severity: str = "warning"
    min_samples: int = 6

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ConfigurationError(
                f"unknown severity {self.severity!r}; choose from {SEVERITIES}"
            )
        if self.short_window > self.long_window:
            raise ConfigurationError(
                f"rule {self.name!r}: short window {self.short_window} exceeds "
                f"long window {self.long_window}"
            )

    def evaluate(self, now: float) -> Alert | None:
        """The alert this rule is firing at *now*, or ``None``."""
        total, _ = self.tracker.window_counts(self.long_window, now)
        if total < self.min_samples:
            return None
        long_burn = self.tracker.burn_rate(self.long_window, now)
        short_burn = self.tracker.burn_rate(self.short_window, now)
        if long_burn < self.factor or short_burn < self.factor:
            return None
        return Alert(
            time=now,
            rule=self.name,
            severity=self.severity,
            message=(
                f"SLO {self.tracker.name!r} burning {long_burn:.1f}x budget "
                f"over {self.long_window / 3600.0:.1f}h "
                f"({short_burn:.1f}x over {self.short_window / 3600.0:.1f}h)"
            ),
            detail={
                "slo": self.tracker.name,
                "objective": self.tracker.objective,
                "long_window": self.long_window,
                "short_window": self.short_window,
                "long_burn_rate": round(long_burn, 3),
                "short_burn_rate": round(short_burn, 3),
                "factor": self.factor,
            },
        )


@dataclass
class SloSet:
    """The attestation SLOs the paper's setting implies."""

    freshness: SloTracker
    poll_success: SloTracker
    detection_latency: SloTracker
    # Saturation headroom (PR 7): one sample per fleet batch tick, bad
    # when the tick overran its budget.  Optional so SloSets built
    # before the capacity layer keep their shape.
    freshness_headroom: SloTracker | None = None

    def all(self) -> tuple[SloTracker, ...]:
        """The trackers, in declaration order."""
        trackers = (self.freshness, self.poll_success, self.detection_latency)
        if self.freshness_headroom is not None:
            trackers += (self.freshness_headroom,)
        return trackers


def standard_slos(max_window: float = 7 * 86400.0, make=SloTracker) -> SloSet:
    """The default SLO definitions.

    * **attestation freshness** (99%): at every monitor tick, every
      watched agent has a successful attestation no older than its
      freshness target -- the direct anti-P2 objective.
    * **poll success / FP budget** (99.5%): attestation rounds that
      pass.  A benign-workload run burning this budget is the paper's
      E1 false-positive problem showing up operationally.
    * **detection latency** (95%): gap/anomaly alerts raised within
      their target after the underlying condition began.
    * **freshness headroom** (95%): fleet batch ticks that finished
      inside their tick budget.  A burning headroom budget means the
      verifier is *about* to start missing freshness -- the capacity
      early-warning the saturation study (PR 7) adds.

    *make* is the tracker factory -- :class:`SloTracker` by default;
    :func:`repro.obs.rules.tsdb_slos` passes a TSDB-backed one so the
    same definitions drive store-resident trackers.
    """
    return SloSet(
        freshness=make(
            "attestation_freshness", 0.99,
            "watched agents have a fresh successful attestation",
            max_window=max_window,
        ),
        poll_success=make(
            "poll_success", 0.995,
            "attestation rounds that verify clean (FP budget)",
            max_window=max_window,
        ),
        detection_latency=make(
            "detection_latency", 0.95,
            "alerts raised within their detection-latency target",
            max_window=max_window,
        ),
        freshness_headroom=make(
            "freshness_headroom", 0.95,
            "fleet batch ticks that finished inside their tick budget",
            max_window=max_window,
        ),
    )


def standard_burn_rules(
    slos: SloSet, poll_interval: float = 1800.0
) -> list[BurnRateRule]:
    """Multi-window burn-rate rules scaled to the poll cadence.

    The classic SRE page/ticket windows (1h/5m at 14.4x, 6h/30m at 6x)
    assume request volumes; attestation emits one sample per agent per
    poll, so windows are expressed in poll intervals to keep the sample
    counts meaningful at any cadence.
    """
    fast_long = max(4 * poll_interval, 3600.0)
    slow_long = max(24 * poll_interval, 6 * 3600.0)
    rules = [
        BurnRateRule(
            "slo.freshness.fast_burn", slos.freshness,
            long_window=fast_long, short_window=fast_long / 4.0,
            factor=14.4, severity="critical",
        ),
        BurnRateRule(
            "slo.freshness.slow_burn", slos.freshness,
            long_window=slow_long, short_window=slow_long / 12.0,
            factor=6.0, severity="warning",
        ),
        BurnRateRule(
            "slo.poll_success.fast_burn", slos.poll_success,
            long_window=fast_long, short_window=fast_long / 4.0,
            factor=14.4, severity="critical",
        ),
        BurnRateRule(
            "slo.poll_success.slow_burn", slos.poll_success,
            long_window=slow_long, short_window=slow_long / 12.0,
            factor=6.0, severity="warning",
        ),
        BurnRateRule(
            "slo.detection_latency.burn", slos.detection_latency,
            long_window=slow_long, short_window=slow_long / 4.0,
            factor=4.0, severity="warning", min_samples=2,
        ),
    ]
    if slos.freshness_headroom is not None:
        # One sample per batch tick, so the fast window holds only ~4
        # samples -- a lower factor and min_samples keep the rule
        # responsive without firing on a single noisy tick.
        rules.append(BurnRateRule(
            "slo.freshness_headroom.burn", slos.freshness_headroom,
            long_window=fast_long, short_window=fast_long / 4.0,
            factor=4.0, severity="warning", min_samples=3,
        ))
    return rules


class AlertEngine:
    """Deduplicating rule evaluator that emits alerts into the EventLog.

    Two inputs feed it: :meth:`ingest` takes detector signals already
    shaped as :class:`Alert` (from :class:`repro.obs.health
    .HealthMonitor`), and :meth:`evaluate` runs the registered
    burn-rate rules.  Either way, a (rule, agent) pair fires once,
    stays active until it stops matching, then emits a resolve -- so a
    31-day run with a stuck agent produces one alert, not 1,400.
    """

    def __init__(self, events, source: str = ALERT_SOURCE) -> None:
        self.events = events
        self.source = source
        self.rules: list[BurnRateRule] = []
        self.history: list[Alert] = []
        self._active: dict[tuple[str, str | None], Alert] = {}

    def add_rule(self, rule: BurnRateRule) -> None:
        """Register a burn-rate rule for :meth:`evaluate`."""
        self.rules.append(rule)

    def add_rules(self, rules: Iterable[BurnRateRule]) -> None:
        """Register several rules at once."""
        for rule in rules:
            self.add_rule(rule)

    def active(self) -> list[Alert]:
        """Currently firing alerts, in firing order."""
        return list(self._active.values())

    def is_firing(self, rule: str, agent: str | None = None) -> bool:
        """Whether the (rule, agent) pair is currently active."""
        return (rule, agent) in self._active

    def _fire(self, alert: Alert) -> bool:
        if alert.key in self._active:
            return False
        self._active[alert.key] = alert
        self.history.append(alert)
        self.events.emit(
            alert.time, self.source, "alert.fired",
            rule=alert.rule, severity=alert.severity,
            agent=alert.agent, message=alert.message, **alert.detail,
        )
        return True

    def _resolve(self, key: tuple[str, str | None], now: float) -> None:
        alert = self._active.pop(key)
        self.events.emit(
            now, self.source, "alert.resolved",
            rule=alert.rule, agent=alert.agent,
            active_seconds=now - alert.time,
        )

    def ingest(self, alerts: Iterable[Alert], now: float) -> list[Alert]:
        """Feed detector-produced alerts; returns the newly fired ones.

        A detector signals *current* conditions: signals repeat while a
        condition holds and stop when it clears, so any previously
        ingested (rule, agent) absent from this batch is resolved.
        Burn-rule state (managed by :meth:`evaluate`) is untouched.
        """
        fired = []
        seen: set[tuple[str, str | None]] = set()
        rule_names = {rule.name for rule in self.rules}
        for alert in alerts:
            seen.add(alert.key)
            if self._fire(alert):
                fired.append(alert)
        for key in list(self._active):
            if key[0] in rule_names or key in seen:
                continue
            self._resolve(key, now)
        return fired

    def evaluate(self, now: float) -> list[Alert]:
        """Run every burn-rate rule; returns the newly fired alerts."""
        fired = []
        for rule in self.rules:
            alert = rule.evaluate(now)
            key = (rule.name, None)
            if alert is not None:
                if self._fire(alert):
                    fired.append(alert)
            elif key in self._active:
                self._resolve(key, now)
        return fired
