"""Process-wide telemetry activation.

Instrumented hot paths (verifier poll, IMA engine, mirror sync, ...) do
not thread a telemetry handle through every constructor; they fetch the
*active* :class:`Telemetry` through :func:`get` at call time.  While
nothing is activated, :func:`get` returns a null-object bundle whose
registry and tracer absorb every call, so the instrumentation costs a
dict-free method call on the disabled path and needs no guards.

Typical use -- the ``repro-cli obs`` subcommand and the benchmark
harness::

    from repro.obs import runtime as obs

    with obs.session() as telemetry:
        run_fp_week(...)                     # hot paths record into it
        print(console_summary(telemetry.registry, telemetry.tracer))

The simulated clock is bound lazily: :func:`repro.experiments.testbed.
build_testbed` and :class:`repro.keylime.fleet.Fleet` call
``obs.get().bind_clock(scheduler.clock)`` when they create their
scheduler, so spans carry simulated timestamps no matter which
experiment is running.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.tracestore import SpanStore
from repro.obs.tracing import NULL_TRACER, SpanTracer


class Telemetry:
    """A registry/tracer/store triple representing one observed run.

    The tracer feeds every finished root trace into ``store`` (a
    queryable :class:`repro.obs.tracestore.SpanStore`), and roots
    evicted under ``max_roots`` pressure are counted into the
    ``obs_tracer_dropped_roots_total`` counter -- silent trace loss is
    a dashboard signal, not a mystery.
    """

    enabled = True

    def __init__(self, clock=None) -> None:
        self.registry = MetricsRegistry()
        self.store = SpanStore()
        #: Optional repro.obs.rules.Observatory attached by the run
        #: (``telemetry.observatory = Observatory(registry=...)``) so
        #: code holding only the telemetry bundle can reach the TSDB.
        self.observatory = None
        dropped = self.registry.counter(
            "obs_tracer_dropped_roots_total",
            "Root traces evicted from the tracer's retention ring",
        )
        self.tracer = SpanTracer(
            clock=clock, store=self.store, on_drop=dropped.inc
        )

    def bind_clock(self, clock) -> None:
        """Point the tracer's simulated timeline at *clock*."""
        self.tracer.bind_clock(clock)


class _NullTelemetry:
    """Inactive stand-in; every instrument call is a no-op."""

    enabled = False
    registry = NULL_REGISTRY
    tracer = NULL_TRACER
    store = None
    observatory = None

    def bind_clock(self, clock) -> None:
        """No-op while telemetry is disabled."""


NULL_TELEMETRY = _NullTelemetry()

_active: Telemetry | None = None


def get() -> Telemetry:
    """The active telemetry, or the shared null bundle."""
    return _active if _active is not None else NULL_TELEMETRY


def activate(telemetry: Telemetry | None = None, clock=None) -> Telemetry:
    """Install *telemetry* (or a fresh one) as the active bundle."""
    global _active
    _active = telemetry if telemetry is not None else Telemetry(clock=clock)
    return _active


def deactivate() -> None:
    """Return to the disabled (null) state."""
    global _active
    _active = None


@contextmanager
def session(clock=None) -> Iterator[Telemetry]:
    """Activate a fresh telemetry bundle for the duration of a block."""
    telemetry = activate(clock=clock)
    try:
        yield telemetry
    finally:
        deactivate()
