"""Federating metrics snapshots from many registries into one store.

The ROADMAP's scale-out arc shards the verifier across processes; each
shard will own a private :class:`~repro.obs.runtime.Telemetry` bundle,
and nobody operating the fleet wants N dashboards.  This module is the
aggregation tier, built *before* the first shard exists so the sharding
work lands against a working fleet view:

* :func:`registry_snapshot` serialises one registry's current state --
  counters, gauges, exploded histograms, and the per-family
  label-cardinality overflow counts -- into a JSON-safe dict;
  :func:`snapshot_to_json` / :func:`snapshot_from_json` are the wire
  pair, in the same idiom as :mod:`repro.keylime.transport` (malformed
  input surfaces as :class:`~repro.common.errors.IntegrityError`, never
  a stray ``KeyError``).
* :class:`FederationHub` ingests snapshots from N sources into one
  :class:`~repro.obs.tsdb.TsdbStore`, tagging every series with a
  ``source`` label so per-shard and fleet-level queries coexist.  The
  hub tracks per-source staleness (last snapshot time vs. now), drops
  out-of-order snapshots per source (with accounting, not silently),
  inherits the store's counter-reset detection for source restarts,
  and merges label-overflow counts across sources so a cardinality bug
  in any shard stays visible fleet-wide.

The hub runs its own recording rules (fleet-level, collapsing the
``source`` label) so ``repro-cli obs top`` reads derived series from
the hub exactly as a single-process dashboard reads them from its
local observatory.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.common.errors import IntegrityError
from repro.obs.rules import RuleEngine, standard_recording_rules
from repro.obs.tsdb import TsdbStore, format_le

#: The label the hub adds to every federated series.
SOURCE_LABEL = "source"

#: ``type`` tag of a snapshot record (JSONL export compatible).
SNAPSHOT_TYPE = "obs_snapshot"

_DECODE_ERRORS = (KeyError, ValueError, TypeError, AttributeError, OverflowError)


def registry_snapshot(registry, source: str, at: float) -> dict[str, Any]:
    """One registry's current state as a JSON-safe snapshot dict.

    Histograms are exploded the same way the scraper stores them
    (``count`` / ``sum`` / cumulative ``buckets``), so an ingested
    snapshot lands in the hub's store with exactly the series shape a
    local :class:`~repro.obs.tsdb.RegistryScraper` would produce.
    """
    metrics: list[dict[str, Any]] = []
    for family in registry.families():
        for labels, child in family.samples():
            entry: dict[str, Any] = {
                "name": family.name,
                "kind": family.kind,
                "labels": dict(labels),
            }
            if family.kind == "histogram":
                entry["count"] = child.count
                entry["sum"] = child.sum
                entry["buckets"] = [
                    [format_le(bound), cumulative]
                    for bound, cumulative in child.cumulative_buckets()
                ]
            else:
                entry["value"] = child.value
            metrics.append(entry)
    return {
        "type": SNAPSHOT_TYPE,
        "source": source,
        "at": at,
        "metrics": metrics,
        "label_overflow": dict(registry.label_overflow()),
    }


def snapshot_to_json(snapshot: dict[str, Any]) -> str:
    """Serialise a snapshot for the wire (one line, sorted keys)."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def snapshot_from_json(blob: str | bytes | bytearray) -> dict[str, Any]:
    """Decode and validate a wire snapshot.

    Raises :class:`IntegrityError` on anything malformed -- a federation
    peer is exactly as untrusted as an attestation peer.
    """
    try:
        snapshot = json.loads(blob)
        if snapshot.get("type") != SNAPSHOT_TYPE:
            raise IntegrityError(
                f"not a metrics snapshot: type={snapshot.get('type')!r}"
            )
        source = snapshot["source"]
        if not isinstance(source, str) or not source:
            raise IntegrityError(f"bad snapshot source: {source!r}")
        snapshot["at"] = float(snapshot["at"])
        metrics = snapshot["metrics"]
        if not isinstance(metrics, list):
            raise IntegrityError("snapshot metrics must be a list")
        for entry in metrics:
            entry["name"], entry["kind"] = str(entry["name"]), str(entry["kind"])
            entry["labels"] = {
                str(k): str(v) for k, v in entry.get("labels", {}).items()
            }
            if entry["kind"] == "histogram":
                entry["count"] = float(entry["count"])
                entry["sum"] = float(entry["sum"])
                entry["buckets"] = [
                    [str(le), float(cumulative)]
                    for le, cumulative in entry["buckets"]
                ]
            else:
                entry["value"] = float(entry["value"])
        snapshot["label_overflow"] = {
            str(name): int(count)
            for name, count in snapshot.get("label_overflow", {}).items()
        }
    except IntegrityError:
        raise
    except _DECODE_ERRORS as exc:
        raise IntegrityError(f"malformed metrics snapshot: {exc}") from exc
    return snapshot


class SourceState:
    """Per-source bookkeeping the hub keeps across snapshots."""

    __slots__ = ("name", "last_at", "snapshots", "dropped", "label_overflow")

    def __init__(self, name: str) -> None:
        self.name = name
        self.last_at: float | None = None
        self.snapshots = 0
        #: snapshots refused because they were older than ``last_at``.
        self.dropped = 0
        self.label_overflow: dict[str, int] = {}


class FederationHub:
    """Merges N registries' snapshots into one fleet-level store."""

    def __init__(
        self,
        store: TsdbStore | None = None,
        rules: Iterable[Any] | None = None,
        poll_interval: float = 1800.0,
    ) -> None:
        self.store = store if store is not None else TsdbStore()
        self.poll_interval = poll_interval
        self.engine = RuleEngine(
            self.store,
            rules if rules is not None
            else standard_recording_rules(poll_interval),
        )
        self._sources: dict[str, SourceState] = {}

    def sources(self) -> list[SourceState]:
        """Known sources, in first-seen order."""
        return list(self._sources.values())

    def source(self, name: str) -> SourceState | None:
        """One source's state, or ``None``."""
        return self._sources.get(name)

    def ingest(self, snapshot: dict[str, Any]) -> int:
        """Merge one (decoded) snapshot; returns samples appended.

        A snapshot older than the source's last accepted one is dropped
        whole -- federated counters must stay per-source monotone in
        time or every rate window straddling the regression corrupts --
        and counted on the source's ``dropped`` tally.
        """
        name = snapshot["source"]
        at = snapshot["at"]
        state = self._sources.get(name)
        if state is None:
            state = self._sources[name] = SourceState(name)
        if state.last_at is not None and at <= state.last_at:
            state.dropped += 1
            return 0
        appended = 0
        store = self.store
        for entry in snapshot["metrics"]:
            labels = dict(entry["labels"])
            labels[SOURCE_LABEL] = name
            if entry["kind"] == "histogram":
                store.append(
                    f"{entry['name']}_count", labels, entry["count"], at,
                    kind="counter",
                )
                store.append(
                    f"{entry['name']}_sum", labels, entry["sum"], at,
                    kind="counter",
                )
                appended += 2
                for le, cumulative in entry["buckets"]:
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = le
                    store.append(
                        f"{entry['name']}_bucket", bucket_labels, cumulative,
                        at, kind="counter",
                    )
                    appended += 1
            else:
                store.append(
                    entry["name"], labels, entry["value"], at,
                    kind=entry["kind"] if entry["kind"] in ("counter", "gauge")
                    else "gauge",
                )
                appended += 1
        for metric, count in sorted(snapshot.get("label_overflow", {}).items()):
            state.label_overflow[metric] = count
            store.append(
                "telemetry_label_sets_overflowed_total",
                {"metric": metric, SOURCE_LABEL: name}, count, at,
                kind="counter",
            )
            appended += 1
        state.last_at = at
        state.snapshots += 1
        store.scrapes += 1
        store.last_scrape_at = (
            at if store.last_scrape_at is None
            else max(store.last_scrape_at, at)
        )
        return appended

    def ingest_json(self, blob: str | bytes | bytearray) -> int:
        """Decode + merge one wire snapshot."""
        return self.ingest(snapshot_from_json(blob))

    def evaluate(self, now: float) -> int:
        """Run the hub's recording rules at *now*."""
        return self.engine.evaluate(now)

    def staleness(self, now: float) -> dict[str, float | None]:
        """Seconds since each source's last accepted snapshot.

        ``None`` marks a source that registered but never delivered.
        """
        return {
            name: (now - state.last_at if state.last_at is not None else None)
            for name, state in self._sources.items()
        }

    def stale_sources(self, now: float, max_age: float) -> list[str]:
        """Sources silent for longer than *max_age* (or forever)."""
        return [
            name for name, age in self.staleness(now).items()
            if age is None or age > max_age
        ]

    def merged_label_overflow(self) -> dict[str, int]:
        """Per-family overflow counts summed across every source."""
        merged: dict[str, int] = {}
        for state in self._sources.values():
            for metric, count in state.label_overflow.items():
                merged[metric] = merged.get(metric, 0) + count
        return merged
