"""Incident correlation: from an alert to a forensic timeline.

When an alert fires (a coverage gap, a failure-rate spike, an SLO
burn), the question the paper's P2 makes urgent is *what happened
while nobody was looking?*  The correlator answers it by assembling,
for the alert's window, everything the run recorded:

* **EventLog records** via ``records_between`` -- attestation
  outcomes, policy pushes, mirror syncs, attack steps, alert state
  changes;
* **spans** from the tracer -- the traced polls (and their absence)
  across the window, on the simulated timeline;
* **AuditLog records** -- the tamper-evident trust history, cited by
  chain index and record hash so the report's claims can be checked
  against the hash chain after the fact.

The product is an :class:`IncidentReport`: a structured object that
serialises to JSON (for ``obs report`` and the JSONL export) and
renders to a readable timeline (for the console).

Post-hoc use: :func:`reports_from_export` rebuilds reports from a
``repro-cli obs watch --jsonl`` export -- directly when the export
contains incident records, otherwise by replaying the exported events
through a fresh detection pipeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.common.events import EventLog
from repro.obs.profiling import critical_path, self_wall
from repro.obs.tracestore import build_spans

#: Cap on records per section of one report, so a month-long window
#: cannot produce a megabyte of timeline.
MAX_SECTION_RECORDS = 200


@dataclass
class IncidentReport:
    """One correlated incident: the alert plus its forensic window."""

    incident_id: str
    created_at: float
    alert: dict[str, Any]
    agent_id: str | None
    window: tuple[float, float]
    events: list[dict[str, Any]] = field(default_factory=list)
    spans: list[dict[str, Any]] = field(default_factory=list)
    audit_records: list[dict[str, Any]] = field(default_factory=list)
    audit_chain: dict[str, Any] = field(default_factory=dict)
    truncated: dict[str, int] = field(default_factory=dict)
    #: The heaviest-child chain of the window's last relevant poll --
    #: where the wall time of the round that preceded the alert went.
    critical_path: list[dict[str, Any]] = field(default_factory=list)

    def to_record(self) -> dict[str, Any]:
        """Dict form for the JSONL export (``type: incident``)."""
        return {
            "type": "incident",
            "incident_id": self.incident_id,
            "created_at": self.created_at,
            "alert": self.alert,
            "agent": self.agent_id,
            "window": list(self.window),
            "events": self.events,
            "spans": self.spans,
            "audit_records": self.audit_records,
            "audit_chain": self.audit_chain,
            "truncated": self.truncated,
            "critical_path": self.critical_path,
        }

    def to_json(self) -> str:
        """The report as one JSON document."""
        return json.dumps(self.to_record(), sort_keys=True, indent=2)

    @staticmethod
    def from_record(record: dict[str, Any]) -> "IncidentReport":
        """Rebuild a report from its :meth:`to_record` dict."""
        return IncidentReport(
            incident_id=record["incident_id"],
            created_at=record["created_at"],
            alert=record["alert"],
            agent_id=record.get("agent"),
            window=tuple(record["window"]),
            events=list(record.get("events", ())),
            spans=list(record.get("spans", ())),
            audit_records=list(record.get("audit_records", ())),
            audit_chain=dict(record.get("audit_chain", ())),
            truncated=dict(record.get("truncated", ())),
            critical_path=list(record.get("critical_path", ())),
        )

    # -- rendering ---------------------------------------------------------

    def timeline(self) -> list[tuple[float, str, str]]:
        """Merged ``(time, tag, line)`` entries, time-ordered."""
        entries: list[tuple[float, str, str]] = []
        for event in self.events:
            details = event.get("details", {})
            rendered = ", ".join(f"{k}={v}" for k, v in details.items() if v is not None)
            entries.append(
                (event["time"], "EVT",
                 f"{event['source']} {event['kind']}"
                 + (f" [{rendered}]" if rendered else ""))
            )
        for span in self.spans:
            if span.get("parent_id") is not None:
                continue  # roots only; phases are summarised by the root
            entries.append(
                (span["sim_start"], "SPAN",
                 f"{span['name']} wall={span.get('wall_ms', 0.0):.2f}ms "
                 f"attrs={span.get('attributes', {})}")
            )
        for record in self.audit_records:
            entries.append(
                (record["time"], "AUDIT",
                 f"chain[{record['index']}] ok={record['ok']} "
                 f"hash={record['record_hash'][:16]}...")
            )
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        return entries

    def render_text(self, include_timeline: bool = True) -> str:
        """The human-readable incident report.

        *include_timeline* off renders just the header block -- the
        right shape for fleet-wide SLO burns whose full timeline lives
        in the JSONL export.
        """
        t0, t1 = self.window
        alert = self.alert
        lines = [
            f"==== incident {self.incident_id} ====",
            f"alert:    {alert.get('rule')} [{alert.get('severity')}] "
            f"at t={alert.get('time', 0.0) / 3600.0:.2f}h",
            f"message:  {alert.get('message', '')}",
            f"agent:    {self.agent_id or '(fleet-wide)'}",
            f"window:   t={t0 / 3600.0:.2f}h .. t={t1 / 3600.0:.2f}h "
            f"({(t1 - t0) / 3600.0:.1f}h)",
        ]
        gap_started = alert.get("detail", {}).get("gap_started")
        if gap_started is not None:
            silent = self.created_at - gap_started
            lines.append(
                f"gap:      silent since t={gap_started / 3600.0:.2f}h "
                f"({silent / 3600.0:.1f}h dark at detection)"
            )
        if self.audit_chain:
            chain = self.audit_chain
            lines.append(
                "audit:    "
                f"{chain.get('records_in_window', 0)} chained records in window "
                f"(indices {chain.get('first_index', '-')}..{chain.get('last_index', '-')}), "
                f"chain_verified={chain.get('verified')}, "
                f"head={str(chain.get('head', ''))[:16]}..."
            )
        lines.append(
            f"evidence: {len(self.events)} events, {len(self.spans)} spans, "
            f"{len(self.audit_records)} audit records"
        )
        for section, dropped in sorted(self.truncated.items()):
            lines.append(f"          ({section}: {dropped} older records truncated)")
        if self.critical_path:
            lines.append("-- critical path (last poll before the alert) --")
            for depth, step in enumerate(self.critical_path):
                pad = "  " * depth
                lines.append(
                    f"  {pad}{step['name']}  wall={step['wall_ms']:.3f}ms "
                    f"self={step['self_ms']:.3f}ms  ({step['share'] * 100:5.1f}%)"
                )
        if include_timeline:
            lines.append("-- timeline --")
            for time, tag, text in self.timeline():
                lines.append(f"  t={time / 3600.0:8.2f}h  [{tag:<5s}] {text}")
        else:
            lines.append(f"(timeline omitted: {len(self.timeline())} entries, "
                         "full record in the JSONL export)")
        return "\n".join(lines)


def _span_to_dict(span) -> dict[str, Any]:
    return {
        "type": "span",
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "sim_start": span.sim_start,
        "sim_end": span.sim_end,
        "wall_ms": span.wall_duration * 1000.0,
        "status": span.status,
        "attributes": span.attributes,
    }


def _audit_to_dict(record) -> dict[str, Any]:
    return {
        "type": "audit",
        "index": record.index,
        "time": record.time,
        "agent": record.agent_id,
        "ok": record.ok,
        "detail": record.detail,
        "previous_hash": record.previous_hash,
        "record_hash": record.record_hash,
    }


class IncidentCorrelator:
    """Builds :class:`IncidentReport` objects from a run's sources.

    Live use passes the run's ``EventLog``, ``SpanTracer`` and
    ``AuditLog``; post-hoc use (``obs report``) passes the
    reconstructed event log plus raw span/audit dicts from the export.
    """

    def __init__(
        self,
        events: EventLog,
        tracer=None,
        audit=None,
        spans: list[dict[str, Any]] | None = None,
        audit_records: list[dict[str, Any]] | None = None,
    ) -> None:
        self.events = events
        self.tracer = tracer
        self.audit = audit
        self._raw_spans = spans
        self._raw_audit = audit_records
        self._sequence = 0

    # -- source views ------------------------------------------------------

    def _spans_in_window(
        self, t0: float, t1: float, agent: str | None
    ) -> list[dict[str, Any]]:
        if self.tracer is not None:
            roots = [_span_to_dict(span) for span in self.tracer.roots]
            children: dict[int, list[dict[str, Any]]] = {}
            for root in self.tracer.roots:
                children[root.trace_id] = [
                    _span_to_dict(span) for span in root.walk()
                ][1:]
        else:
            raw = self._raw_spans or []
            roots = [span for span in raw if span.get("parent_id") is None]
            children = {}
            for span in raw:
                if span.get("parent_id") is not None:
                    children.setdefault(span["trace_id"], []).append(span)

        selected: list[dict[str, Any]] = []
        for root in roots:
            end = root.get("sim_end")
            if end is None:
                end = root["sim_start"]
            if end < t0 or root["sim_start"] > t1:
                continue
            root_agent = (root.get("attributes") or {}).get("agent")
            if agent is not None and root_agent is not None and root_agent != agent:
                continue
            selected.append(root)
            selected.extend(children.get(root["trace_id"], ()))
        return selected

    def _audit_in_window(
        self, t0: float, t1: float, agent: str | None
    ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
        if self.audit is not None:
            all_records = [_audit_to_dict(record) for record in self.audit.records()]
            head = self.audit.head_hash
            try:
                self.audit.verify_chain()
                verified = True
            except Exception:
                verified = False
        else:
            all_records = sorted(
                self._raw_audit or (), key=lambda record: record["index"]
            )
            head = all_records[-1]["record_hash"] if all_records else None
            verified = _verify_exported_chain(all_records)

        in_window = [
            record for record in all_records
            if t0 <= record["time"] <= t1
            and (agent is None or record["agent"] == agent)
        ]
        chain = {
            "head": head,
            "verified": verified,
            "records_in_window": len(in_window),
            "first_index": in_window[0]["index"] if in_window else None,
            "last_index": in_window[-1]["index"] if in_window else None,
        }
        return in_window, chain

    # -- building ----------------------------------------------------------

    def build(
        self,
        alert,
        lookback: float = 4 * 3600.0,
        lookahead: float = 0.0,
    ) -> IncidentReport:
        """Correlate one alert into a report.

        *alert* is an :class:`repro.obs.alerts.Alert` or its dict form.
        The window is ``[alert.time - lookback, alert.time + lookahead]``
        clamped at zero.
        """
        record = alert.to_record() if hasattr(alert, "to_record") else dict(alert)
        agent = record.get("agent")
        now = record.get("time", 0.0)
        t0 = max(0.0, now - lookback)
        t1 = now + lookahead

        truncated: dict[str, int] = {}

        events = []
        for event in self.events.records_between(t0, t1):
            details = event.details
            event_agent = details.get("agent")
            if agent is not None and event_agent not in (None, agent):
                continue
            events.append(
                {
                    "type": "event",
                    "time": event.time,
                    "source": event.source,
                    "kind": event.kind,
                    "details": details,
                }
            )
        if len(events) > MAX_SECTION_RECORDS:
            truncated["events"] = len(events) - MAX_SECTION_RECORDS
            events = events[-MAX_SECTION_RECORDS:]

        spans = self._spans_in_window(t0, t1, agent)
        if len(spans) > MAX_SECTION_RECORDS:
            truncated["spans"] = len(spans) - MAX_SECTION_RECORDS
            spans = spans[-MAX_SECTION_RECORDS:]

        path = _poll_critical_path(spans, agent)

        audit_records, chain = self._audit_in_window(t0, t1, agent)
        if len(audit_records) > MAX_SECTION_RECORDS:
            truncated["audit_records"] = len(audit_records) - MAX_SECTION_RECORDS
            audit_records = audit_records[-MAX_SECTION_RECORDS:]

        self._sequence += 1
        return IncidentReport(
            incident_id=f"INC-{self._sequence:04d}",
            created_at=now,
            alert=record,
            agent_id=agent,
            window=(t0, t1),
            events=events,
            spans=spans,
            audit_records=audit_records,
            audit_chain=chain,
            truncated=truncated,
            critical_path=path,
        )


def _poll_critical_path(
    spans: list[dict[str, Any]], agent: str | None
) -> list[dict[str, Any]]:
    """Critical path of the last ``verifier.poll`` among *spans*.

    Rebuilds span trees from the window's flat span dicts, picks the
    most recent poll matching *agent* (any agent when ``None``) --
    wherever it sits in its tree: fleet runs nest polls inside
    ``fleet.poll_batch`` roots -- and returns its heaviest-child chain
    as serialisable steps.
    """
    polls = [
        span
        for root in build_spans(spans)
        for span in root.walk()
        if span.name == "verifier.poll"
        and (agent is None or span.attributes.get("agent") == agent)
    ]
    if not polls:
        return []
    root = max(polls, key=lambda span: span.sim_start)
    return [
        {
            "name": step.span.name,
            "wall_ms": step.span.wall_duration * 1000.0,
            "self_ms": self_wall(step.span) * 1000.0,
            "share": round(step.share, 4),
        }
        for step in critical_path(root)
    ]


def _verify_exported_chain(records: list[dict[str, Any]]) -> bool:
    """Recompute hash links over exported audit dicts.

    Verifies whatever contiguous run of indices the export holds: each
    record's hash must recompute from its content, and consecutive
    indices must link previous-hash to record-hash.
    """
    from repro.keylime.audit import AuditRecord

    previous: dict[str, Any] | None = None
    for record in records:
        expected = AuditRecord.compute_hash(
            record["index"], record["time"], record["agent"], record["ok"],
            record["detail"], record["previous_hash"],
        )
        if expected != record["record_hash"]:
            return False
        if (
            previous is not None
            and record["index"] == previous["index"] + 1
            and record["previous_hash"] != previous["record_hash"]
        ):
            return False
        previous = record
    return bool(records)


# -- post-hoc reconstruction ------------------------------------------------


def split_export(records: list[dict[str, Any]]) -> dict[str, list[dict[str, Any]]]:
    """Group a JSONL export's records by their ``type`` field."""
    groups: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        groups.setdefault(record.get("type", "metric"), []).append(record)
    return groups


def reports_from_export(records: list[dict[str, Any]]) -> list[IncidentReport]:
    """Incident reports from an ``obs watch --jsonl`` export.

    Uses the embedded incident records when present; otherwise replays
    the exported events through a fresh detection pipeline (needs the
    export's ``run_meta`` record for agent cadences).
    """
    groups = split_export(records)
    if groups.get("incident"):
        return [IncidentReport.from_record(record) for record in groups["incident"]]
    return replay_incidents(groups)


def replay_incidents(groups: dict[str, list[dict[str, Any]]]) -> list[IncidentReport]:
    """Re-run gap detection over exported events; returns the reports."""
    from repro.obs.health import HealthWatch  # local: health imports this module

    meta_records = groups.get("run_meta", ())
    meta = meta_records[0] if meta_records else {}
    poll_interval = float(meta.get("poll_interval", 1800.0))
    agents = list(meta.get("agents", ()))

    event_records = sorted(groups.get("event", ()), key=lambda r: r["time"])
    if not event_records:
        return []
    events = EventLog()
    watch = HealthWatch(tick_interval=poll_interval)
    watch.attach(events, poll_interval=poll_interval)
    watch.correlator = IncidentCorrelator(
        events,
        spans=groups.get("span", []),
        audit_records=groups.get("audit", []),
    )
    if not agents:
        agents = sorted(
            {
                record["details"].get("agent")
                for record in event_records
                if record["source"] == "keylime.verifier"
                and record["details"].get("agent")
            }
        )
    for agent in agents:
        watch.watch_agent(agent, poll_interval)

    end = event_records[-1]["time"] + poll_interval
    tick_at = poll_interval
    index = 0
    while tick_at <= end:
        while index < len(event_records) and event_records[index]["time"] <= tick_at:
            record = event_records[index]
            events.emit(
                record["time"], record["source"], record["kind"],
                **record.get("details", {}),
            )
            index += 1
        watch.tick(tick_at)
        tick_at += poll_interval
    return watch.incidents
