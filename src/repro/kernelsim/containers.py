"""Containers: overlayfs roots, confined execution, truncated paths.

Section III-B generalises the SNAP false positive: "This problem is not
specific to SNAPs but would occur to any containerized execution, or
files executed under chroot environment."  This module implements that
generalisation as a minimal container runtime:

* each container gets an **overlayfs** mount (its root filesystem) --
  which on a stock IMA policy is excluded by fsmagic (``overlayfs`` is
  in the documented ``dont_measure`` set), giving containers a *double*
  blind spot:

  1. **P3 flavour** -- with stock IMA, nothing executed from the
     container's overlayfs is measured at all;
  2. **SNAP flavour** -- once IMA *does* measure overlayfs (mitigation
     M1), paths are recorded relative to the container root, so a
     host-side policy keyed on full paths cannot match them.

* :meth:`ContainerRuntime.exec_in_container` executes a containerised
  binary through the machine's ordinary exec path (chroot truncation and
  fsmagic rules apply mechanically -- no container special-casing in
  the kernel model);
* :func:`scrub_container_prefixes` is the policy-side fix, the exact
  analogue of the SNAP prefix scrub.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.common.errors import NotFoundError, StateError
from repro.distro.package import file_content
from repro.kernelsim.kernel import ExecResult, Machine
from repro.kernelsim.vfs import FilesystemType
from repro.keylime.policy import RuntimePolicy

_CONTAINER_ROOT = "/var/lib/containers"
_CONTAINER_PATH = re.compile(rf"^{_CONTAINER_ROOT}/[^/]+/rootfs(/.*)$")


@dataclass
class Container:
    """One running container."""

    container_id: str
    image: str
    binaries: tuple[str, ...]  # image-relative, e.g. "usr/bin/app"
    running: bool = True

    @property
    def rootfs(self) -> str:
        """Host path of the container's overlayfs root."""
        return f"{_CONTAINER_ROOT}/{self.container_id}/rootfs"

    def host_path(self, binary: str) -> str:
        """Host-view absolute path of an image binary."""
        if binary not in self.binaries:
            raise NotFoundError(
                f"container {self.container_id} image has no binary {binary!r}"
            )
        return f"{self.rootfs}/{binary}"

    def confined_path(self, binary: str) -> str:
        """The path IMA records when the binary runs confined."""
        return "/" + binary


class ContainerRuntime:
    """A docker-like runtime on one machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._containers: dict[str, Container] = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self._containers)

    def containers(self) -> list[Container]:
        """All containers, creation order."""
        return list(self._containers.values())

    def get(self, container_id: str) -> Container:
        """Look up one container."""
        try:
            return self._containers[container_id]
        except KeyError:
            raise NotFoundError(f"no such container: {container_id}") from None

    def run(self, image: str, binaries: list[str]) -> Container:
        """Create and start a container from *image*.

        Mounts a fresh overlayfs at the container's rootfs and
        materialises the image's binaries (content deterministic per
        image, like registry layers).
        """
        self._counter += 1
        container = Container(
            container_id=f"ctr-{self._counter:04d}",
            image=image,
            binaries=tuple(binaries),
        )
        self.machine.vfs.mount(container.rootfs, FilesystemType.OVERLAYFS)
        for binary in binaries:
            self.machine.install_file(
                container.host_path(binary),
                file_content(f"image:{image}", "latest", binary),
                executable=True,
            )
        self._containers[container.container_id] = container
        self.machine.events.emit(
            self.machine.clock.now, "containerd", "container.started",
            id=container.container_id, image=image,
        )
        return container

    def exec_in_container(self, container_id: str, binary: str) -> ExecResult:
        """Execute an image binary inside the container's namespace."""
        container = self.get(container_id)
        if not container.running:
            raise StateError(f"container {container_id} is not running")
        return self.machine.exec_file(
            container.host_path(binary), chroot=container.rootfs
        )

    def exec_host_escape(self, container_id: str, binary: str) -> ExecResult:
        """Execute the same file from the *host* view (no confinement).

        Used by tests to show the path difference is purely the
        namespace, not the file.
        """
        container = self.get(container_id)
        return self.machine.exec_file(container.host_path(binary))

    def stop(self, container_id: str) -> None:
        """Stop a container (its overlayfs content stays until removal)."""
        self.get(container_id).running = False


def scrub_container_prefixes(policy: RuntimePolicy) -> int:
    """Duplicate container-image entries under their confined paths.

    The container analogue of the SNAP scrub: for every policy entry
    under ``/var/lib/containers/<id>/rootfs/...``, add the same digest
    under the container-relative path.  Returns entries added.
    """
    added = 0
    for path, digests in list(policy.digests.items()):
        match = _CONTAINER_PATH.match(path)
        if not match:
            continue
        confined = match.group(1)
        for digest in digests:
            if policy.add_digest(confined, digest):
                added += 1
    return added
