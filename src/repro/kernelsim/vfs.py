"""A virtual filesystem with mounts, inodes and version counters.

The VFS models the handful of Linux semantics the paper's findings
depend on:

* **Filesystem types and magic numbers.**  IMA's ``dont_measure
  fsmagic=...`` rules exclude whole filesystems (tmpfs, procfs, ...);
  the paper's P3 is attackers executing from those filesystems.  Every
  mounted filesystem here carries its type and magic number so the IMA
  policy can make the same decision the kernel does.
* **Inode identity across rename.**  ``rename()`` within one filesystem
  moves the directory entry but keeps the inode -- which is why IMA (a
  per-inode cache) does not re-measure a moved file, the paper's P4.
  Moving *across* filesystems is a copy + unlink and creates a fresh
  inode, which IMA measures anew.
* **Inode version (``iversion``).**  IMA re-measures a file whose
  content changed; the kernel tracks this with the inode version
  counter, bumped on every write.  We do the same.
* **Mode bits.**  The policy generator and IMA both care about the
  executable bit.

Paths are absolute, ``/``-separated strings.  Parent directories are
created implicitly on write (the workloads never rely on mkdir failure
semantics).
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from repro.common.errors import ReproError


class VfsError(ReproError):
    """A filesystem operation failed (missing path, bad argument...)."""


class FilesystemType(Enum):
    """Filesystem types with their Linux magic numbers.

    The magic values match ``include/uapi/linux/magic.h``; IMA policies
    reference them in ``dont_measure fsmagic=...`` rules.
    """

    EXT4 = ("ext4", 0xEF53)
    TMPFS = ("tmpfs", 0x01021994)
    PROC = ("proc", 0x9FA0)
    SYSFS = ("sysfs", 0x62656572)
    DEBUGFS = ("debugfs", 0x64626720)
    RAMFS = ("ramfs", 0x858458F6)
    SECURITYFS = ("securityfs", 0x73636673)
    OVERLAYFS = ("overlayfs", 0x794C7630)
    SQUASHFS = ("squashfs", 0x73717368)
    DEVTMPFS = ("devtmpfs", 0x01021994)  # devtmpfs reports TMPFS_MAGIC

    def __init__(self, fsname: str, magic: int) -> None:
        self.fsname = fsname
        self.magic = magic


@dataclass
class Inode:
    """A file's identity and content.

    Attributes:
        ino: inode number, unique within its filesystem.
        content: file bytes (synthetic payloads in the simulation).
        executable: whether any execute bit is set.
        iversion: bumped on every content write; IMA keys its
            measurement cache on (filesystem, ino, iversion).
        nlink: hard link count.
        ima_signature: the ``security.ima`` xattr
            (:class:`repro.kernelsim.appraisal.ImaSignature`) or
            ``None``.  It travels with the inode -- renames keep it, a
            cross-filesystem copy loses it, and an in-place content
            write silently invalidates it (the signature no longer
            verifies), all matching xattr semantics.
    """

    ino: int
    content: bytes = b""
    executable: bool = False
    iversion: int = 1
    nlink: int = 1
    ima_signature: object | None = None

    @property
    def size(self) -> int:
        """Content size in bytes."""
        return len(self.content)


class Filesystem:
    """One mounted filesystem instance: an inode table plus name entries.

    Entries are keyed by path *relative to the mount point*; the
    :class:`Vfs` resolves absolute paths to (filesystem, relative path)
    pairs via longest-prefix mount matching.
    """

    def __init__(self, fs_id: str, fstype: FilesystemType) -> None:
        self.fs_id = fs_id
        self.fstype = fstype
        self._entries: dict[str, Inode] = {}
        self._next_ino = 2  # inode 1 is the root directory, by convention

    def __contains__(self, relpath: str) -> bool:
        return relpath in self._entries

    def lookup(self, relpath: str) -> Inode | None:
        """The inode at *relpath*, or ``None``."""
        return self._entries.get(relpath)

    def create(self, relpath: str, content: bytes, executable: bool) -> Inode:
        """Create a fresh inode at *relpath* (replacing any existing entry)."""
        inode = Inode(ino=self._next_ino, content=content, executable=executable)
        self._next_ino += 1
        self._entries[relpath] = inode
        return inode

    def link(self, relpath: str, inode: Inode) -> None:
        """Add a directory entry for an existing inode (rename/hardlink)."""
        self._entries[relpath] = inode
        inode.nlink += 1

    def unlink(self, relpath: str) -> Inode:
        """Remove the entry at *relpath*; returns the orphaned inode."""
        try:
            inode = self._entries.pop(relpath)
        except KeyError:
            raise VfsError(f"unlink: no such file: {relpath!r} on {self.fs_id}") from None
        inode.nlink -= 1
        return inode

    def entries(self) -> Iterator[tuple[str, Inode]]:
        """All (relative path, inode) pairs, sorted for determinism."""
        return iter(sorted(self._entries.items()))

    def clear(self) -> None:
        """Drop every entry (volatile filesystems lose content on reboot)."""
        self._entries.clear()


def _normalize(path: str) -> str:
    """Normalise an absolute path; reject relative paths."""
    if not path.startswith("/"):
        raise VfsError(f"path must be absolute: {path!r}")
    normalized = posixpath.normpath(path)
    return normalized


@dataclass(frozen=True)
class FileStat:
    """Result of :meth:`Vfs.stat`: identity plus metadata."""

    path: str
    fs_id: str
    fstype: FilesystemType
    ino: int
    size: int
    executable: bool
    iversion: int

    @property
    def file_key(self) -> tuple[str, int]:
        """(filesystem id, inode number) -- the identity IMA caches on."""
        return (self.fs_id, self.ino)


@dataclass
class _Mount:
    point: str
    filesystem: Filesystem


class Vfs:
    """The mount table and path operations.

    A fresh VFS has a single ext4 root.  Callers mount additional
    filesystems (tmpfs on ``/tmp``, proc on ``/proc``, squashfs for
    SNAPs...) to shape the machine the experiments need.
    """

    def __init__(self) -> None:
        self._mounts: list[_Mount] = []
        self._fs_counter = 0
        self.mount("/", FilesystemType.EXT4)

    # -- mount management -------------------------------------------------

    def mount(self, point: str, fstype: FilesystemType, fs_id: str | None = None) -> Filesystem:
        """Mount a new filesystem instance at *point*."""
        point = _normalize(point)
        if any(mount.point == point for mount in self._mounts):
            raise VfsError(f"mount point already in use: {point!r}")
        self._fs_counter += 1
        fs_id = fs_id or f"{fstype.fsname}-{self._fs_counter}"
        filesystem = Filesystem(fs_id=fs_id, fstype=fstype)
        self._mounts.append(_Mount(point=point, filesystem=filesystem))
        # Longest mount point first makes prefix resolution trivial.
        self._mounts.sort(key=lambda mount: len(mount.point), reverse=True)
        return filesystem

    def mounts(self) -> list[tuple[str, Filesystem]]:
        """All (mount point, filesystem) pairs, longest prefix first."""
        return [(mount.point, mount.filesystem) for mount in self._mounts]

    def resolve(self, path: str) -> tuple[Filesystem, str]:
        """Resolve an absolute path to (filesystem, relative path)."""
        path = _normalize(path)
        for mount in self._mounts:
            point = mount.point
            if point == "/":
                return mount.filesystem, path.lstrip("/")
            if path == point or path.startswith(point + "/"):
                rel = path[len(point):].lstrip("/")
                return mount.filesystem, rel
        raise VfsError(f"no filesystem resolves {path!r}")  # pragma: no cover

    # -- file operations ----------------------------------------------------

    def exists(self, path: str) -> bool:
        """True when a file exists at *path*."""
        filesystem, rel = self.resolve(path)
        return rel in filesystem

    def write_file(self, path: str, content: bytes, executable: bool = False) -> FileStat:
        """Create or overwrite the file at *path*.

        Overwriting keeps the inode and bumps ``iversion`` (the write
        path in Linux), so IMA will re-measure it on next execution.
        Creating allocates a fresh inode.
        """
        filesystem, rel = self.resolve(path)
        existing = filesystem.lookup(rel)
        if existing is not None:
            existing.content = content
            existing.executable = executable
            existing.iversion += 1
            inode = existing
        else:
            inode = filesystem.create(rel, content, executable)
        return self._stat(path, filesystem, inode)

    def append_file(self, path: str, content: bytes) -> FileStat:
        """Append to an existing file (bumps ``iversion``)."""
        filesystem, rel = self.resolve(path)
        inode = filesystem.lookup(rel)
        if inode is None:
            raise VfsError(f"append: no such file: {path!r}")
        inode.content += content
        inode.iversion += 1
        return self._stat(path, filesystem, inode)

    def read_file(self, path: str) -> bytes:
        """Content of the file at *path*."""
        filesystem, rel = self.resolve(path)
        inode = filesystem.lookup(rel)
        if inode is None:
            raise VfsError(f"read: no such file: {path!r}")
        return inode.content

    def chmod(self, path: str, executable: bool) -> FileStat:
        """Set or clear the execute bit (metadata-only; no iversion bump)."""
        filesystem, rel = self.resolve(path)
        inode = filesystem.lookup(rel)
        if inode is None:
            raise VfsError(f"chmod: no such file: {path!r}")
        inode.executable = executable
        return self._stat(path, filesystem, inode)

    def unlink(self, path: str) -> None:
        """Remove the file at *path*."""
        filesystem, rel = self.resolve(path)
        filesystem.unlink(rel)

    def rename(self, src: str, dst: str) -> FileStat:
        """Move a file, with Linux's same-vs-cross filesystem split.

        Within one filesystem the inode is preserved (so IMA will *not*
        re-measure it -- P4).  Across filesystems the move degrades to
        copy + unlink, allocating a fresh inode at the destination.
        """
        src_fs, src_rel = self.resolve(src)
        dst_fs, dst_rel = self.resolve(dst)
        inode = src_fs.lookup(src_rel)
        if inode is None:
            raise VfsError(f"rename: no such file: {src!r}")
        if src_fs is dst_fs:
            src_fs.unlink(src_rel)
            src_fs.link(dst_rel, inode)
            moved = inode
        else:
            moved = dst_fs.create(dst_rel, inode.content, inode.executable)
            src_fs.unlink(src_rel)
        return self._stat(dst, dst_fs, moved)

    def stat(self, path: str) -> FileStat:
        """Metadata for the file at *path*."""
        filesystem, rel = self.resolve(path)
        inode = filesystem.lookup(rel)
        if inode is None:
            raise VfsError(f"stat: no such file: {path!r}")
        return self._stat(path, filesystem, inode)

    def _stat(self, path: str, filesystem: Filesystem, inode: Inode) -> FileStat:
        return FileStat(
            path=_normalize(path),
            fs_id=filesystem.fs_id,
            fstype=filesystem.fstype,
            ino=inode.ino,
            size=inode.size,
            executable=inode.executable,
            iversion=inode.iversion,
        )

    # -- traversal ----------------------------------------------------------

    def walk(self, prefix: str = "/") -> Iterator[FileStat]:
        """Every file whose absolute path starts with *prefix*.

        Used by the static policy builder (the paper's "bash script that
        recursively hashes every executable under /").
        """
        prefix = _normalize(prefix)
        for mount in sorted(self._mounts, key=lambda m: m.point):
            for rel, inode in mount.filesystem.entries():
                if mount.point == "/":
                    absolute = "/" + rel
                else:
                    absolute = mount.point + ("/" + rel if rel else "")
                resolved_fs, _ = self.resolve(absolute)
                if resolved_fs is not mount.filesystem:
                    continue  # shadowed by a longer mount
                if absolute == prefix or absolute.startswith(
                    prefix if prefix.endswith("/") else prefix + "/"
                ):
                    yield self._stat(absolute, mount.filesystem, inode)

    def files_under(self, prefix: str = "/") -> list[str]:
        """Sorted absolute paths under *prefix* (test helper)."""
        return sorted(stat.path for stat in self.walk(prefix))
