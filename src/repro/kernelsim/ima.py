"""The Integrity Measurement Architecture (IMA).

IMA hooks file events (here: executions and kernel-module loads),
hashes the file content, appends an entry to the measurement list, and
extends the entry's template hash into TPM PCR 10.  The verifier later
replays the list against the quoted PCR value.

The behaviours the paper's findings hinge on are modelled exactly:

* ``dont_measure fsmagic=...`` **policy rules** exclude whole
  filesystems (tmpfs, procfs, debugfs, ramfs, securityfs, overlayfs in
  the Keylime-documented policy) -- the paper's **P3**.
* **Measure-once-per-inode caching.**  IMA keys its cache on the inode
  identity and re-measures only when the content (``iversion``)
  changes.  A rename within the same filesystem keeps the inode, so the
  file is *not* re-measured under its new path -- the paper's **P4**.
  The optional ``re_evaluate_on_path_change`` flag implements the
  paper's proposed IMA fix (**M3**).
* **Recorded path is the path as seen by the measuring context.**  A
  process executing inside a chroot (SNAP confinement) causes IMA to
  record the truncated path -- the paper's SNAP false-positive cause.
* **The boot aggregate.**  The first list entry after boot is
  ``boot_aggregate``, a digest over the boot PCRs, which anchors the
  runtime list to measured boot.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum

from repro.common.hexutil import sha256_hex
from repro.kernelsim.vfs import FilesystemType, FileStat
from repro.obs import runtime as obs
from repro.tpm.device import Tpm
from repro.tpm.pcr import IMA_PCR_INDEX


def _count_decision(decision: str) -> None:
    """Record one measurement decision (no-op while telemetry is off).

    The ``cache_hit`` series is the directly observable evidence for the
    paper's P4: executions suppressed by the once-per-inode rule.
    """
    obs.get().registry.counter(
        "ima_events_total", "IMA measurement decisions by outcome", ("decision",),
    ).labels(decision=decision).inc()

#: Filesystems excluded by the IMA policy in Keylime's documentation;
#: the exclusions behind the paper's P3.
DEFAULT_EXCLUDED_FSTYPES = (
    FilesystemType.TMPFS,
    FilesystemType.PROC,
    FilesystemType.SYSFS,
    FilesystemType.DEBUGFS,
    FilesystemType.RAMFS,
    FilesystemType.SECURITYFS,
    FilesystemType.DEVTMPFS,
    FilesystemType.OVERLAYFS,
)


class ImaHook(Enum):
    """The measurement hooks we model (subset of the kernel's)."""

    BPRM_CHECK = "BPRM_CHECK"  # direct execve of a file
    MMAP_EXEC = "FILE_MMAP"  # mapping a file with PROT_EXEC (shared libs)
    MODULE_CHECK = "MODULE_CHECK"  # kernel module load


@dataclass(frozen=True)
class ImaLogEntry:
    """One line of the ascii measurement list (ima-ng template).

    ``template_hash`` is what gets extended into PCR 10; it covers the
    file digest *and* the recorded path, so the verifier's replay breaks
    if either is tampered with in transit.
    """

    pcr: int
    template_hash: str
    template: str
    filedata_hash: str  # "sha256:<hex>"
    path: str

    def to_line(self) -> str:
        """Serialise like ``/sys/kernel/security/ima/ascii_runtime_measurements``."""
        return f"{self.pcr} {self.template_hash} {self.template} {self.filedata_hash} {self.path}"

    @classmethod
    def from_line(cls, line: str) -> "ImaLogEntry":
        """Parse a serialised entry (the verifier-side operation)."""
        parts = line.split(" ", 4)
        if len(parts) != 5:
            raise ValueError(f"malformed IMA log line: {line!r}")
        pcr, template_hash, template, filedata_hash, path = parts
        return cls(
            pcr=int(pcr),
            template_hash=template_hash,
            template=template,
            filedata_hash=filedata_hash,
            path=path,
        )


def template_hash(filedata_hash: str, path: str) -> str:
    """Template hash over (file digest, recorded path).

    Real IMA hashes the packed ima-ng template data; the reproduction
    hashes a canonical string with the same two fields, preserving the
    tamper-evidence property.
    """
    return sha256_hex(f"ima-ng|{filedata_hash}|{path}".encode("utf-8"))


#: Template hash recorded for a measurement *violation* (ToMToU /
#: open-writers): the log line carries all-zero digests, but the PCR is
#: extended with all-0xFF -- the kernel deliberately poisons the
#: aggregate so a violation can never be hidden by replaying zeros.
#: Verifiers must know this rule to replay logs containing violations.
VIOLATION_TEMPLATE_HASH = "0" * 64
VIOLATION_EXTEND_VALUE = "f" * 64
VIOLATION_FILEDATA_HASH = "sha256:" + "0" * 64


@dataclass
class ImaPolicy:
    """The kernel-side IMA policy.

    Attributes:
        excluded_fstypes: filesystems skipped entirely
            (``dont_measure fsmagic=...``).  The default matches the
            policy in Keylime's documentation -- the source of P3.
        measure_hooks: which hooks produce measurements.
        re_evaluate_on_path_change: the paper's proposed M3 fix -- when
            true, a cached inode is re-measured if it is executed under
            a different path than the one recorded.
    """

    excluded_fstypes: tuple[FilesystemType, ...] = DEFAULT_EXCLUDED_FSTYPES
    measure_hooks: tuple[ImaHook, ...] = (
        ImaHook.BPRM_CHECK,
        ImaHook.MMAP_EXEC,
        ImaHook.MODULE_CHECK,
    )
    re_evaluate_on_path_change: bool = False

    def excludes_fstype(self, fstype: FilesystemType) -> bool:
        """True when the policy's fsmagic rules skip *fstype*."""
        return any(fstype.magic == excluded.magic for excluded in self.excluded_fstypes)

    def measures_hook(self, hook: ImaHook) -> bool:
        """True when *hook* is covered by a measure rule."""
        return hook in self.measure_hooks


@dataclass
class _CacheRecord:
    iversion: int
    recorded_path: str


class ImaEngine:
    """The per-boot measurement engine.

    One instance exists per booted kernel; a reboot builds a fresh
    engine (empty list, empty cache) and the machine re-extends the
    boot aggregate.
    """

    def __init__(self, policy: ImaPolicy, tpm: Tpm) -> None:
        self.policy = policy
        self._tpm = tpm
        self._log: list[ImaLogEntry] = []
        self._cache: dict[tuple[str, int], _CacheRecord] = {}

    # -- introspection ---------------------------------------------------

    @property
    def log(self) -> list[ImaLogEntry]:
        """The measurement list (a copy; the engine's list is append-only)."""
        return list(self._log)

    def log_lines(self) -> list[str]:
        """Serialised measurement list, as the agent ships it."""
        return [entry.to_line() for entry in self._log]

    def measured_paths(self) -> set[str]:
        """All recorded paths (test helper)."""
        return {entry.path for entry in self._log}

    # -- measurement -----------------------------------------------------

    def record_boot_aggregate(self) -> ImaLogEntry:
        """Record the ``boot_aggregate`` entry (first entry after boot)."""
        blob = b"".join(
            bytes.fromhex(self._tpm.read_pcr(index)) for index in range(8)
        )
        digest = "sha256:" + hashlib.sha256(blob).hexdigest()
        return self._append("boot_aggregate", digest)

    def process_event(
        self, recorded_path: str, stat: FileStat, content: bytes, hook: ImaHook
    ) -> ImaLogEntry | None:
        """Run the measurement decision for one file event.

        Args:
            recorded_path: the path *as seen by the executing context*
                (truncated inside a chroot -- the SNAP case).
            stat: VFS metadata for the file (identity + iversion).
            content: file bytes, hashed if the decision is "measure".
            hook: which kernel hook fired.

        Returns the new log entry, or ``None`` when the policy or the
        cache suppressed measurement.
        """
        if not self.policy.measures_hook(hook):
            _count_decision("unhooked")
            return None
        if self.policy.excludes_fstype(stat.fstype):
            _count_decision("excluded_fstype")
            return None  # P3: whole filesystem excluded by fsmagic

        decision = "measured"
        cache_key = stat.file_key
        cached = self._cache.get(cache_key)
        if cached is not None and cached.iversion == stat.iversion:
            if (
                self.policy.re_evaluate_on_path_change
                and cached.recorded_path != recorded_path
            ):
                decision = "remeasured_path_change"  # M3: fall through, re-measure
            else:
                # P4: same inode, unchanged content -> no re-measurement
                _count_decision("cache_hit")
                return None

        digest = "sha256:" + sha256_hex(content)
        entry = self._append(recorded_path, digest)
        _count_decision(decision)
        self._cache[cache_key] = _CacheRecord(
            iversion=stat.iversion, recorded_path=recorded_path
        )
        return entry

    def note_write(self, recorded_path: str, stat: FileStat) -> bool:
        """A write hit a file already measured this boot -> violation.

        Returns True when a violation was recorded (the file was in the
        measurement cache); writes to never-measured files are silent.
        """
        if stat.file_key not in self._cache:
            return False
        self.record_violation(recorded_path, kind="ToMToU")
        return True

    def record_violation(self, recorded_path: str, kind: str = "ToMToU") -> ImaLogEntry:
        """Record a measurement violation for *recorded_path*.

        Linux IMA emits a violation when measurement cannot be
        trustworthy: ``ToMToU`` (time-of-measure / time-of-use -- the
        file is open for write while being measured) and
        ``open_writers`` (measured while writers exist).  The log line
        carries zero digests, but the PCR is extended with 0xFF --
        replaying zeros would hide the violation, so the kernel poisons
        the aggregate instead.
        """
        entry = ImaLogEntry(
            pcr=IMA_PCR_INDEX,
            template_hash=VIOLATION_TEMPLATE_HASH,
            template="ima-ng",
            filedata_hash=VIOLATION_FILEDATA_HASH,
            path=f"{recorded_path} ({kind})" if kind else recorded_path,
        )
        self._log.append(entry)
        self._tpm.extend(IMA_PCR_INDEX, VIOLATION_EXTEND_VALUE, algorithm="sha256")
        obs.get().registry.counter(
            "ima_violations_total", "IMA measurement violations recorded", ("kind",),
        ).labels(kind=kind or "unknown").inc()
        return entry

    def _append(self, path: str, filedata_hash: str) -> ImaLogEntry:
        entry = ImaLogEntry(
            pcr=IMA_PCR_INDEX,
            template_hash=template_hash(filedata_hash, path),
            template="ima-ng",
            filedata_hash=filedata_hash,
            path=path,
        )
        self._log.append(entry)
        self._tpm.extend(IMA_PCR_INDEX, entry.template_hash, algorithm="sha256")
        obs.get().registry.counter(
            "ima_measurements_total", "Entries appended to the measurement list",
        ).inc()
        return entry
