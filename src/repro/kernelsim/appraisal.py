"""IMA appraisal: signature *enforcement*, not just measurement.

The paper studies IMA's measurement mode -- record what ran, let a
remote verifier judge.  Real IMA also has an **appraisal** mode: each
file carries a signature over its content hash in the ``security.ima``
extended attribute, and the kernel *refuses to execute* files whose
signature does not verify against a trusted key.  Appraisal is the
in-kernel, fail-closed counterpart of the fail-open detection pipeline
the paper dissects; several of the paper's P1-P5 evasions are moot
under enforcement (nothing unsigned runs at all), at the price of the
operational rigidity the paper's FP study illustrates -- every updated
binary must arrive *signed* or the machine breaks itself.

Pieces:

* :class:`ImaSignature` -- the ``security.ima`` xattr payload: a
  signature over the file's SHA-256 by some signer.
* :func:`sign_content` / :func:`appraise_content` -- produce and check
  signatures.
* :class:`AppraisalPolicy` -- trusted keys + enforcement switch +
  excluded filesystems (appraisal honours fsmagic rules like
  measurement does).
* :func:`sign_file` / :func:`sign_all_executables` -- the ``evmctl
  ima_sign`` equivalents for provisioning a machine.

The :class:`~repro.kernelsim.kernel.Machine` consults the appraisal
policy on every exec/module-load when enforcement is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import StateError
from repro.common.hexutil import sha256_hex
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey
from repro.kernelsim.vfs import FilesystemType, Vfs


class AppraisalDenied(StateError):
    """The kernel refused access: missing or invalid IMA signature."""


@dataclass(frozen=True)
class ImaSignature:
    """Contents of the ``security.ima`` xattr."""

    signer: str  # human-readable key id
    signature: bytes = field(repr=False)


def _signed_payload(content: bytes) -> bytes:
    """What the signature covers: the file's content hash."""
    return b"ima-sig-v2|sha256|" + sha256_hex(content).encode("ascii")


def sign_content(content: bytes, keypair: RsaKeyPair, signer: str) -> ImaSignature:
    """Produce the ``security.ima`` signature for *content*."""
    return ImaSignature(signer=signer, signature=keypair.sign(_signed_payload(content)))


def appraise_content(
    content: bytes, signature: ImaSignature | None, trusted_keys: list[RsaPublicKey]
) -> bool:
    """True when *signature* verifies over *content* with a trusted key."""
    if signature is None:
        return False
    payload = _signed_payload(content)
    return any(key.verify(payload, signature.signature) for key in trusted_keys)


@dataclass
class AppraisalPolicy:
    """The kernel's appraisal configuration.

    ``enforce`` off means appraisal is not consulted at all (the
    paper's setup).  With ``enforce`` on, executions and module loads
    on non-excluded filesystems require a valid signature.
    """

    enforce: bool = False
    trusted_keys: list[RsaPublicKey] = field(default_factory=list)
    excluded_fstypes: tuple[FilesystemType, ...] = ()

    def trust_key(self, key: RsaPublicKey) -> None:
        """Add a verification key to the kernel keyring."""
        self.trusted_keys.append(key)

    def excludes_fstype(self, fstype: FilesystemType) -> bool:
        """True when appraisal skips *fstype* (fsmagic semantics)."""
        return any(fstype.magic == excluded.magic for excluded in self.excluded_fstypes)

    def check(
        self, path: str, fstype: FilesystemType, content: bytes,
        signature: ImaSignature | None,
    ) -> None:
        """Raise :class:`AppraisalDenied` when execution must be blocked."""
        if not self.enforce or self.excludes_fstype(fstype):
            return
        if not appraise_content(content, signature, self.trusted_keys):
            reason = "no security.ima signature" if signature is None else (
                f"signature by {signature.signer!r} does not verify"
            )
            raise AppraisalDenied(f"appraisal denied exec of {path}: {reason}")


def sign_file(vfs: Vfs, path: str, keypair: RsaKeyPair, signer: str) -> ImaSignature:
    """``evmctl ima_sign`` for one file: set its security.ima xattr."""
    filesystem, rel = vfs.resolve(path)
    inode = filesystem.lookup(rel)
    if inode is None:
        raise StateError(f"cannot sign missing file: {path}")
    signature = sign_content(inode.content, keypair, signer)
    inode.ima_signature = signature
    return signature


def sign_all_executables(
    vfs: Vfs, keypair: RsaKeyPair, signer: str, prefix: str = "/"
) -> int:
    """Sign every executable under *prefix*; returns the count."""
    signed = 0
    for stat in list(vfs.walk(prefix)):
        if not stat.executable:
            continue
        sign_file(vfs, stat.path, keypair, signer)
        signed += 1
    return signed


def get_signature(vfs: Vfs, path: str) -> ImaSignature | None:
    """Read a file's security.ima xattr (None when unsigned)."""
    filesystem, rel = vfs.resolve(path)
    inode = filesystem.lookup(rel)
    if inode is None:
        raise StateError(f"no such file: {path}")
    return getattr(inode, "ima_signature", None)
