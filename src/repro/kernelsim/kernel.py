"""A bootable machine: VFS + TPM + IMA + the exec model.

:class:`Machine` is the prover in the attestation experiments.  It wires
together the virtual filesystem, a TPM device and an IMA engine, and
exposes the operations workloads and attacks are written in terms of:
executing binaries, running scripts (directly or through an
interpreter), loading kernel modules, writing files, and rebooting.

Execution semantics (the part the paper's P5 depends on):

* ``exec_file`` -- a direct ``execve`` of a binary or of a script with a
  shebang line.  The *file itself* gets a ``BPRM_CHECK`` measurement;
  for a shebang script the interpreter is additionally measured via the
  ``FILE_MMAP`` hook.
* ``run_with_interpreter`` -- ``python script.py`` style invocation.
  Only the **interpreter** is executed as far as the kernel is
  concerned; the script is opened as plain data and is **not measured**
  (P5).  When the machine's *script execution control* feature (M4) is
  enabled and the interpreter has opted in, the interpreter tells the
  kernel the opened file is code and the script is measured after all.

Reboot semantics: the TPM resets (PCRs cleared, reset counter bumped), a
fresh IMA engine starts with a new boot aggregate, and volatile
filesystems (tmpfs, proc, ramfs, devtmpfs) lose their contents -- which
is why several of the paper's adaptive attacks are "detectable upon
reboot" only if the payload survives somewhere persistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import SimClock
from repro.common.errors import StateError
from repro.common.events import EventLog
from repro.kernelsim.appraisal import AppraisalPolicy, get_signature
from repro.kernelsim.ima import ImaEngine, ImaHook, ImaLogEntry, ImaPolicy
from repro.kernelsim.vfs import FilesystemType, FileStat, Vfs
from repro.tpm.device import Tpm

#: Filesystems whose contents do not survive a reboot.
VOLATILE_FSTYPES = (
    FilesystemType.TMPFS,
    FilesystemType.PROC,
    FilesystemType.RAMFS,
    FilesystemType.DEVTMPFS,
    FilesystemType.SYSFS,
    FilesystemType.DEBUGFS,
    FilesystemType.SECURITYFS,
)

#: Standard mount layout of the simulated Ubuntu machine.  Note that
#: ``/tmp`` is *not* mounted tmpfs: on stock Ubuntu 22.04 it lives on
#: the root ext4 filesystem -- which is precisely why IMA measures
#: files there (making P4's stage-in-/tmp-then-move trick work) even
#: though the Keylime policy excludes the directory (P1).  systemd's
#: tmpfiles cleans it at boot, modelled in :meth:`Machine.reboot`.
DEFAULT_MOUNTS: tuple[tuple[str, FilesystemType], ...] = (
    ("/run", FilesystemType.TMPFS),
    ("/dev", FilesystemType.DEVTMPFS),
    ("/dev/shm", FilesystemType.TMPFS),
    ("/proc", FilesystemType.PROC),
    ("/sys", FilesystemType.SYSFS),
    ("/sys/kernel/debug", FilesystemType.DEBUGFS),
    ("/sys/kernel/security", FilesystemType.SECURITYFS),
)


@dataclass(frozen=True)
class ExecResult:
    """Outcome of one execution event.

    Attributes:
        path: real absolute path of the executed file.
        recorded_path: path IMA recorded (differs under chroot).
        entries: IMA log entries produced by this execution (empty when
            every measurement was suppressed by policy or cache).
    """

    path: str
    recorded_path: str
    entries: tuple[ImaLogEntry, ...] = field(default_factory=tuple)

    @property
    def measured(self) -> bool:
        """True when at least one measurement was recorded."""
        return bool(self.entries)


class Machine:
    """The attested prover machine."""

    def __init__(
        self,
        name: str,
        tpm: Tpm,
        clock: SimClock | None = None,
        events: EventLog | None = None,
        ima_policy: ImaPolicy | None = None,
        kernel_version: str = "5.15.0-generic",
    ) -> None:
        self.name = name
        self.tpm = tpm
        self.clock = clock if clock is not None else SimClock()
        self.events = events if events is not None else EventLog()
        self.ima_policy = ima_policy if ima_policy is not None else ImaPolicy()
        # IMA appraisal (signature enforcement); off by default, as in
        # the paper's measurement-mode setup.
        self.appraisal = AppraisalPolicy()
        self.vfs = Vfs()
        for point, fstype in DEFAULT_MOUNTS:
            self.vfs.mount(point, fstype)

        self.current_kernel = kernel_version
        self.pending_kernel: str | None = None
        self.loaded_modules: list[str] = []
        self.powered_on = False
        self.ima: ImaEngine | None = None

        # M4: script execution control. Interpreters opt in by path.
        self.script_exec_control_enabled = False
        self.opted_in_interpreters: set[str] = set()

    # -- lifecycle ----------------------------------------------------------

    def boot(self) -> None:
        """Power on: measured boot extends PCRs 0-7, IMA starts fresh."""
        if self.powered_on:
            raise StateError(f"machine {self.name} is already powered on")
        self.powered_on = True
        self._measured_boot()
        self.ima = ImaEngine(self.ima_policy, self.tpm)
        self.ima.record_boot_aggregate()
        self.loaded_modules = []
        self.events.emit(
            self.clock.now, f"machine.{self.name}", "kernel.booted",
            kernel=self.current_kernel,
        )

    def reboot(self) -> None:
        """Power cycle: TPM reset, volatile filesystems cleared, new kernel."""
        if not self.powered_on:
            raise StateError(f"machine {self.name} is not powered on")
        self.powered_on = False
        self.tpm.reset()
        for _point, filesystem in self.vfs.mounts():
            if filesystem.fstype in VOLATILE_FSTYPES:
                filesystem.clear()
        # systemd-tmpfiles: /tmp lives on the root filesystem on stock
        # Ubuntu but is emptied at every boot.
        for stat in list(self.vfs.walk("/tmp")):
            self.vfs.unlink(stat.path)
        if self.pending_kernel is not None:
            self.current_kernel = self.pending_kernel
            self.pending_kernel = None
        self.boot()

    def _measured_boot(self) -> None:
        """Extend PCRs 0-7 with synthetic firmware/bootloader/kernel digests."""
        from repro.common.hexutil import sha256_hex

        stages = [
            (0, f"firmware:{self.name}"),
            (1, "firmware-config"),
            (2, "option-roms"),
            (4, f"bootloader:grub"),
            (5, "bootloader-config"),
            (7, "secureboot-policy"),
        ]
        for index, label in stages:
            self.tpm.extend(index, sha256_hex(label.encode()), algorithm="sha256")
        self.tpm.extend(4, sha256_hex(f"kernel:{self.current_kernel}".encode()))

    def require_booted(self) -> ImaEngine:
        """The live IMA engine; raises when the machine is off."""
        if not self.powered_on or self.ima is None:
            raise StateError(f"machine {self.name} is not booted")
        return self.ima

    # -- file plumbing ---------------------------------------------------

    def install_file(self, path: str, content: bytes, executable: bool = False) -> FileStat:
        """Write a file (package installs, attack payload drops...)."""
        return self.vfs.write_file(path, content, executable=executable)

    def remove_file(self, path: str) -> None:
        """Delete a file."""
        self.vfs.unlink(path)

    def open_for_write(self, path: str, content: bytes) -> bool:
        """An *in-place* write (O_WRONLY open) to an existing file.

        If the file was measured this boot, IMA cannot vouch for what
        actually ran versus what is now on disk, so it records a
        ToMToU/open-writers **violation** (zero digests in the log, the
        PCR poisoned with 0xFF).  Package managers avoid this by
        writing to a temp file and renaming -- which is why ordinary
        updates (``install_file``) do not violate.  Returns True when a
        violation was recorded.
        """
        ima = self.require_booted()
        stat = self.vfs.stat(path)
        violated = ima.note_write(path, stat)
        self.vfs.write_file(path, content, executable=stat.executable)
        self.events.emit(
            self.clock.now, f"machine.{self.name}", "file.inplace_write",
            path=path, violation=violated,
        )
        return violated

    def move_file(self, src: str, dst: str) -> FileStat:
        """``mv``: inode-preserving within one filesystem (see P4)."""
        return self.vfs.rename(src, dst)

    # -- execution ----------------------------------------------------------


    def _appraise(self, path: str, stat, content: bytes) -> None:
        """Consult IMA appraisal before letting *path* execute."""
        self.appraisal.check(
            path, stat.fstype, content, get_signature(self.vfs, path)
        )

    def exec_file(self, path: str, chroot: str | None = None) -> ExecResult:
        """Directly execute a binary or shebang script (``execve``)."""
        ima = self.require_booted()
        stat = self.vfs.stat(path)
        if not stat.executable:
            raise StateError(f"exec: permission denied (no exec bit): {path}")
        content = self.vfs.read_file(path)
        self._appraise(path, stat, content)
        recorded = _chroot_view(path, chroot)
        entries = []
        entry = ima.process_event(recorded, stat, content, ImaHook.BPRM_CHECK)
        if entry is not None:
            entries.append(entry)
        self.events.emit(
            self.clock.now, f"machine.{self.name}", "exec.file",
            path=path, recorded=recorded, measured=entry is not None,
        )
        return ExecResult(path=path, recorded_path=recorded, entries=tuple(entries))

    def exec_shebang_script(
        self, script_path: str, interpreter_path: str, chroot: str | None = None
    ) -> ExecResult:
        """Execute ``./script.py`` -- the shebang loads the interpreter.

        Both the script (BPRM_CHECK) and the interpreter (FILE_MMAP) are
        measured; this is the invocation style IMA handles correctly.
        """
        ima = self.require_booted()
        stat = self.vfs.stat(script_path)
        if not stat.executable:
            raise StateError(f"exec: permission denied (no exec bit): {script_path}")
        self._appraise(script_path, stat, self.vfs.read_file(script_path))
        interp_appraise_stat = self.vfs.stat(interpreter_path)
        self._appraise(
            interpreter_path, interp_appraise_stat,
            self.vfs.read_file(interpreter_path),
        )
        recorded = _chroot_view(script_path, chroot)
        entries = []
        entry = ima.process_event(
            recorded, stat, self.vfs.read_file(script_path), ImaHook.BPRM_CHECK
        )
        if entry is not None:
            entries.append(entry)
        interp_stat = self.vfs.stat(interpreter_path)
        interp_entry = ima.process_event(
            _chroot_view(interpreter_path, chroot),
            interp_stat,
            self.vfs.read_file(interpreter_path),
            ImaHook.MMAP_EXEC,
        )
        if interp_entry is not None:
            entries.append(interp_entry)
        self.events.emit(
            self.clock.now, f"machine.{self.name}", "exec.shebang",
            script=script_path, interpreter=interpreter_path,
            measured=entry is not None,
        )
        return ExecResult(path=script_path, recorded_path=recorded, entries=tuple(entries))

    def run_with_interpreter(
        self, interpreter_path: str, script_path: str, chroot: str | None = None
    ) -> ExecResult:
        """Execute ``python script.py`` -- P5 territory.

        The kernel sees an execve of the *interpreter*; the script is
        opened by the interpreter as ordinary data and bypasses IMA's
        exec hooks entirely.  The script needs no exec bit.  With script
        execution control (M4) enabled *and* the interpreter opted in,
        the open is flagged as code and the script is measured.
        """
        ima = self.require_booted()
        interp_stat = self.vfs.stat(interpreter_path)
        if not interp_stat.executable:
            raise StateError(f"exec: permission denied (no exec bit): {interpreter_path}")
        self._appraise(
            interpreter_path, interp_stat, self.vfs.read_file(interpreter_path)
        )
        entries = []
        interp_recorded = _chroot_view(interpreter_path, chroot)
        entry = ima.process_event(
            interp_recorded, interp_stat, self.vfs.read_file(interpreter_path),
            ImaHook.BPRM_CHECK,
        )
        if entry is not None:
            entries.append(entry)

        script_recorded = _chroot_view(script_path, chroot)
        script_stat = self.vfs.stat(script_path)
        script_measured = False
        if (
            self.script_exec_control_enabled
            and interpreter_path in self.opted_in_interpreters
        ):
            script_entry = ima.process_event(
                script_recorded, script_stat, self.vfs.read_file(script_path),
                ImaHook.BPRM_CHECK,
            )
            if script_entry is not None:
                entries.append(script_entry)
                script_measured = True
        self.events.emit(
            self.clock.now, f"machine.{self.name}", "exec.interpreter",
            interpreter=interpreter_path, script=script_path,
            script_measured=script_measured,
        )
        return ExecResult(
            path=script_path, recorded_path=script_recorded, entries=tuple(entries)
        )

    def mmap_library(self, path: str, chroot: str | None = None) -> ExecResult:
        """Map a shared library with PROT_EXEC (``dlopen``/ld.so load).

        Hits IMA's FILE_MMAP hook and, under enforcement, appraisal --
        libraries need signatures just like binaries.  The exec bit is
        not required (shared objects often ship 0644).
        """
        ima = self.require_booted()
        stat = self.vfs.stat(path)
        content = self.vfs.read_file(path)
        self._appraise(path, stat, content)
        recorded = _chroot_view(path, chroot)
        entry = ima.process_event(recorded, stat, content, ImaHook.MMAP_EXEC)
        self.events.emit(
            self.clock.now, f"machine.{self.name}", "mmap.exec",
            path=path, measured=entry is not None,
        )
        entries = (entry,) if entry is not None else tuple()
        return ExecResult(path=path, recorded_path=recorded, entries=entries)

    def run_interpreter_inline(
        self, interpreter_path: str, code: str, chroot: str | None = None
    ) -> ExecResult:
        """Execute ``python -c '...'`` / piped-stdin code.

        No file ever crosses an exec or open-for-exec boundary: the code
        arrives as argv or stdin.  Only the interpreter is measured, and
        *no* file-based mechanism -- including script execution control
        (M4) -- can see the payload.  This is why the paper judges P5
        impossible to fully mitigate (the Aoyama row of Table II).
        """
        ima = self.require_booted()
        interp_stat = self.vfs.stat(interpreter_path)
        if not interp_stat.executable:
            raise StateError(f"exec: permission denied (no exec bit): {interpreter_path}")
        self._appraise(
            interpreter_path, interp_stat, self.vfs.read_file(interpreter_path)
        )
        recorded = _chroot_view(interpreter_path, chroot)
        entry = ima.process_event(
            recorded, interp_stat, self.vfs.read_file(interpreter_path),
            ImaHook.BPRM_CHECK,
        )
        self.events.emit(
            self.clock.now, f"machine.{self.name}", "exec.inline",
            interpreter=interpreter_path, code_bytes=len(code),
        )
        entries = (entry,) if entry is not None else tuple()
        return ExecResult(path=interpreter_path, recorded_path=recorded, entries=entries)

    def load_kernel_module(self, path: str) -> ExecResult:
        """Load a kernel module (``insmod``); measured via MODULE_CHECK."""
        ima = self.require_booted()
        stat = self.vfs.stat(path)
        self._appraise(path, stat, self.vfs.read_file(path))
        entry = ima.process_event(path, stat, self.vfs.read_file(path), ImaHook.MODULE_CHECK)
        self.loaded_modules.append(path)
        self.events.emit(
            self.clock.now, f"machine.{self.name}", "module.loaded",
            path=path, measured=entry is not None,
        )
        entries = (entry,) if entry is not None else tuple()
        return ExecResult(path=path, recorded_path=path, entries=entries)

    # -- M4 feature toggle ------------------------------------------------

    def enable_script_exec_control(self, interpreters: list[str]) -> None:
        """Turn on M4 with the given opted-in interpreter paths."""
        self.script_exec_control_enabled = True
        self.opted_in_interpreters.update(interpreters)


def _chroot_view(path: str, chroot: str | None) -> str:
    """Path as recorded by IMA for a process running under *chroot*.

    IMA resolves the dentry path relative to the process's root, so a
    SNAP binary ``/snap/core20/1234/usr/bin/tool`` confined with root
    ``/snap/core20/1234`` is recorded as ``/usr/bin/tool`` -- the
    truncation behind the paper's SNAP false positives.
    """
    if chroot is None:
        return path
    chroot = chroot.rstrip("/")
    if path == chroot:
        return "/"
    if path.startswith(chroot + "/"):
        return path[len(chroot):]
    return path
