"""A simulated Linux kernel: VFS, exec model, and IMA.

This package models the slice of Linux that the paper's findings live
in.  Three pieces:

* :mod:`repro.kernelsim.vfs` -- a virtual filesystem with mount points,
  filesystem types (and their magic numbers), inodes and version
  counters.  Renames within one filesystem keep the inode -- the
  property behind the paper's P4.
* :mod:`repro.kernelsim.ima` -- the Integrity Measurement Architecture:
  policy rules (including ``dont_measure fsmagic=...`` exclusions, P3),
  the measure-once-per-inode cache (P4), the ima-ng measurement list,
  and PCR-10 aggregation into the machine's TPM.
* :mod:`repro.kernelsim.kernel` -- a bootable machine tying the VFS,
  the TPM and IMA together, with the exec model (binary, shebang,
  interpreter invocation -- P5) and chroot path truncation (the SNAP
  false-positive cause).

Every quirk the paper exploits is implemented as the kernel actually
behaves, not special-cased per attack: the attacks in
:mod:`repro.attacks` succeed or fail purely through these mechanisms.
"""

from repro.kernelsim.appraisal import (
    AppraisalDenied,
    AppraisalPolicy,
    sign_all_executables,
    sign_file,
)
# NOTE: repro.kernelsim.containers is intentionally NOT imported here --
# its policy-side scrub helper depends on repro.keylime.policy, which
# sits above this layer; import it directly.
from repro.kernelsim.ima import ImaEngine, ImaLogEntry, ImaPolicy
from repro.kernelsim.kernel import ExecResult, Machine
from repro.kernelsim.vfs import FilesystemType, Inode, Vfs, VfsError

__all__ = [
    "AppraisalDenied",
    "AppraisalPolicy",
    "ExecResult",
    "FilesystemType",
    "ImaEngine",
    "ImaLogEntry",
    "ImaPolicy",
    "Inode",
    "Machine",
    "Vfs",
    "VfsError",
    "sign_all_executables",
    "sign_file",
]
