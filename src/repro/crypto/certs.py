"""Minimal certificates and chains for the TPM trust model.

A real TPM ships with an Endorsement Key (EK) certificate signed by the
TPM manufacturer's CA; Keylime's registrar validates that chain before
trusting quotes from the corresponding attestation key.  This module
models just enough of X.509 to express that: a certificate binds a
subject name to an RSA public key, is signed by an issuer, and chains
are verified back to a trusted root.

Certificates are serialised canonically (sorted-key JSON without the
signature field) so the signed bytes are unambiguous.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.common.errors import IntegrityError
from repro.common.rng import SeededRng
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair


@dataclass(frozen=True)
class Certificate:
    """A signed binding of *subject* to *public_key*.

    Attributes:
        subject: distinguished name of the key holder.
        issuer: distinguished name of the signer.
        public_key: the certified RSA public key.
        serial: issuer-unique serial number.
        signature: issuer's PKCS#1 v1.5 signature over :meth:`tbs_bytes`.
    """

    subject: str
    issuer: str
    public_key: RsaPublicKey
    serial: int
    signature: bytes = field(repr=False)

    def tbs_bytes(self) -> bytes:
        """The to-be-signed canonical encoding (everything but the signature)."""
        return _tbs_bytes(self.subject, self.issuer, self.public_key, self.serial)

    def verify_signature(self, issuer_key: RsaPublicKey) -> bool:
        """True when *issuer_key* signed this certificate."""
        return issuer_key.verify(self.tbs_bytes(), self.signature)

    @property
    def self_signed(self) -> bool:
        """True for root certificates (subject == issuer)."""
        return self.subject == self.issuer


def _tbs_bytes(subject: str, issuer: str, public_key: RsaPublicKey, serial: int) -> bytes:
    payload = {
        "subject": subject,
        "issuer": issuer,
        "n": public_key.n,
        "e": public_key.e,
        "serial": serial,
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class CertificateAuthority:
    """A certificate issuer (e.g. a TPM manufacturer).

    The CA holds its own keypair and self-signed root certificate, and
    issues leaf certificates with monotonically increasing serials.
    """

    def __init__(self, name: str, rng: SeededRng, key_bits: int = 1024) -> None:
        self.name = name
        self._keypair: RsaKeyPair = generate_keypair(rng.fork("ca-key"), bits=key_bits)
        self._next_serial = 1
        root_tbs = _tbs_bytes(name, name, self._keypair.public, 0)
        self.root_certificate = Certificate(
            subject=name,
            issuer=name,
            public_key=self._keypair.public,
            serial=0,
            signature=self._keypair.sign(root_tbs),
        )

    @property
    def public_key(self) -> RsaPublicKey:
        """The CA's verification key."""
        return self._keypair.public

    def issue(self, subject: str, public_key: RsaPublicKey) -> Certificate:
        """Issue a certificate binding *subject* to *public_key*."""
        serial = self._next_serial
        self._next_serial += 1
        tbs = _tbs_bytes(subject, self.name, public_key, serial)
        return Certificate(
            subject=subject,
            issuer=self.name,
            public_key=public_key,
            serial=serial,
            signature=self._keypair.sign(tbs),
        )


def verify_chain(chain: list[Certificate], trusted_roots: list[Certificate]) -> None:
    """Verify a leaf-first certificate chain against trusted roots.

    *chain* is ordered leaf -> ... -> root-or-intermediate.  Each
    certificate must be signed by the next one's key; the final
    certificate must be signed by (or be) one of *trusted_roots*.

    Raises :class:`IntegrityError` on any failure; returns ``None`` on
    success so callers cannot accidentally ignore a failed check.
    """
    if not chain:
        raise IntegrityError("empty certificate chain")
    if not trusted_roots:
        raise IntegrityError("no trusted roots configured")

    for cert, issuer_cert in zip(chain, chain[1:]):
        if cert.issuer != issuer_cert.subject:
            raise IntegrityError(
                f"chain break: {cert.subject!r} names issuer {cert.issuer!r}, "
                f"but next certificate is for {issuer_cert.subject!r}"
            )
        if not cert.verify_signature(issuer_cert.public_key):
            raise IntegrityError(
                f"bad signature on certificate for {cert.subject!r}",
                context={"subject": cert.subject, "issuer": cert.issuer},
            )

    last = chain[-1]
    for root in trusted_roots:
        if last.issuer == root.subject and last.verify_signature(root.public_key):
            return
    raise IntegrityError(
        f"certificate for {last.subject!r} does not chain to a trusted root",
        context={"subject": last.subject, "issuer": last.issuer},
    )
