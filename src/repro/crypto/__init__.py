"""From-scratch cryptographic substrate.

The real Keylime leans on OpenSSL for RSA signatures and X.509
certificate chains; this reproduction implements the minimal equivalents
in pure Python so the repository has no dependencies beyond the standard
library and the scientific stack:

* :mod:`repro.crypto.rsa` -- RSA key generation (Miller-Rabin primes)
  and PKCS#1 v1.5 signatures over SHA-256.
* :mod:`repro.crypto.certs` -- a minimal certificate structure with
  issuer signatures and chain verification, enough to model the TPM
  manufacturer CA -> endorsement key -> attestation key trust chain.

These primitives are *simulation-grade*: deterministic key generation
from a seeded RNG is a feature here (reproducible experiments), not a
bug, and key sizes default to 1024 bits to keep test suites fast.  Do
not reuse this code outside the simulation.
"""

from repro.crypto.certs import Certificate, CertificateAuthority, verify_chain
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "RsaKeyPair",
    "RsaPublicKey",
    "generate_keypair",
    "verify_chain",
]
