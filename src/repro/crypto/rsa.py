"""RSA signatures implemented from scratch.

This module implements exactly the subset of RSA the attestation stack
needs: key generation with Miller-Rabin primality testing, and PKCS#1
v1.5 signatures over SHA-256 (the scheme TPM 2.0 uses for RSASSA
quotes).  It is deliberately deterministic -- keys are derived from a
:class:`repro.common.rng.SeededRng` stream -- so that an experiment seed
fully determines every signature byte in a run.

The implementation favours clarity over constant-time hygiene; it is a
simulation substrate, not a production cryptography library.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.common.errors import IntegrityError
from repro.common.rng import SeededRng

# DigestInfo DER prefix for SHA-256 (RFC 8017, section 9.2 note 1).
_SHA256_DIGEST_INFO_PREFIX = bytes.fromhex(
    "3031300d060960864801650304020105000420"
)

# Deterministic first line of defence before the probabilistic rounds;
# these witnesses alone are exact for n < 3.3 * 10^24.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


def _miller_rabin_witness(candidate: int, witness: int) -> bool:
    """True when *witness* proves *candidate* composite."""
    if candidate % witness == 0:
        return candidate != witness
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(witness, d, candidate)
    if x in (1, candidate - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % candidate
        if x == candidate - 1:
            return False
    return True


def is_probable_prime(candidate: int, rng: SeededRng | None = None, rounds: int = 16) -> bool:
    """Miller-Rabin primality test.

    Small-prime trial division first, then fixed witnesses 2..199, then
    *rounds* random witnesses drawn from *rng* (or skipped when no rng is
    supplied; the fixed witnesses are already overwhelming for the key
    sizes used here).
    """
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False
    for witness in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if _miller_rabin_witness(candidate, witness):
            return False
    if rng is not None:
        for _ in range(rounds):
            witness = rng.randint(2, candidate - 2)
            if _miller_rabin_witness(candidate, witness):
                return False
    return True


def _generate_prime(rng: SeededRng, bits: int) -> int:
    """Generate a prime of exactly *bits* bits from the rng stream."""
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    while True:
        raw = int.from_bytes(rng.token(bits // 8 + 1), "big")
        candidate = raw | (1 << (bits - 1)) | 1  # force top bit and odd
        candidate &= (1 << bits) - 1
        candidate |= 1 << (bits - 1)
        # Scan forward over odd numbers; much cheaper than fresh draws.
        for offset in range(0, 4096, 2):
            value = candidate + offset
            if value.bit_length() != bits:
                break
            if is_probable_prime(value, rng):
                return value


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)`` with PKCS#1 v1.5 verification."""

    n: int
    e: int

    @property
    def size_bytes(self) -> int:
        """Modulus size in bytes."""
        return (self.n.bit_length() + 7) // 8

    def fingerprint(self) -> str:
        """SHA-256 fingerprint over the canonical encoding of (n, e)."""
        blob = self.n.to_bytes(self.size_bytes, "big") + self.e.to_bytes(4, "big")
        return hashlib.sha256(blob).hexdigest()

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify a PKCS#1 v1.5 SHA-256 signature.  Returns bool, never raises."""
        if len(signature) != self.size_bytes:
            return False
        sig_int = int.from_bytes(signature, "big")
        if sig_int >= self.n:
            return False
        recovered = pow(sig_int, self.e, self.n).to_bytes(self.size_bytes, "big")
        try:
            expected = _pkcs1_v15_pad(message, self.size_bytes)
        except IntegrityError:
            return False
        return recovered == expected


def _pkcs1_v15_pad(message: bytes, size: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of SHA-256(message) to *size* bytes."""
    digest = hashlib.sha256(message).digest()
    payload = _SHA256_DIGEST_INFO_PREFIX + digest
    pad_len = size - len(payload) - 3
    if pad_len < 8:
        raise IntegrityError(f"modulus too small ({size} bytes) for PKCS#1 v1.5/SHA-256")
    return b"\x00\x01" + b"\xff" * pad_len + b"\x00" + payload


@dataclass(frozen=True)
class RsaKeyPair:
    """An RSA keypair with PKCS#1 v1.5 signing.

    The private exponent is kept on the dataclass for simplicity; the
    simulation's trust boundaries are enforced by which *components*
    hold a keypair versus only its :class:`RsaPublicKey`.
    """

    public: RsaPublicKey
    d: int

    def sign(self, message: bytes) -> bytes:
        """Produce a PKCS#1 v1.5 SHA-256 signature over *message*."""
        padded = _pkcs1_v15_pad(message, self.public.size_bytes)
        value = int.from_bytes(padded, "big")
        signature = pow(value, self.d, self.public.n)
        return signature.to_bytes(self.public.size_bytes, "big")


def generate_keypair(rng: SeededRng, bits: int = 1024, e: int = 65537) -> RsaKeyPair:
    """Generate an RSA keypair deterministically from *rng*.

    1024-bit keys keep the test suite fast; the quote format and
    verification logic are identical at any size.
    """
    if bits < 512:
        raise ValueError(f"RSA modulus must be at least 512 bits, got {bits}")
    if bits % 2 != 0:
        raise ValueError(f"RSA modulus size must be even, got {bits}")
    half = bits // 2
    while True:
        p = _generate_prime(rng.fork("p"), half)
        q = _generate_prime(rng.fork("q"), half)
        attempts = 0
        while p == q:
            attempts += 1
            q = _generate_prime(rng.fork(f"q{attempts}"), half)
        n = p * q
        if n.bit_length() != bits:
            rng = rng.fork("retry")
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            rng = rng.fork("retry-e")
            continue
        return RsaKeyPair(public=RsaPublicKey(n=n, e=e), d=d)
