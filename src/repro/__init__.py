"""repro -- a reproduction of "Towards Continuous Integrity Attestation
and Its Challenges in Practice: A Case Study of Keylime" (DSN 2025).

The package is layered bottom-up; see DESIGN.md for the full map:

* :mod:`repro.common` -- simulated clock/scheduler, seeded RNG, events.
* :mod:`repro.crypto` -- from-scratch RSA and certificate chains.
* :mod:`repro.tpm` -- a software TPM 2.0 (PCR banks, signed quotes).
* :mod:`repro.kernelsim` -- a simulated Linux kernel with IMA.
* :mod:`repro.distro` -- an Ubuntu-like archive/mirror/apt/SNAP world.
* :mod:`repro.keylime` -- the Keylime stack (agent, registrar,
  verifier, tenant, runtime policies).
* :mod:`repro.dynpolicy` -- the paper's dynamic policy generation.
* :mod:`repro.attacks` -- the 8-sample attack corpus and P1-P5.
* :mod:`repro.mitigations` -- the recommended fixes M1-M4.
* :mod:`repro.experiments` -- harnesses for every table and figure.
* :mod:`repro.analysis` -- ASCII renderers for the tables and figures.

Quickstart::

    from repro.experiments import build_testbed, TestbedConfig

    testbed = build_testbed(TestbedConfig(seed=42))
    testbed.workload.daily()
    result = testbed.poll()
    assert result.ok
"""

__version__ = "1.0.0"

from repro.experiments.testbed import Testbed, TestbedConfig, build_testbed

__all__ = ["Testbed", "TestbedConfig", "build_testbed", "__version__"]
