"""Command-line interface to the reproduction.

Each subcommand runs one of the paper's experiments at a configurable
scale and prints the corresponding artifact:

.. code-block:: console

    $ repro-cli problems                 # P1-P5 demonstrations
    $ repro-cli fp-week --days 5         # E1, the false-positive week
    $ repro-cli longrun --days 10        # E2-E4 series + summary
    $ repro-cli longrun --days 10 --incident-day 8
    $ repro-cli table1 --days 14         # E5, daily vs weekly
    $ repro-cli table2                   # E7, the full attack matrix
    $ repro-cli attack Mirai --mode adaptive --mitigated
    $ repro-cli obs fleet --days 2 --nodes 4 --prom metrics.prom
    $ repro-cli obs fp-week --days 3 --jsonl telemetry.jsonl
    $ repro-cli obs watch --inject-p2 --once --jsonl run.jsonl
    $ repro-cli obs report run.jsonl

The console script ``repro-cli`` is installed with the package;
``python -m repro.cli`` works identically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import (
    render_fig3,
    render_fig4,
    render_fig5,
    render_fp_week,
    render_problem_demos,
    render_table1,
    render_table2,
)
from repro.distro.workload import ReleaseStreamConfig
from repro.experiments.testbed import TestbedConfig


def _small_stream() -> ReleaseStreamConfig:
    return ReleaseStreamConfig(
        mean_packages_per_day=6.0,
        sd_packages_per_day=6.0,
        mean_exec_files_per_package=10.0,
    )


def _config(args: argparse.Namespace, **overrides) -> TestbedConfig:
    config = TestbedConfig(
        seed=args.seed,
        n_filler_packages=args.fillers,
        mean_exec_files=8.0,
        stream=_small_stream(),
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def _cmd_fp_week(args: argparse.Namespace) -> int:
    from repro.experiments.fp_week import run_fp_week

    config = _config(args, policy_mode="static", continue_on_failure=True)
    result = run_fp_week(config=config, n_days=args.days)
    print(render_fp_week(result))
    return 0


def _cmd_longrun(args: argparse.Namespace) -> int:
    from repro.experiments.longrun import run_longrun

    official = {args.incident_day} if args.incident_day is not None else None
    result = run_longrun(
        config=_config(args), n_days=args.days,
        cadence_days=args.cadence, official_on_days=official,
    )
    print(render_fig3(result))
    print()
    print(render_fig4(result))
    print()
    print(render_fig5(result))
    print(f"\nfalse positives: {len(result.fp_incidents)} "
          f"({result.ok_polls}/{result.total_polls} polls green)")
    for incident in result.fp_incidents[:5]:
        print(f"  day {incident.day}: {incident.detail}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.longrun import run_longrun, table1_rows

    daily = run_longrun(config=_config(args), n_days=args.days, cadence_days=1)
    weekly = run_longrun(
        config=_config(args, seed=f"{args.seed}/weekly"),
        n_days=args.days, cadence_days=7,
    )
    print(render_table1(table1_rows(daily, weekly)))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.experiments.fn_matrix import run_attack_matrix

    stock = run_attack_matrix(mitigated=False, seed=args.seed)
    mitigated = run_attack_matrix(mitigated=True, seed=args.seed)
    print(render_table2(stock, mitigated))
    return 0


def _cmd_problems(args: argparse.Namespace) -> int:
    from repro.experiments.problems import run_all_demos

    print(render_problem_demos(run_all_demos()))
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.attacks import AttackMode, all_attacks
    from repro.experiments.fn_matrix import run_attack_trial

    samples = {sample.name.lower(): sample for sample in all_attacks()}
    sample = samples.get(args.name.lower())
    if sample is None:
        print(f"unknown attack {args.name!r}; choose from: "
              f"{', '.join(sorted(s.name for s in all_attacks()))}",
              file=sys.stderr)
        return 2
    trial = run_attack_trial(
        sample, AttackMode(args.mode), mitigated=args.mitigated,
        config=_config(args),
    )
    print(f"{trial.name} ({trial.mode.value}, {trial.ruleset}):")
    print(f"  detected live:         {trial.detected_live}")
    print(f"  detected after reboot: {trial.detected_after_reboot}")
    print(f"  alerting paths:        {list(trial.failing_paths) or '-'}")
    print(f"  problems exploited:    {list(trial.problems_used) or '-'}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import runtime as obs_runtime
    from repro.obs.exporters import (
        console_summary,
        jsonl_dump,
        prometheus_text,
        write_text_atomic,
    )

    with obs_runtime.session() as telemetry:
        if args.experiment == "fp-week":
            from repro.experiments.fp_week import run_fp_week

            config = _config(args, policy_mode="static", continue_on_failure=True)
            result = run_fp_week(config=config, n_days=args.days)
            print(f"fp-week: {result.total_polls} polls, "
                  f"{result.total_false_positives} distinct false positives")
        elif args.experiment == "longrun":
            from repro.experiments.longrun import run_longrun

            result = run_longrun(config=_config(args), n_days=args.days)
            print(f"longrun: {result.total_polls} polls, "
                  f"{len(result.fp_incidents)} false positives")
        else:  # fleet
            from repro.experiments.fleet_run import run_fleet_scenario

            result = run_fleet_scenario(
                seed=args.seed, n_nodes=args.nodes, n_days=args.days,
                n_filler_packages=args.fillers,
            )
            print(f"fleet: {len(result.fleet)} nodes, {result.total_polls} polls, "
                  f"{len(result.update_reports)} update cycles")

        print()
        print(console_summary(telemetry.registry, telemetry.tracer))
        if args.prom:
            write_text_atomic(args.prom, prometheus_text(telemetry.registry))
            print(f"\nPrometheus exposition written to {args.prom}")
        if args.jsonl:
            write_text_atomic(
                args.jsonl, jsonl_dump(telemetry.registry, telemetry.tracer)
            )
            print(f"JSONL telemetry written to {args.jsonl}")
    return 0


def _cmd_obs_watch(args: argparse.Namespace) -> int:
    from repro.obs import runtime as obs_runtime
    from repro.obs.exporters import jsonl_records, write_jsonl_atomic
    from repro.obs.health import HealthWatch, render_dashboard

    def frame(now: float, live_watch: HealthWatch) -> None:
        print(render_dashboard(live_watch, now))
        print()

    observatory = None
    if args.tsdb:
        from repro.obs.rules import Observatory

        observatory = Observatory(poll_interval=args.tick_minutes * 60.0)
    watch = HealthWatch(
        gap_polls=args.gap_polls,
        tick_interval=args.tick_minutes * 60.0,
        on_frame=None if args.once else frame,
        frame_every=0 if args.once else args.frame_every,
        observatory=observatory,
    )
    with obs_runtime.session() as telemetry:
        telemetry.observatory = observatory
        chaos = None
        if args.scenario == "fleet":
            from repro.experiments.fleet_run import (
                ChaosInjection,
                P2Injection,
                run_fleet_scenario,
            )

            if args.chaos_profile is not None:
                chaos = ChaosInjection(
                    profile=args.chaos_profile, chaos_seed=args.chaos_seed
                )
            result = run_fleet_scenario(
                seed=args.seed, n_nodes=args.nodes, n_days=args.days,
                n_filler_packages=args.fillers,
                p2=P2Injection() if args.inject_p2 else None,
                watch=watch,
                chaos=chaos,
                push_mode=args.push,
            )
            mode = "push" if args.push else "pull"
            print(f"fleet ({mode}): {len(result.fleet)} nodes, "
                  f"{result.total_polls} rounds; status: {result.status}")
            if result.fault_plan is not None:
                counts = result.fault_plan.counts_by_kind()
                injected = ", ".join(
                    f"{kind}={count}" for kind, count in sorted(counts.items())
                ) or "none fired"
                print(f"chaos: profile={result.chaos.profile} "
                      f"seed={result.chaos.chaos_seed} injected: {injected}")
        else:  # longrun
            from repro.experiments.longrun import run_longrun

            result = run_longrun(
                config=_config(args), n_days=args.days,
                p2_on_day=args.p2_day if args.inject_p2 else None,
                watch=watch,
            )
            print(f"longrun: {result.total_polls} polls, "
                  f"{len(result.fp_incidents)} false positives")

        now = watch.monitor.last_check or 0.0
        print()
        print(render_dashboard(watch, now))
        if watch.engine.history:
            print("\n-- alerts fired over the run --")
            for alert in watch.engine.history:
                who = f" agent={alert.agent}" if alert.agent else ""
                print(f"  t={alert.time / 3600.0:8.2f}h [{alert.severity.upper():8s}] "
                      f"{alert.rule}{who}: {alert.message}")
        for incident in watch.incidents:
            print()
            # Agent-scoped incidents are the forensic deep dives; keep
            # fleet-wide SLO burns to their header block on the console.
            print(incident.render_text(include_timeline=incident.agent_id is not None))

        if args.jsonl:
            run_meta = {
                "type": "run_meta",
                "scenario": args.scenario,
                "push_mode": bool(args.push and args.scenario == "fleet"),
                "seed": str(args.seed),
                "days": args.days,
                "poll_interval": watch.poll_interval,
                "gap_polls": watch.gap_polls,
                "agents": watch.monitor.gaps.agents(),
                "end_time": now,
            }
            if chaos is not None:
                run_meta["chaos_profile"] = chaos.profile
                run_meta["chaos_seed"] = str(chaos.chaos_seed)
            extra = [run_meta]
            extra += [alert.to_record() for alert in watch.engine.history]
            extra += [incident.to_record() for incident in watch.incidents]
            if watch.observatory is not None:
                extra += list(watch.observatory.store.export_records())
            # Stream record-by-record: a long TSDB-backed run exports in
            # O(1) memory while keeping the atomic-replace guarantee.
            lines = write_jsonl_atomic(
                args.jsonl,
                jsonl_records(
                    telemetry.registry, telemetry.tracer,
                    events=watch.monitor.events,
                    audit=watch.correlator.audit,
                    extra_records=extra,
                ),
            )
            print(f"\nJSONL run export written to {args.jsonl} "
                  f"({lines} records)")
    return 0


def _cmd_obs_top(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.obs.dashboard import render_top, top_frame_record
    from repro.obs.exporters import write_jsonl_atomic
    from repro.obs.tsdb import TsdbStore

    poll_interval = args.tick_minutes * 60.0

    def load_perf(store: TsdbStore) -> None:
        """Merge a perf trajectory into *store* as perf:metric series."""
        if not getattr(args, "perf", None):
            return
        from repro.obs.perf import load_trajectory, trajectory_to_store

        trajectory_to_store(load_trajectory(args.perf), store)

    if args.replay:
        from repro.obs.exporters import load_jsonl

        with open(args.replay, "r", encoding="utf-8") as handle:
            records = load_jsonl(handle.read())
        store = TsdbStore.from_records(records)
        if not len(store):
            print(f"no TSDB series in {args.replay}")
            return 1
        load_perf(store)
        span = store.time_span()
        now = span[1] if span else 0.0
        frames = [r for r in records if r.get("type") == "top_frame"]
        staleness = frames[-1].get("sources") if frames else None
        print(render_top(
            store, now, staleness=staleness, poll_interval=poll_interval
        ))
        return 0

    from repro.experiments.fleet_run import ChaosInjection
    from repro.experiments.observatory import run_federated_observatory

    chaos = None
    if args.chaos_profile is not None:
        chaos = ChaosInjection(
            profile=args.chaos_profile, chaos_seed=args.chaos_seed
        )

    def frame(now: float, hub) -> dict:
        record = top_frame_record(
            hub.store, now, hub.staleness(now), poll_interval
        )
        if not args.once:
            print(render_top(
                hub.store, now, hub.staleness(now),
                poll_interval=poll_interval,
            ))
            print()
        return record

    result = run_federated_observatory(
        seed=args.seed,
        n_shards=args.shards,
        nodes_per_shard=args.nodes,
        n_days=args.days,
        n_filler_packages=args.fillers,
        poll_interval=poll_interval,
        scrape_interval=poll_interval,
        chaos=chaos,
        on_frame=frame,
        frame_every=args.frame_every,
    )
    hub = result.hub
    end = result.end_time
    staleness = hub.staleness(end)
    load_perf(hub.store)
    print(render_top(hub.store, end, staleness, poll_interval=poll_interval))
    for shard in result.shards:
        alerts = len(shard.watch.engine.history)
        print(f"  {shard.name}: {len(shard.fleet)} nodes, "
              f"{shard.snapshots_sent} snapshots shipped, "
              f"{alerts} alert(s) fired")

    if args.jsonl:
        final = top_frame_record(hub.store, end, staleness, poll_interval)

        def records():
            yield {
                "type": "run_meta",
                "scenario": "observatory",
                "seed": str(args.seed),
                "days": args.days,
                "shards": args.shards,
                "nodes_per_shard": args.nodes,
                "poll_interval": poll_interval,
                "end_time": end,
                "sources": {
                    shard.name: shard.snapshots_sent
                    for shard in result.shards
                },
            }
            yield from hub.store.export_records()
            for _, captured in result.frames:
                yield captured
            yield final

        lines = write_jsonl_atomic(args.jsonl, records())
        print(f"\nTSDB export written to {args.jsonl} ({lines} records)")
    if args.json_summary:
        print(json_module.dumps(
            top_frame_record(hub.store, end, staleness, poll_interval),
            sort_keys=True,
        ))
    return 0


def _cmd_obs_capacity(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.obs.capacity import plan_capacity, render_capacity_plan

    if args.replay:
        from repro.obs.capacity import model_from_store
        from repro.obs.exporters import load_jsonl
        from repro.obs.tsdb import TsdbStore

        with open(args.replay, "r", encoding="utf-8") as handle:
            records = load_jsonl(handle.read())
        store = TsdbStore.from_records(records)
        model = model_from_store(store)
        if model is None or model.samples == 0:
            print(f"no fleet tick accounting series in {args.replay} "
                  "(need fleet_ticks_total / fleet_polled_agents_total / "
                  "fleet_tick_busy_seconds_total)")
            return 1
        interval = args.interval if args.interval is not None else 1800.0
    else:
        from repro.experiments.saturation import (
            render_sweep,
            run_saturation_sweep,
        )

        sizes = tuple(
            int(part) for part in args.sizes.split(",") if part.strip()
        )
        sweep = run_saturation_sweep(
            sizes=sizes,
            ticks=args.ticks,
            budget=args.budget,
            seed=str(args.seed),
            n_filler_packages=args.fillers,
        )
        print(render_sweep(sweep))
        print()
        model = sweep.model
        interval = args.interval if args.interval is not None else sweep.budget

    plan = plan_capacity(
        model,
        interval,
        verifiers=args.verifiers,
        current_nodes=args.current_nodes,
        growth_per_day=args.growth_per_day,
        target_nodes=args.target_nodes,
    )
    print(render_capacity_plan(plan))
    if args.json_summary:
        print(json_module.dumps(plan.to_record(), sort_keys=True))
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.exporters import load_jsonl
    from repro.obs.incidents import reports_from_export, split_export

    with open(args.export_file, "r", encoding="utf-8") as handle:
        records = load_jsonl(handle.read())
    groups = split_export(records)
    meta = (groups.get("run_meta") or [{}])[0]
    if meta:
        print(f"run: scenario={meta.get('scenario')} seed={meta.get('seed')} "
              f"days={meta.get('days')} agents={len(meta.get('agents', ()))}")
    print("records: " + ", ".join(
        f"{kind}={len(items)}" for kind, items in sorted(groups.items())
    ))
    if groups.get("tsdb_series"):
        from repro.obs.tsdb import TsdbStore

        store = TsdbStore.from_records(records)
        stats = store.stats()
        span = store.time_span()
        window = (span[1] - span[0]) / 3600.0 if span else 0.0
        print(f"tsdb: {stats['series']} series, {stats['samples']} samples "
              f"over {window:.1f}h, {stats['scrapes']} scrapes, "
              f"{stats['counter_resets']} counter resets")
    for alert in groups.get("alert", ()):
        who = f" agent={alert['agent']}" if alert.get("agent") else ""
        print(f"  alert t={alert['time'] / 3600.0:8.2f}h "
              f"[{alert['severity'].upper():8s}] {alert['rule']}{who}")
    reports = reports_from_export(records)
    if not reports:
        print("no incidents in export (and none reconstructible from events)")
        return 0
    source = "embedded" if groups.get("incident") else "replayed from events"
    print(f"\n{len(reports)} incident report(s) ({source}):")
    for report in reports:
        print()
        print(report.render_text())
    return 0


def _load_span_store(path: str):
    from repro.obs.exporters import load_jsonl
    from repro.obs.tracestore import SpanStore

    with open(path, "r", encoding="utf-8") as handle:
        records = load_jsonl(handle.read())
    return SpanStore.from_records(records)


def _cmd_obs_trace(args: argparse.Namespace) -> int:
    import json as json_module
    import os as os_module

    from repro.obs import profiling
    from repro.obs.exporters import write_text_atomic
    from repro.obs.tracestore import perfetto_trace

    if args.trace_command == "diff":
        store_a = _load_span_store(args.export_file)
        store_b = _load_span_store(args.export_file_b)
        profile_a = profiling.profile(
            root for entry in store_a.entries() for root in entry.roots
        )
        profile_b = profiling.profile(
            root for entry in store_b.entries() for root in entry.roots
        )
        print(profiling.render_diff(
            profiling.diff_profiles(profile_a, profile_b),
            a_label=os_module.path.basename(args.export_file),
            b_label=os_module.path.basename(args.export_file_b),
        ))
        return 0

    store = _load_span_store(args.export_file)
    if not len(store):
        print("no spans in export")
        return 1

    if args.trace_command == "show":
        if args.trace is not None:
            entry = store.get(args.trace)
            if entry is None:
                print(f"no trace {args.trace!r} in export")
                return 1
        else:
            entry = store.entries()[-1]
        stats = store.stats()
        print(f"store: {stats['traces']} traces, {stats['spans']} spans "
              f"(names: {', '.join(store.names())})")
        print(f"trace {entry.trace_id:032x}  agent={entry.agent or '-'} "
              f"sim_start={entry.sim_start / 3600.0:.2f}h "
              f"wall={entry.wall_duration * 1000:.3f}ms "
              f"error={entry.error}")
        for root in entry.roots:
            for line in root.tree_lines():
                print("  " + line)
        return 0

    if args.trace_command == "query":
        matched = store.query(
            name=args.name,
            agent=args.agent,
            errors_only=args.errors_only,
            since=args.since_hours * 3600.0 if args.since_hours is not None else None,
            until=args.until_hours * 3600.0 if args.until_hours is not None else None,
            min_wall=(
                args.min_wall_ms / 1000.0 if args.min_wall_ms is not None else None
            ),
            limit=args.limit,
        )
        print(f"{len(matched)} matching trace(s):")
        for entry in matched:
            print(f"  {entry.trace_id:032x}  {entry.name:<18s} "
                  f"agent={entry.agent or '-':<16s} "
                  f"t={entry.sim_start / 3600.0:8.2f}h "
                  f"wall={entry.wall_duration * 1000:9.3f}ms "
                  f"spans={entry.span_count:<4d} "
                  f"{'ERROR' if entry.error else 'ok'}")
        return 0

    if args.trace_command == "critical-path":
        if args.trace is not None:
            entry = store.get(args.trace)
            if entry is None:
                print(f"no trace {args.trace!r} in export")
                return 1
            root = entry.heaviest(args.name) or entry.primary
        else:
            slowest = store.slowest(1, name=args.name)
            if slowest:
                root = slowest[0].heaviest(args.name) or slowest[0].primary
            else:
                root = store.slowest(1)[0].primary
        print(profiling.render_critical_path(root))
        return 0

    # export
    if args.format == "perfetto":
        text = json_module.dumps(
            perfetto_trace(store.entries()), sort_keys=True, indent=1
        ) + "\n"
    elif args.format == "collapsed":
        roots = [root for entry in store.entries() for root in entry.roots]
        text = profiling.collapsed_text(roots) + "\n"
    else:  # jsonl
        text = store.dump_jsonl()
    if args.out:
        write_text_atomic(args.out, text)
        stats = store.stats()
        print(f"{args.format} export of {stats['traces']} traces "
              f"({stats['spans']} spans) written to {args.out}")
    else:
        print(text, end="")
    return 0


def _default_bench_dir() -> str:
    """The repo's ``benchmarks/`` directory, wherever the CLI runs from.

    Resolved relative to this source file first (the ``PYTHONPATH=src``
    layout), falling back to the working directory for installed
    checkouts driven from the repo root.
    """
    import os

    here = os.path.dirname(os.path.abspath(__file__))
    for candidate in (
        os.path.join(os.path.dirname(os.path.dirname(here)), "benchmarks"),
        os.path.join(os.getcwd(), "benchmarks"),
    ):
        if os.path.isdir(candidate):
            return candidate
    return "benchmarks"


def _load_harness(bench_dir: str | None):
    """Import ``benchmarks/harness.py`` by path (it is not a package)."""
    import importlib.util
    import os

    directory = bench_dir or _default_bench_dir()
    path = os.path.join(directory, "harness.py")
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"bench harness not found at {path}; pass --bench-dir"
        )
    name = "repro_bench_harness"
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def _cmd_bench_run(args: argparse.Namespace) -> int:
    harness = _load_harness(args.bench_dir)

    names = None if args.all or not args.benches else args.benches
    mode = "smoke" if args.smoke else "full"
    records = harness.run_benches(
        names=names,
        mode=mode,
        trajectory_path=args.trajectory,
        bench_dir=args.bench_dir,
        seed=args.seed_override,
        profile=args.profile,
        log=print,
    )
    if not records:
        print("no benches ran")
        return 1
    print(f"{len(records)} record(s) appended to {args.trajectory}")
    return 0


def _cmd_bench_list(args: argparse.Namespace) -> int:
    import json as json_module

    harness = _load_harness(args.bench_dir)
    specs = harness.discover(args.bench_dir)
    if args.json:
        print(json_module.dumps(
            [spec.to_record() for spec in specs], sort_keys=True
        ))
        return 0
    print(f"{len(specs)} registered bench(es)")
    for spec in specs:
        metrics = ", ".join(
            f"{metric.name} [{metric.unit}, {metric.better} is better]"
            for metric in spec.metrics
        )
        print(f"  {spec.name:<14s} modes={'/'.join(spec.modes)} "
              f"seed={spec.seed}")
        print(f"    {spec.description}")
        print(f"    metrics: {metrics}")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    import json as json_module
    import os

    from repro.obs.exporters import write_jsonl_atomic
    from repro.obs.perf import (
        compare_trajectory,
        diff_folds,
        load_folds,
        load_trajectory,
        render_fold_diff,
    )

    records = load_trajectory(args.trajectory)
    if not records:
        print(f"no bench records in {args.trajectory}")
        return 1
    result = compare_trajectory(
        records,
        baseline_runs=args.baseline,
        mode=args.mode,
        benches=args.benches or None,
        z_threshold=args.threshold,
    )
    summary = result.to_record()

    if args.out:
        lines = write_jsonl_atomic(
            args.out,
            [v.to_record() for v in result.verdicts] + [summary],
        )
        print(f"verdicts written to {args.out} ({lines} records)")
    if args.json:
        print(json_module.dumps(summary, sort_keys=True))
    else:
        counts = result.counts
        print(f"bench compare: {len(result.verdicts)} metric(s) vs "
              f"median of last {result.baseline_runs} same-mode run(s)")
        marker = {"ok": " ", "improved": "+", "regressed": "!", "noisy": "?"}
        for verdict in sorted(
            result.verdicts,
            key=lambda v: (v.status != "regressed", v.bench, v.metric),
        ):
            delta = verdict.delta_ratio
            delta_s = f"{delta:+.1%}" if delta is not None else "   --"
            base = (
                f"{verdict.baseline_median:.4g}"
                if verdict.baseline_median is not None else "--"
            )
            line = (
                f"  {marker[verdict.status]} {verdict.status:<9s} "
                f"{verdict.bench}/{verdict.metric} [{verdict.mode}] "
                f"{verdict.value:.4g}{verdict.unit} vs {base} ({delta_s})"
            )
            if verdict.reason:
                line += f" -- {verdict.reason}"
            if not verdict.baseline_seeds_match:
                line += " [baseline seeds differ]"
            print(line)
        print("  summary: " + " ".join(
            f"{status}={counts[status]}"
            for status in ("ok", "improved", "regressed", "noisy")
        ))
        # A regression with profiles on both sides gets its flamegraph
        # fold diff printed inline -- the verdict links to where the
        # time went, not just that it went somewhere.
        for verdict in result.regressed:
            if not verdict.profile or not verdict.baseline_profile:
                continue
            if not (os.path.exists(verdict.profile)
                    and os.path.exists(verdict.baseline_profile)):
                continue
            with open(verdict.baseline_profile, encoding="utf-8") as handle:
                baseline_folds = load_folds(handle.read())
            with open(verdict.profile, encoding="utf-8") as handle:
                candidate_folds = load_folds(handle.read())
            print(render_fold_diff(
                diff_folds(baseline_folds, candidate_folds),
                a_label=os.path.basename(verdict.baseline_profile),
                b_label=os.path.basename(verdict.profile),
            ))
            break  # one diff is orientation enough; the folds stay on disk

    if args.fail_on_regression and result.counts["regressed"] > 0:
        print(f"FAIL: {result.counts['regressed']} regressed metric(s)")
        return 1
    return 0


def _cmd_bench_history(args: argparse.Namespace) -> int:
    from repro.obs.dashboard import sparkline
    from repro.obs.perf import load_trajectory

    records = load_trajectory(args.trajectory)
    if not records:
        print(f"no bench records in {args.trajectory}")
        return 1
    wanted = set(args.benches) if args.benches else None
    groups: dict[tuple[str, str, str], list] = {}
    for record in records:
        if wanted is not None and record.bench not in wanted:
            continue
        if args.mode is not None and record.mode != args.mode:
            continue
        for metric, value in sorted(record.metrics.items()):
            if args.metric is not None and metric != args.metric:
                continue
            key = (record.bench, record.mode, metric)
            groups.setdefault(key, []).append(
                (value, record.units.get(metric, ""))
            )
    if not groups:
        print("no matching metrics in the trajectory")
        return 1
    print(f"perf trajectory: {args.trajectory} "
          f"({len(records)} run record(s))")
    last_bench = None
    for (bench, mode, metric), points in sorted(groups.items()):
        if bench != last_bench:
            print(f"  {bench}:")
            last_bench = bench
        values = [value for value, _ in points]
        unit = points[-1][1]
        print(f"    {metric:<26s} [{mode:<5s}] "
              f"{sparkline(values, args.width)} "
              f"{values[-1]:10.4g}{unit} ({len(values)} runs)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Reproduction of the DSN 2025 Keylime case study.",
    )
    parser.add_argument("--seed", default="cli", help="experiment seed")
    parser.add_argument(
        "--fillers", type=int, default=40,
        help="base-system filler packages (scale knob)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fp_week = commands.add_parser("fp-week", help="E1: the false-positive week")
    fp_week.add_argument("--days", type=int, default=7)
    fp_week.set_defaults(func=_cmd_fp_week)

    longrun = commands.add_parser(
        "longrun", help="E2-E4: dynamic-policy long run (Figs 3-5)"
    )
    longrun.add_argument("--days", type=int, default=10)
    longrun.add_argument("--cadence", type=int, default=1)
    longrun.add_argument(
        "--incident-day", type=int, default=None,
        help="inject the official-archive operator error on this day",
    )
    longrun.set_defaults(func=_cmd_longrun)

    table1 = commands.add_parser("table1", help="E5: daily vs weekly summary")
    table1.add_argument("--days", type=int, default=14)
    table1.set_defaults(func=_cmd_table1)

    table2 = commands.add_parser("table2", help="E7: the 8-attack matrix")
    table2.set_defaults(func=_cmd_table2)

    problems = commands.add_parser("problems", help="E8: P1-P5 demonstrations")
    problems.set_defaults(func=_cmd_problems)

    attack = commands.add_parser("attack", help="run one attack trial")
    attack.add_argument("name", help="sample name, e.g. Mirai")
    attack.add_argument("--mode", choices=["basic", "adaptive"], default="basic")
    attack.add_argument("--mitigated", action="store_true")
    attack.set_defaults(func=_cmd_attack)

    obs = commands.add_parser(
        "obs", help="telemetry: instrumented runs, health watch, incident reports"
    )
    obs_commands = obs.add_subparsers(dest="experiment", required=True)
    for experiment in ("fp-week", "longrun", "fleet"):
        exporter = obs_commands.add_parser(
            experiment, help=f"run {experiment} under telemetry and export it"
        )
        exporter.add_argument("--days", type=int, default=2)
        exporter.add_argument(
            "--nodes", type=int, default=3, help="fleet size (fleet only)"
        )
        exporter.add_argument("--prom", default=None, help="write Prometheus text here")
        exporter.add_argument(
            "--jsonl", default=None, help="write JSONL metrics+spans here"
        )
        exporter.set_defaults(func=_cmd_obs)

    watch = obs_commands.add_parser(
        "watch",
        help="run a scenario under the health monitor: live dashboard, "
             "SLO burn alerts, incident reports",
    )
    watch.add_argument(
        "--scenario", choices=["fleet", "longrun"], default="fleet",
        help="which scenario to watch",
    )
    watch.add_argument("--days", type=int, default=2)
    watch.add_argument("--nodes", type=int, default=3, help="fleet size (fleet only)")
    watch.add_argument(
        "--inject-p2", action="store_true",
        help="inject the adaptive self-induced-FP attack (the paper's P2)",
    )
    watch.add_argument(
        "--p2-day", type=int, default=1,
        help="day the P2 decoy lands (longrun scenario only)",
    )
    watch.add_argument(
        "--push", action="store_true",
        help="push-mode attestation: agents drive their own "
             "negotiate/submit/verdict exchanges on their own timers and "
             "the verifier tick only reaps expired sessions (fleet "
             "scenario only; verdict-equivalent to pull on the same seed)",
    )
    watch.add_argument(
        "--chaos-profile", default=None,
        help="inject seeded transport faults: a repro.keylime.faults "
             "profile name (drops, flaky, partition, transient-mixed, "
             "corruption, replay, mixed; fleet scenario only)",
    )
    watch.add_argument(
        "--chaos-seed", default="chaos",
        help="seed for the fault plan RNG (independent of --seed)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="no live frames; print one final snapshot (CI mode)",
    )
    watch.add_argument(
        "--gap-polls", type=float, default=3.0,
        help="missed poll intervals before a coverage gap fires",
    )
    watch.add_argument(
        "--tick-minutes", type=float, default=30.0,
        help="monitor tick interval, simulated minutes",
    )
    watch.add_argument(
        "--frame-every", type=int, default=24,
        help="print a live dashboard frame every N ticks",
    )
    watch.add_argument("--jsonl", default=None, help="write the full run export here")
    watch.add_argument(
        "--tsdb", action="store_true",
        help="drive detectors and SLO burn from the embedded TSDB "
             "(recording rules) instead of private ad-hoc windows",
    )
    watch.set_defaults(func=_cmd_obs_watch)

    top = obs_commands.add_parser(
        "top",
        help="federated mission control: N telemetry shards merged into "
             "one TSDB, live fleet rollups, freshness heatmap, SLO burn",
    )
    top.add_argument("--shards", type=int, default=2, help="independent registries")
    top.add_argument("--nodes", type=int, default=2, help="nodes per shard")
    top.add_argument("--days", type=int, default=1)
    top.add_argument(
        "--chaos-profile", default=None,
        help="inject a seeded fault profile into shard 0",
    )
    top.add_argument("--chaos-seed", default="chaos")
    top.add_argument(
        "--tick-minutes", type=float, default=30.0,
        help="poll/scrape interval, simulated minutes",
    )
    top.add_argument(
        "--frame-every", type=int, default=24,
        help="render a dashboard frame every N scrape slices",
    )
    top.add_argument(
        "--once", action="store_true",
        help="no live frames; print one final frame (CI mode)",
    )
    top.add_argument(
        "--jsonl", default=None,
        help="write run_meta + full TSDB export + captured frames here",
    )
    top.add_argument(
        "--json-summary", action="store_true",
        help="also print the final frame as one JSON line (CI assertions)",
    )
    top.add_argument(
        "--replay", default=None, metavar="EXPORT",
        help="post-hoc: render the dashboard from a --jsonl export "
             "instead of running a fleet",
    )
    top.add_argument(
        "--perf", default=None, metavar="TRAJECTORY",
        help="also load a perf trajectory (perf/trajectory.jsonl) so the "
             "frame grows a perf-trajectory panel",
    )
    top.set_defaults(func=_cmd_obs_top)

    capacity = obs_commands.add_parser(
        "capacity",
        help="what-if capacity planner: fit per-node round cost from a "
             "live saturation sweep (or a TSDB export) and answer "
             "max-nodes / throughput / time-to-saturation questions",
    )
    capacity.add_argument(
        "--replay", default=None, metavar="EXPORT",
        help="fit the model from an obs top/watch --jsonl TSDB export "
             "instead of running a live sweep",
    )
    capacity.add_argument(
        "--sizes", default="4,8,16,28",
        help="live sweep fleet sizes, comma-separated",
    )
    capacity.add_argument(
        "--ticks", type=int, default=6,
        help="measured batch ticks per sweep size",
    )
    capacity.add_argument(
        "--budget", type=float, default=None,
        help="tick budget, wall seconds (default: calibrated so the "
             "knee lands at the sweep midpoint)",
    )
    capacity.add_argument(
        "--interval", type=float, default=None,
        help="what-if per-tick budget for the plan, seconds (default: "
             "the sweep budget live, 1800 on --replay)",
    )
    capacity.add_argument(
        "--verifiers", type=int, default=1,
        help="what-if verifier count",
    )
    capacity.add_argument(
        "--current-nodes", type=float, default=0.0,
        help="current fleet size for utilization / time-to-saturation",
    )
    capacity.add_argument(
        "--growth-per-day", type=float, default=0.0,
        help="fleet growth rate for time-to-saturation",
    )
    capacity.add_argument(
        "--target-nodes", type=float, default=None,
        help="target fleet size: how many verifiers would it need?",
    )
    capacity.add_argument(
        "--json-summary", action="store_true",
        help="also print the plan as one JSON line (CI assertions)",
    )
    capacity.set_defaults(func=_cmd_obs_capacity)

    obs_report = obs_commands.add_parser(
        "report", help="post-hoc incident reports from an obs watch JSONL export"
    )
    obs_report.add_argument("export_file", help="path to an obs watch --jsonl export")
    obs_report.set_defaults(func=_cmd_obs_report)

    trace = obs_commands.add_parser(
        "trace",
        help="inspect traces from a JSONL export: show, query, Perfetto "
             "export, critical path, run diff",
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)

    trace_show = trace_commands.add_parser("show", help="print one trace tree")
    trace_show.add_argument("export_file", help="path to a --jsonl export")
    trace_show.add_argument(
        "--trace", default=None, help="trace id (decimal or hex); default: last"
    )
    trace_show.set_defaults(func=_cmd_obs_trace)

    trace_query = trace_commands.add_parser(
        "query", help="filter traces by name/agent/error/time/duration"
    )
    trace_query.add_argument("export_file", help="path to a --jsonl export")
    trace_query.add_argument("--name", default=None, help="primary span name")
    trace_query.add_argument("--agent", default=None, help="agent id")
    trace_query.add_argument(
        "--errors-only", action="store_true", help="error-status traces only"
    )
    trace_query.add_argument(
        "--since-hours", type=float, default=None, help="simulated window start"
    )
    trace_query.add_argument(
        "--until-hours", type=float, default=None, help="simulated window end"
    )
    trace_query.add_argument(
        "--min-wall-ms", type=float, default=None, help="wall-duration floor"
    )
    trace_query.add_argument("--limit", type=int, default=20)
    trace_query.set_defaults(func=_cmd_obs_trace)

    trace_export = trace_commands.add_parser(
        "export", help="re-export traces (Perfetto JSON, span JSONL, flamegraph folds)"
    )
    trace_export.add_argument("export_file", help="path to a --jsonl export")
    trace_export.add_argument(
        "--format", choices=["perfetto", "jsonl", "collapsed"], default="perfetto",
    )
    trace_export.add_argument(
        "--out", default=None, help="output path (default: stdout)"
    )
    trace_export.set_defaults(func=_cmd_obs_trace)

    trace_cp = trace_commands.add_parser(
        "critical-path", help="where the wall time of one trace went"
    )
    trace_cp.add_argument("export_file", help="path to a --jsonl export")
    trace_cp.add_argument(
        "--trace", default=None, help="trace id (decimal or hex); default: slowest"
    )
    trace_cp.add_argument(
        "--name", default="verifier.poll",
        help="root name to pick the slowest trace from",
    )
    trace_cp.set_defaults(func=_cmd_obs_trace)

    trace_diff = trace_commands.add_parser(
        "diff", help="self-time profile delta between two run exports"
    )
    trace_diff.add_argument("export_file", help="baseline --jsonl export")
    trace_diff.add_argument("export_file_b", help="comparison --jsonl export")
    trace_diff.set_defaults(func=_cmd_obs_trace)

    report = commands.add_parser(
        "report", help="run every experiment and emit a markdown report"
    )
    report.add_argument("--out", default=None, help="write to this file")
    report.add_argument("--days", type=int, default=10)
    report.set_defaults(func=_cmd_report)

    lint = commands.add_parser(
        "lint", help="lint a runtime-policy JSON file's exclude rules"
    )
    lint.add_argument("policy_file", help="path to a policy JSON")
    lint.set_defaults(func=_cmd_lint)

    diff = commands.add_parser(
        "diff", help="diff two runtime-policy JSON files"
    )
    diff.add_argument("old_file")
    diff.add_argument("new_file")
    diff.set_defaults(func=_cmd_diff)

    stats = commands.add_parser(
        "stats", help="coverage statistics for a runtime-policy JSON file"
    )
    stats.add_argument("policy_file")
    stats.set_defaults(func=_cmd_stats)

    state = commands.add_parser(
        "state",
        help="durable verifier state: snapshot a seeded fleet run, "
             "inspect a snapshot, restore and resume from one",
    )
    state_commands = state.add_subparsers(dest="state_command", required=True)

    state_save = state_commands.add_parser(
        "save", help="run a seeded fleet and snapshot the verifier state"
    )
    state_save.add_argument("snapshot_file", help="where to write the snapshot")
    state_save.add_argument("--nodes", type=int, default=3)
    state_save.add_argument(
        "--rounds", type=int, default=4,
        help="attestation rounds per agent before the snapshot",
    )
    state_save.add_argument(
        "--interval", type=float, default=1800.0,
        help="simulated seconds between rounds",
    )
    state_save.add_argument(
        "--push", action="store_true",
        help="drive the rounds through the push exchange",
    )
    state_save.set_defaults(func=_cmd_state_save)

    state_inspect = state_commands.add_parser(
        "inspect", help="print a snapshot's header and per-agent summary"
    )
    state_inspect.add_argument("snapshot_file")
    state_inspect.add_argument(
        "--json", action="store_true", help="machine-readable summary"
    )
    state_inspect.set_defaults(func=_cmd_state_inspect)

    state_load = state_commands.add_parser(
        "load",
        help="rebuild the rig from the snapshot's meta, restore the "
             "verifier, optionally resume more rounds",
    )
    state_load.add_argument("snapshot_file")
    state_load.add_argument(
        "--resume", type=int, default=0,
        help="attestation rounds to run after the restore",
    )
    state_load.set_defaults(func=_cmd_state_load)

    shard = commands.add_parser(
        "shard",
        help="multi-verifier fleet: consistent-hash assignment, "
             "federated failover demo",
    )
    shard_commands = shard.add_subparsers(dest="shard_command", required=True)

    shard_assign = shard_commands.add_parser(
        "assign",
        help="print the ring's agent->verifier assignment and balance",
    )
    shard_assign.add_argument("--verifiers", type=int, default=3)
    shard_assign.add_argument("--nodes", type=int, default=30)
    shard_assign.add_argument(
        "--vnodes", type=int, default=64,
        help="virtual nodes per ring member",
    )
    shard_assign.add_argument(
        "--show-agents", action="store_true",
        help="print every agent's shard, not just the sizes",
    )
    shard_assign.add_argument(
        "--join", default=None, metavar="MEMBER",
        help="also print the migration plan for adding MEMBER",
    )
    shard_assign.add_argument(
        "--leave", default=None, metavar="MEMBER",
        help="also print the migration plan for retiring MEMBER",
    )
    shard_assign.set_defaults(func=_cmd_shard_assign)

    shard_demo = shard_commands.add_parser(
        "demo",
        help="run a sharded fleet under the federation observatory, "
             "optionally killing a verifier mid-run",
    )
    shard_demo.add_argument("--verifiers", type=int, default=3)
    shard_demo.add_argument("--nodes", type=int, default=9)
    shard_demo.add_argument("--rounds", type=int, default=5)
    shard_demo.add_argument(
        "--tick-minutes", type=float, default=30.0,
        help="simulated minutes between attestation rounds",
    )
    shard_demo.add_argument(
        "--kill", default=None, metavar="MEMBER",
        help="mark MEMBER dead at --kill-round's boundary",
    )
    shard_demo.add_argument(
        "--kill-round", type=int, default=2,
        help="round index at which --kill takes effect",
    )
    shard_demo.add_argument(
        "--push", action="store_true",
        help="drive the rounds through the push exchange",
    )
    shard_demo.set_defaults(func=_cmd_shard_demo)

    bench = commands.add_parser(
        "bench",
        help="perf observatory: run registered benches, record the "
             "trajectory, detect regressions",
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_commands.add_parser(
        "run", help="run registered benches and append to the trajectory"
    )
    bench_run.add_argument(
        "benches", nargs="*", metavar="BENCH",
        help="bench names (default: all registered)",
    )
    bench_run.add_argument(
        "--all", action="store_true", help="run every registered bench"
    )
    mode_group = bench_run.add_mutually_exclusive_group()
    mode_group.add_argument(
        "--smoke", action="store_true",
        help="CI shape: small workloads, seconds per bench",
    )
    mode_group.add_argument(
        "--full", action="store_true",
        help="measurement shape (the default)",
    )
    bench_run.add_argument(
        "--trajectory", default="perf/trajectory.jsonl",
        help="durable trajectory JSONL (default perf/trajectory.jsonl)",
    )
    bench_run.add_argument(
        "--bench-dir", default=None,
        help="directory holding bench_*.py (default: the repo's benchmarks/)",
    )
    bench_run.add_argument(
        "--profile", action="store_true",
        help="sample each bench's hot section into collapsed flamegraph "
             "folds next to the trajectory",
    )
    bench_run.add_argument(
        "--bench-seed", dest="seed_override", default=None,
        help="override every bench's registered seed",
    )
    bench_run.set_defaults(func=_cmd_bench_run)

    bench_list = bench_commands.add_parser(
        "list", help="enumerate registered benches, metrics, and modes"
    )
    bench_list.add_argument(
        "--json", action="store_true", help="machine-readable spec list"
    )
    bench_list.add_argument("--bench-dir", default=None)
    bench_list.set_defaults(func=_cmd_bench_list)

    bench_compare = bench_commands.add_parser(
        "compare",
        help="score the newest run of each bench against its baseline "
             "(median of last N same-mode runs, MAD noise floor)",
    )
    bench_compare.add_argument(
        "--trajectory", default="perf/trajectory.jsonl",
    )
    bench_compare.add_argument(
        "--mode", choices=["smoke", "full"], default=None,
        help="restrict to one mode (default: every (bench, mode) group)",
    )
    bench_compare.add_argument(
        "--baseline", type=int, default=5,
        help="baseline window: last N same-mode runs (default 5)",
    )
    bench_compare.add_argument(
        "--threshold", type=float, default=2.5,
        help="deviation threshold in noise-floor units (default 2.5)",
    )
    bench_compare.add_argument(
        "--benches", nargs="*", metavar="BENCH", default=None,
        help="restrict to these benches",
    )
    bench_compare.add_argument(
        "--json", action="store_true",
        help="print the machine-readable summary record",
    )
    bench_compare.add_argument(
        "--out", default=None,
        help="write verdict + summary records to this JSONL file",
    )
    bench_compare.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit nonzero when any metric classifies regressed "
             "(the full-mode CI gate; smoke stays warn-only)",
    )
    bench_compare.set_defaults(func=_cmd_bench_compare)

    bench_history = bench_commands.add_parser(
        "history", help="sparkline each metric across recorded runs"
    )
    bench_history.add_argument(
        "benches", nargs="*", metavar="BENCH",
        help="bench names (default: all recorded)",
    )
    bench_history.add_argument(
        "--trajectory", default="perf/trajectory.jsonl",
    )
    bench_history.add_argument(
        "--mode", choices=["smoke", "full"], default=None,
    )
    bench_history.add_argument(
        "--metric", default=None, help="restrict to one metric name"
    )
    bench_history.add_argument("--width", type=int, default=32)
    bench_history.set_defaults(func=_cmd_bench_history)

    return parser


def _load_policy(path: str):
    from repro.keylime.policy import RuntimePolicy

    with open(path, "r", encoding="utf-8") as handle:
        return RuntimePolicy.from_json(handle.read())


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.keylime.policytools import lint_excludes

    policy = _load_policy(args.policy_file)
    warnings = lint_excludes(policy)
    if not warnings:
        print(f"{args.policy_file}: no risky exclude rules")
        return 0
    for warning in warnings:
        print(f"WARNING: {warning.describe()}")
    print(f"{len(warnings)} risky exclude rule(s) -- see the paper's P1")
    return 1


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.keylime.policytools import diff_policies

    diff = diff_policies(_load_policy(args.old_file), _load_policy(args.new_file))
    print(diff.summary())
    for path in diff.added_paths[:20]:
        print(f"  + {path}")
    for path in diff.removed_paths[:20]:
        print(f"  - {path}")
    for path in diff.changed_paths[:20]:
        print(f"  ~ {path}")
    for pattern in diff.added_excludes:
        print(f"  + exclude {pattern}")
    for pattern in diff.removed_excludes:
        print(f"  - exclude {pattern}")
    return 0 if diff.is_empty else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.common.units import format_bytes
    from repro.keylime.policytools import policy_statistics

    stats = policy_statistics(_load_policy(args.policy_file))
    print(f"paths:               {stats.paths}")
    print(f"digests (lines):     {stats.digests}")
    print(f"mid-update paths:    {stats.multi_digest_paths}")
    print(f"exclude rules:       {stats.excludes}")
    print(f"approx size:         {format_bytes(stats.size_bytes)}")
    print("top directories:")
    for directory, count in stats.top_directories:
        print(f"  {count:>6}  {directory}")
    return 0


def _build_state_fleet(
    seed: str, n_nodes: int, fillers: int, push_mode: bool
):
    """A deterministic fleet rig for snapshot save/load round-trips.

    Provisioning is a pure function of ``(seed, n_nodes, fillers)`` and
    there is no release stream, so ``state load`` can rebuild machines
    bit-identical to the ones ``state save`` attested -- the snapshot
    only needs to carry the verifier's side of the world.
    """
    from repro.common.clock import Scheduler
    from repro.common.events import EventLog
    from repro.common.rng import SeededRng
    from repro.distro.archive import UbuntuArchive
    from repro.distro.mirror import LocalMirror
    from repro.distro.workload import build_base_system
    from repro.dynpolicy.generator import DynamicPolicyGenerator
    from repro.keylime.fleet import Fleet
    from repro.keylime.policy import IBM_STYLE_EXCLUDES
    from repro.tpm.device import TpmManufacturer

    kernel = "5.15.0-91-generic"
    rng = SeededRng(seed)
    scheduler = Scheduler()
    events = EventLog()
    archive = UbuntuArchive()
    base = build_base_system(
        rng.fork("base"), n_filler_packages=fillers,
        mean_exec_files=6.0, kernel_version=kernel,
    )
    archive.seed(base)
    mirror = LocalMirror(archive, events=events)
    mirror.sync(0.0)
    generator = DynamicPolicyGenerator(mirror, events=events, rng=rng.fork("gen"))
    policy, _ = generator.generate_full(list(IBM_STYLE_EXCLUDES), {kernel})
    manufacturer = TpmManufacturer("Infineon", rng.fork("tpm"))
    return Fleet(
        n_nodes, mirror, manufacturer, scheduler, rng.fork("fleet"), policy,
        events=events, kernel_version=kernel, wire_transport=True,
        push_mode=push_mode,
    )


def _drive_state_rounds(fleet, rounds: int, interval: float) -> None:
    for _ in range(rounds):
        fleet.scheduler.clock.advance_by(interval)
        fleet.poll_scheduler.poll_batch()


def _cmd_state_save(args: argparse.Namespace) -> int:
    from repro.keylime.statestore import write_snapshot

    fleet = _build_state_fleet(
        str(args.seed), args.nodes, args.fillers, args.push
    )
    _drive_state_rounds(fleet, args.rounds, args.interval)
    meta = {
        "rig": "state-fleet",
        "seed": str(args.seed),
        "nodes": args.nodes,
        "fillers": args.fillers,
        "rounds": args.rounds,
        "interval": args.interval,
        "push_mode": args.push,
    }
    header = write_snapshot(args.snapshot_file, fleet.verifier, meta=meta)
    mode = "push" if args.push else "pull"
    print(f"snapshot written to {args.snapshot_file}")
    print(f"  mode: {mode}, agents: {header['agents']}, "
          f"rounds per agent: {args.rounds}")
    print(f"  sim time: {header['created_at']:.0f}s, "
          f"body: {header['body_bytes']} bytes, "
          f"sha256: {header['checksum'][:16]}...")
    return 0


def _cmd_state_inspect(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.common.errors import IntegrityError
    from repro.keylime.statestore import inspect_snapshot

    try:
        summary = inspect_snapshot(args.snapshot_file)
    except IntegrityError as exc:
        print(f"snapshot rejected: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json_module.dumps(summary, sort_keys=True, indent=2))
        return 0
    print(f"{summary['path']}: verifier snapshot v{summary['version']}")
    print(f"  created at:         {summary['created_at']:.0f}s sim time")
    print(f"  agents:             {summary['agents']}")
    for state, count in sorted(summary["states"].items()):
        print(f"    {state:<12s} {count}")
    print(f"  open push sessions: {summary['open_push_sessions']}")
    print(f"  results recorded:   {summary['results']}")
    print(f"  audit records:      {summary['audit_records']}")
    if summary.get("meta"):
        print(f"  meta:               {summary['meta']}")
    return 0


def _cmd_state_load(args: argparse.Namespace) -> int:
    from repro.common.errors import IntegrityError
    from repro.keylime.statestore import read_snapshot, restore_verifier

    try:
        body = read_snapshot(args.snapshot_file)
    except IntegrityError as exc:
        print(f"snapshot rejected: {exc}", file=sys.stderr)
        return 1
    meta = body.get("meta") or {}
    if meta.get("rig") != "state-fleet":
        print("snapshot was not written by `state save` (no state-fleet "
              "meta); use repro.keylime.statestore.restore_verifier with "
              "your own rig instead", file=sys.stderr)
        return 2

    fleet = _build_state_fleet(
        str(meta["seed"]), int(meta["nodes"]), int(meta["fillers"]),
        bool(meta["push_mode"]),
    )
    try:
        restored = restore_verifier(fleet.verifier, body)
    except IntegrityError as exc:
        print(f"snapshot rejected: {exc}", file=sys.stderr)
        return 1
    fleet.scheduler.clock.advance_to(float(body["created_at"]))
    mode = "push" if meta["push_mode"] else "pull"
    print(f"restored {len(restored)} agent(s) from {args.snapshot_file} "
          f"({mode} mode, zero re-enrollments)")
    for agent_id in restored:
        slot_state = fleet.verifier.state_of(agent_id).value
        offset = fleet.verifier.verified_entries_of(agent_id)
        print(f"  {agent_id:<16s} state={slot_state:<12s} "
              f"replay offset={offset}")
    if args.resume > 0:
        _drive_state_rounds(fleet, args.resume, float(meta["interval"]))
        print(f"resumed {args.resume} round(s):")
        for agent_id in restored:
            results = fleet.verifier.results_of(agent_id)
            fresh = results[-args.resume:]
            green = sum(1 for result in fresh if result.ok)
            print(f"  {agent_id:<16s} {green}/{len(fresh)} green, "
                  f"offset now {fleet.verifier.verified_entries_of(agent_id)}")
        if fleet.verifier.audit is not None:
            fleet.verifier.audit.verify_chain()
            print(f"audit chain verified: "
                  f"{len(fleet.verifier.audit)} records, "
                  f"head {fleet.verifier.audit.head_hash[:16]}...")
    return 0


def _cmd_shard_assign(args: argparse.Namespace) -> int:
    """Pure ring arithmetic: where would N agents land on M verifiers?"""
    from repro.keylime.sharding import ConsistentHashRing, shard_balance

    ring = ConsistentHashRing(str(args.seed), vnodes=args.vnodes)
    for index in range(args.verifiers):
        ring.add(f"verifier-{index}")
    keys = [f"agent-node-{i:03d}" for i in range(args.nodes)]
    assignment = ring.assignment(keys)
    sizes = ring.shard_sizes(keys)
    balance = shard_balance(sizes)
    print(f"ring: seed={args.seed!r}, {args.verifiers} member(s), "
          f"{ring.vnodes} vnodes/member")
    print(f"fingerprint: {ring.fingerprint(keys)[:16]}...")
    for member in ring.members:
        print(f"  {member:<14s} {sizes.get(member, 0):3d} agent(s)")
    print(f"balance: {balance:.3f} "
          f"(effective speedup ~= {args.verifiers * balance:.2f}x of "
          f"{args.verifiers}x ideal)")
    if args.show_agents:
        for key in keys:
            print(f"    {key} -> {assignment[key]}")
    if args.join:
        plan = ring.plan_join(keys, args.join)
        print(f"join {args.join}: {len(plan.moves)} key(s) move "
              f"(all to the joiner)")
        for move in plan.moves:
            print(f"    {move.key}: {move.source} -> {move.target}")
    if args.leave:
        plan = ring.plan_leave(keys, args.leave)
        print(f"leave {args.leave}: {len(plan.moves)} key(s) move "
              f"(only the leaver's range)")
        for move in plan.moves:
            print(f"    {move.key}: {move.source} -> {move.target}")
    return 0


def _cmd_shard_demo(args: argparse.Namespace) -> int:
    """A federated multi-verifier run with a forced mid-run failover."""
    from repro.experiments.shardfleet import run_shard_fleet
    from repro.obs.dashboard import render_top

    poll_interval = args.tick_minutes * 60.0
    kill = {}
    if args.kill is not None:
        kill[args.kill_round] = args.kill
    result = run_shard_fleet(
        seed=str(args.seed),
        n_nodes=args.nodes,
        n_verifiers=args.verifiers,
        fillers=args.fillers,
        rounds=args.rounds,
        poll_interval=poll_interval,
        push_mode=args.push,
        kill=kill,
    )
    end = result.end_time
    print(render_top(
        result.hub.store, end, result.hub.staleness(end),
        poll_interval=poll_interval,
    ))
    for round_index, shard_ids in sorted(result.failovers.items()):
        print(f"  round {round_index}: failover "
              f"{', '.join(shard_ids)} -> "
              f"{', '.join(result.vfleet.shards[s].host for s in shard_ids)}")
    gaps = result.gap_alerts()
    print(f"  coverage-gap alerts: {len(gaps)} "
          f"({'FAILOVER LEFT A BLIND SPOT' if gaps else 'no blind spots'})")
    states = result.vfleet.status()
    attesting = sum(1 for state in states.values() if state == "attesting")
    print(f"  nodes attesting: {attesting}/{len(states)}")
    return 1 if gaps else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import ReportScale, generate_report

    scale = ReportScale(
        seed=str(args.seed), fillers=args.fillers, longrun_days=args.days,
    )
    text = generate_report(scale)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
