"""ASCII renderings of the paper's tables."""

from __future__ import annotations

from repro.attacks.framework import AttackMode, AttackSample, all_attacks
from repro.attacks.problems import Problem
from repro.experiments.fn_matrix import FnMatrixResult
from repro.experiments.fp_week import FpWeekResult
from repro.experiments.problems import ProblemDemo

_PROBLEM_ORDER = (
    Problem.P1_UNMONITORED_DIRS,
    Problem.P2_INCOMPLETE_LOG,
    Problem.P3_UNMONITORED_FILESYSTEMS,
    Problem.P4_NO_REEVALUATION,
    Problem.P5_SCRIPT_INTERPRETERS,
)


def render_table1(rows: list[dict[str, float]]) -> str:
    """Table I: per-update averages for daily vs weekly cadence."""
    header = (
        f"{'Experiment':<16} {'# Low-P Pkgs':>12} {'# Hig-P Pkgs':>12} "
        f"{'# of Files':>10} {'Time (mins)':>12}"
    )
    lines = ["Table I: Result Summary", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['experiment']:<16} {row['low_priority_packages']:>12.1f} "
            f"{row['high_priority_packages']:>12.1f} "
            f"{row['files_updated']:>10.0f} {row['time_minutes']:>12.2f}"
        )
    return "\n".join(lines)


def render_table2(
    stock: FnMatrixResult,
    mitigated: FnMatrixResult,
    samples: list[AttackSample] | None = None,
) -> str:
    """Table II: per-sample detection verdicts and exploitable problems.

    Legend matches the paper: ``Y`` detected, ``Y*`` detected only upon
    reboot / fresh attestation, ``N`` not detected, ``o`` problem
    exploitable by the sample.
    """
    samples = samples if samples is not None else all_attacks()
    header = (
        f"{'Name':<14} {'Basic':>6} {'Adaptive':>9}  "
        f"{'P1':>3}{'P2':>3}{'P3':>3}{'P4':>3}{'P5':>3}  {'Mitigat.':>9}"
    )
    lines = ["Table II: Attacks tested against Keylime", header, "-" * len(header)]
    current_category = None
    for sample in samples:
        if sample.category != current_category:
            current_category = sample.category
            lines.append(f"{current_category.capitalize()}:")
        basic = stock.trial(sample.name, AttackMode.BASIC)
        adaptive = stock.trial(sample.name, AttackMode.ADAPTIVE)
        fixed = mitigated.trial(sample.name, AttackMode.ADAPTIVE)

        basic_mark = "Y" if basic.detected_live else "N"
        adaptive_mark = "N" if not adaptive.detected_live else "Y"
        if fixed.detected_live and not fixed.detected_after_reboot:
            mitig_mark = "Y"
        elif fixed.detected_live or fixed.detected_after_reboot:
            mitig_mark = "Y*"
        else:
            mitig_mark = "N"
        dots = "".join(
            f"{'o' if problem in sample.problems_exploitable else '.':>3}"
            for problem in _PROBLEM_ORDER
        )
        lines.append(
            f"{sample.name:<14} {basic_mark:>6} {adaptive_mark:>9}  {dots}  {mitig_mark:>9}"
        )
    lines.append(
        f"\nbasic detected: {stock.detected_count(AttackMode.BASIC)}"
        f"/{stock.total(AttackMode.BASIC)}  |  adaptive (stock) evaded: "
        f"{stock.total(AttackMode.ADAPTIVE) - sum(1 for t in stock.trials if t.mode is AttackMode.ADAPTIVE and t.detected_live)}"
        f"/{stock.total(AttackMode.ADAPTIVE)}  |  adaptive (mitigated) detected: "
        f"{mitigated.detected_count(AttackMode.ADAPTIVE)}"
        f"/{mitigated.total(AttackMode.ADAPTIVE)}"
    )
    return "\n".join(lines)


def render_fp_week(result: FpWeekResult) -> str:
    """E1: the FP-week root-cause breakdown."""
    lines = [
        "False-positive week (benign operation, static policy)",
        f"days={result.n_days} polls={result.total_polls} "
        f"failed_polls={result.failed_polls} distinct_FPs={result.total_false_positives}",
        "cause breakdown:",
    ]
    for cause, count in sorted(result.counts_by_cause.items()):
        lines.append(f"  {cause:<24} {count:>6}")
    return "\n".join(lines)


def render_problem_demos(demos: list[ProblemDemo]) -> str:
    """E8: the P1-P5 demonstrations."""
    lines = ["Problems P1-P5: focused demonstrations"]
    for demo in demos:
        lines.append(
            f"  {demo.problem}: {demo.claim}\n"
            f"      IMA measured: {demo.ima_measured} | "
            f"verifier alerted: {demo.verifier_alerted} | {demo.details}"
        )
    return "\n".join(lines)
