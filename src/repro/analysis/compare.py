"""Automated paper-vs-measured comparison.

EXPERIMENTS.md records the comparison prose; this module encodes the
paper's reported numbers as *data* and checks a run against them with
explicit tolerances, so the claim "the shape holds" is executable.

Tolerances are deliberately loose where the paper's value depends on
hardware or Canonical's actual release calendar (times, sizes) and
tight where the value is structural (detection counts, zero-FP).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks import AttackMode
from repro.experiments.fn_matrix import FnMatrixResult
from repro.experiments.longrun import LongRunResult

#: The paper's reported values (Section III-D, Table I, Table II).
PAPER_TARGETS = {
    "daily.minutes.mean": 2.36,
    "daily.minutes.std": 5.26,
    "daily.packages.mean": 16.5,
    "daily.packages.std": 26.8,
    "daily.packages_high.mean": 0.9,
    "daily.packages_high.std": 2.2,
    "daily.packages_low.mean": 15.6,
    "daily.entries.mean": 1271.0,
    "weekly.packages_low.mean": 76.4,
    "weekly.packages_high.mean": 2.6,
    "weekly.entries.mean": 5513.0,
    "weekly.minutes.mean": 7.50,
    "fp.normal_operation": 0.0,
    "table2.basic_detected": 8.0,
    "table2.adaptive_detected_live": 0.0,
    "table2.mitigated_detected": 7.0,
}


@dataclass(frozen=True)
class ComparisonRow:
    """One paper-vs-measured check."""

    key: str
    paper: float
    measured: float
    rel_tolerance: float
    within: bool

    def render(self) -> str:
        """One table line."""
        mark = "OK " if self.within else "OFF"
        return (
            f"  [{mark}] {self.key:<32} paper={self.paper:>10.2f} "
            f"measured={self.measured:>10.2f} (tol ±{self.rel_tolerance:.0%})"
        )


def _row(key: str, measured: float, rel_tolerance: float) -> ComparisonRow:
    paper = PAPER_TARGETS[key]
    if paper == 0.0:
        within = measured == 0.0
    else:
        within = abs(measured - paper) <= rel_tolerance * abs(paper)
    return ComparisonRow(
        key=key, paper=paper, measured=measured,
        rel_tolerance=rel_tolerance, within=within,
    )


def compare_longruns(
    daily: LongRunResult, weekly: LongRunResult
) -> list[ComparisonRow]:
    """Check the two long runs against Fig 3-5 / Table I targets."""
    daily_stats = daily.summary()
    weekly_stats = weekly.summary()
    return [
        _row("daily.minutes.mean", daily_stats["minutes"]["mean"], 0.5),
        _row("daily.minutes.std", daily_stats["minutes"]["std"], 0.8),
        _row("daily.packages.mean", daily_stats["packages"]["mean"], 0.5),
        _row("daily.packages.std", daily_stats["packages"]["std"], 0.8),
        _row("daily.packages_high.mean", daily_stats["packages_high"]["mean"], 0.8),
        _row("daily.packages_low.mean", daily_stats["packages_low"]["mean"], 0.5),
        _row("daily.entries.mean", daily_stats["entries"]["mean"], 0.5),
        _row("weekly.packages_low.mean", weekly_stats["packages_low"]["mean"], 0.5),
        _row("weekly.packages_high.mean", weekly_stats["packages_high"]["mean"], 0.8),
        _row("weekly.entries.mean", weekly_stats["entries"]["mean"], 0.5),
        _row("weekly.minutes.mean", weekly_stats["minutes"]["mean"], 0.5),
        _row(
            "fp.normal_operation",
            float(len(daily.fp_incidents) + len(weekly.fp_incidents)),
            0.0,
        ),
    ]


def compare_matrices(
    stock: FnMatrixResult, mitigated: FnMatrixResult
) -> list[ComparisonRow]:
    """Check the attack matrices against Table II's headline counts."""
    adaptive_live = sum(
        1 for trial in stock.trials
        if trial.mode is AttackMode.ADAPTIVE and trial.detected_live
    )
    return [
        _row("table2.basic_detected", float(stock.detected_count(AttackMode.BASIC)), 0.0),
        _row("table2.adaptive_detected_live", float(adaptive_live), 0.0),
        _row(
            "table2.mitigated_detected",
            float(mitigated.detected_count(AttackMode.ADAPTIVE)), 0.0,
        ),
    ]


def render_comparison(rows: list[ComparisonRow]) -> str:
    """ASCII table of checks plus a verdict line."""
    lines = ["Paper-vs-measured comparison"]
    lines += [row.render() for row in rows]
    misses = [row for row in rows if not row.within]
    if misses:
        lines.append(f"verdict: {len(misses)}/{len(rows)} targets out of tolerance")
    else:
        lines.append(f"verdict: all {len(rows)} targets within tolerance")
    return "\n".join(lines)
