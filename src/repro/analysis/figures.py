"""ASCII renderings of the paper's figures.

Each figure is a per-update bar series over the experiment days, with
the summary statistics the paper quotes in the caption or text printed
underneath.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.units import summarize
from repro.experiments.longrun import LongRunResult

_BAR = "#"


def render_series(
    values: Sequence[float],
    title: str,
    unit: str,
    width: int = 50,
    label: str = "day",
) -> str:
    """Horizontal bar chart of one value per update."""
    lines = [title, "=" * len(title)]
    peak = max(values) if values else 0.0
    for index, value in enumerate(values, start=1):
        bar_len = int(round((value / peak) * width)) if peak > 0 else 0
        lines.append(f"{label} {index:>3} | {_BAR * bar_len} {value:.2f} {unit}")
    stats = summarize(values)
    lines.append(
        f"mean={stats['mean']:.2f} {unit}, std={stats['std']:.2f}, "
        f"min={stats['min']:.2f}, max={stats['max']:.2f}, n={int(stats['n'])}"
    )
    return "\n".join(lines)


def render_fig3(result: LongRunResult) -> str:
    """Fig 3: time to update an existing Keylime policy, per update."""
    return render_series(
        result.update_minutes,
        "Fig 3: Policy update time per update (minutes)",
        "min",
    )


def render_fig4(result: LongRunResult) -> str:
    """Fig 4: packages with executables per update (total and high-prio)."""
    total = render_series(
        [float(v) for v in result.packages_per_update],
        "Fig 4: New/changed packages with executables per update",
        "pkgs",
    )
    high = render_series(
        [float(v) for v in result.high_priority_per_update],
        "Fig 4 (inset): high-priority packages per update",
        "pkgs",
    )
    return total + "\n\n" + high


def render_fig5(result: LongRunResult) -> str:
    """Fig 5: file entries added to the policy per update."""
    return render_series(
        [float(v) for v in result.entries_per_update],
        "Fig 5: Added/changed policy file entries per update",
        "entries",
    )
