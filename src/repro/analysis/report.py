"""One-shot reproduction report.

:func:`generate_report` runs every experiment at a configurable scale
and renders a single markdown document with the reproduced artifacts --
the programmatic equivalent of reading EXPERIMENTS.md, but measured
fresh from the given seed.  The CLI exposes it as ``repro-cli report``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.figures import render_fig3, render_fig4, render_fig5
from repro.analysis.tables import (
    render_fp_week,
    render_problem_demos,
    render_table1,
    render_table2,
)
from repro.attacks import AttackMode
from repro.distro.workload import ReleaseStreamConfig
from repro.experiments.fn_matrix import run_attack_matrix
from repro.experiments.fp_week import run_fp_week
from repro.experiments.longrun import run_longrun, table1_rows
from repro.experiments.problems import run_all_demos
from repro.experiments.testbed import TestbedConfig


@dataclass
class ReportScale:
    """How big a report run should be.

    The defaults are demo scale (a couple of minutes end to end); the
    benchmark suite is the right tool for paper-scale numbers.
    """

    seed: str = "report"
    fp_days: int = 5
    longrun_days: int = 10
    weekly_days: int = 14
    fillers: int = 40
    mean_exec_files: float = 10.0
    packages_per_day: float = 8.0


def _config(scale: ReportScale, suffix: str, **overrides) -> TestbedConfig:
    config = TestbedConfig(
        seed=f"{scale.seed}/{suffix}",
        n_filler_packages=scale.fillers,
        mean_exec_files=scale.mean_exec_files,
        stream=ReleaseStreamConfig(
            mean_packages_per_day=scale.packages_per_day,
            sd_packages_per_day=scale.packages_per_day,
            mean_exec_files_per_package=scale.mean_exec_files,
        ),
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def generate_report(scale: ReportScale | None = None) -> str:
    """Run everything and render the markdown report."""
    scale = scale if scale is not None else ReportScale()
    sections: list[str] = [
        "# Reproduction report",
        "",
        f"seed: `{scale.seed}` -- all results below are deterministic "
        "functions of this seed.",
    ]

    # E1: the FP week.
    fp_result = run_fp_week(
        config=_config(scale, "fp", policy_mode="static", continue_on_failure=True),
        n_days=scale.fp_days,
    )
    sections += ["", "## E1 -- false-positive causes", "```",
                 render_fp_week(fp_result), "```"]

    # E2-E4: the long run.
    daily = run_longrun(config=_config(scale, "daily"), n_days=scale.longrun_days)
    sections += [
        "", "## E2-E4 -- dynamic policy long run",
        f"false positives: **{len(daily.fp_incidents)}** over "
        f"{daily.n_days} days ({daily.ok_polls}/{daily.total_polls} polls green)",
        "```", render_fig3(daily), "", render_fig4(daily), "",
        render_fig5(daily), "```",
    ]

    # E5: daily vs weekly.
    weekly = run_longrun(
        config=_config(scale, "weekly"), n_days=scale.weekly_days, cadence_days=7
    )
    sections += ["", "## E5 -- daily vs weekly cadence", "```",
                 render_table1(table1_rows(daily, weekly)), "```"]

    # E7: the attack matrix.
    stock = run_attack_matrix(mitigated=False, seed=f"{scale.seed}/matrix")
    mitigated = run_attack_matrix(mitigated=True, seed=f"{scale.seed}/matrix")
    sections += ["", "## E7 -- attack matrix", "```",
                 render_table2(stock, mitigated), "```"]

    # E8: problem demos.
    sections += ["", "## E8 -- problems P1-P5", "```",
                 render_problem_demos(run_all_demos()), "```"]

    # Headline verdicts.
    basic = stock.detected_count(AttackMode.BASIC)
    adaptive_live = sum(
        1 for trial in stock.trials
        if trial.mode is AttackMode.ADAPTIVE and trial.detected_live
    )
    fixed = mitigated.detected_count(AttackMode.ADAPTIVE)
    sections += [
        "", "## Headline verdicts",
        f"- zero false positives with dynamic policy generation: "
        f"**{'yes' if not daily.fp_incidents else 'NO'}**",
        f"- basic attacks detected: **{basic}/8** (paper: 8/8)",
        f"- adaptive attacks detected live: **{adaptive_live}/8** (paper: 0/8)",
        f"- mitigated adaptive detected: **{fixed}/8** (paper: 7/8)",
    ]
    return "\n".join(sections) + "\n"
