"""Rendering of the paper's tables and figures as ASCII.

The benchmark harness prints these so a run's output can be compared
side-by-side with the paper:

* :mod:`repro.analysis.figures` -- Figs 3-5 as per-day bar series.
* :mod:`repro.analysis.tables` -- Table I, Table II, the FP-week
  cause breakdown, and the P1-P5 demo summaries.
"""

from repro.analysis.compare import (
    PAPER_TARGETS,
    compare_longruns,
    compare_matrices,
    render_comparison,
)
from repro.analysis.figures import render_fig3, render_fig4, render_fig5, render_series
from repro.analysis.report import ReportScale, generate_report
from repro.analysis.tables import (
    render_fp_week,
    render_problem_demos,
    render_table1,
    render_table2,
)

__all__ = [
    "PAPER_TARGETS",
    "ReportScale",
    "compare_longruns",
    "compare_matrices",
    "generate_report",
    "render_comparison",
    "render_fig3",
    "render_fig4",
    "render_fig5",
    "render_fp_week",
    "render_problem_demos",
    "render_series",
    "render_table1",
    "render_table2",
]
