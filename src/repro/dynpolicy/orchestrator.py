"""The controlled-update orchestrator.

One update cycle is the paper's step sequence: **sync the mirror ->
generate the policy delta -> push the policy to the verifier -> only
then upgrade the machine** (from the mirror!) -> exercise the updated
executables -> handle any pending kernel -> dedupe.

The ordering is the whole point: the verifier always learns about new
hashes *before* the machine can produce them, so attestation never
fails across an update.  The orchestrator also reproduces the one
failure the paper observed -- an operator upgrading from the *official
archive* after the mirror had already synced (``from_official=True``),
which installs package versions the policy has never seen.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import Scheduler, days, hours
from repro.common.events import EventLog
from repro.distro.apt import AptInstaller, UpdateReport
from repro.distro.mirror import LocalMirror
from repro.distro.workload import BenignWorkload
from repro.dynpolicy.generator import DynamicPolicyGenerator, PolicyUpdateReport
from repro.keylime.policy import RuntimePolicy
from repro.keylime.tenant import KeylimeTenant
from repro.kernelsim.kernel import Machine


@dataclass(frozen=True)
class UpdateCycleReport:
    """Everything one update cycle produced."""

    day: int
    policy_report: PolicyUpdateReport
    apt_report: UpdateReport
    rebooted: bool
    deduped_digests: int
    source: str


class UpdateOrchestrator:
    """Runs sync -> generate -> push -> upgrade cycles for one machine."""

    def __init__(
        self,
        machine: Machine,
        apt: AptInstaller,
        mirror: LocalMirror,
        generator: DynamicPolicyGenerator,
        tenant: KeylimeTenant,
        agent_id: str,
        policy: RuntimePolicy,
        scheduler: Scheduler,
        workload: BenignWorkload | None = None,
        events: EventLog | None = None,
        sync_hour: float = 5.0,
        reboot_on_new_kernel: bool = True,
        dedupe_after_update: bool = True,
        archive_release_key=None,
        manifest_key=None,
    ) -> None:
        self.machine = machine
        self.apt = apt
        self.mirror = mirror
        self.generator = generator
        self.tenant = tenant
        self.agent_id = agent_id
        self.policy = policy
        self.scheduler = scheduler
        self.workload = workload
        self.events = events if events is not None else machine.events
        self.sync_hour = sync_hour
        self.reboot_on_new_kernel = reboot_on_new_kernel
        self.dedupe_after_update = dedupe_after_update
        # Optional hardening (see docs/THREATMODEL.md A3):
        # archive_release_key pins the archive's InRelease signing key
        # (syncs abort on verification failure); manifest_key pins the
        # maintainer manifest authority (policy generation consumes
        # signed hashes instead of hashing packages itself).
        self.archive_release_key = archive_release_key
        self.manifest_key = manifest_key
        self.reports: list[UpdateCycleReport] = []

    # -- one cycle -------------------------------------------------------

    def run_cycle(self, from_official: bool = False) -> UpdateCycleReport:
        """Execute one controlled update cycle at the current time."""
        now = self.scheduler.clock.now
        day = self.scheduler.clock.day_index()

        sync_report = self.mirror.sync(now, trusted_key=self.archive_release_key)
        changed = list(sync_report.new_packages) + list(sync_report.changed_packages)

        allowed = {self.machine.current_kernel}
        if self.manifest_key is not None:
            policy_report = self.generator.generate_update_from_manifests(
                self.policy, changed, self.manifest_key, allowed
            )
        else:
            policy_report = self.generator.generate_update(self.policy, changed, allowed)
        self.tenant.push_policy(self.agent_id, self.policy)

        if from_official:
            # The paper's 2024-03-27 incident: the operator points apt at
            # the official archive, which may carry releases published
            # after the mirror sync -- versions the policy has not seen.
            self.mirror.archive.apply_releases_until(now + hours(24.0))
            source_index = self.mirror.archive.latest_index()
            source = "official"
        else:
            source_index = self.mirror.index()
            source = "mirror"
        apt_report = self.apt.upgrade_from(source_index, source=source)

        if self.workload is not None and not apt_report.is_empty:
            self.workload.exec_updated_files(apt_report)

        rebooted = False
        if self.machine.pending_kernel is not None:
            # Pre-reboot policy refresh admits the new kernel, then the
            # machine reboots into it.
            added = self.generator.prepare_for_reboot(
                self.policy, self.machine.pending_kernel, self.machine.current_kernel
            )
            self.tenant.push_policy(self.agent_id, self.policy)
            self.events.emit(
                now, "dynpolicy.orchestrator", "kernel.admitted",
                kernel=self.machine.pending_kernel, entries=added,
            )
            if self.reboot_on_new_kernel:
                self.machine.reboot()
                rebooted = True

        deduped = 0
        if self.dedupe_after_update and not apt_report.is_empty:
            deduped = self.generator.dedupe(self.policy, self.apt.installed)

        report = UpdateCycleReport(
            day=day,
            policy_report=policy_report,
            apt_report=apt_report,
            rebooted=rebooted,
            deduped_digests=deduped,
            source=source,
        )
        self.reports.append(report)
        self.events.emit(
            now, "dynpolicy.orchestrator", "update.cycle",
            day=day, source=source,
            packages=policy_report.packages_total,
            entries=policy_report.entries_added,
            rebooted=rebooted,
        )
        return report

    # -- scheduling ----------------------------------------------------------

    def schedule_cycles(
        self,
        start_day: int,
        n_cycles: int,
        cadence_days: int = 1,
        official_on_days: set[int] | None = None,
    ) -> None:
        """Schedule update cycles at ``sync_hour`` every *cadence_days*.

        ``official_on_days`` injects the operator error on the listed
        day indices (the incident reproduction).
        """
        official = official_on_days or set()
        for index in range(n_cycles):
            day = start_day + index * cadence_days
            when = days(day) + hours(self.sync_hour)

            def cycle(day=day) -> None:
                self.run_cycle(from_official=day in official)

            self.scheduler.call_at(when, cycle, label=f"update-cycle-day{day}")
