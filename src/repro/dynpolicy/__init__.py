"""Dynamic policy generation -- the paper's proposed fix.

The scheme of Section III-C: instead of a static allowlist that rots as
the OS updates itself, the operator

1. disables unattended upgrades and mirrors the distribution locally
   (:mod:`repro.distro.mirror`),
2. before each controlled update, measures the executables of the
   new/changed packages straight from the mirror and **appends** them to
   the runtime policy (:mod:`repro.dynpolicy.generator`),
3. pushes the updated policy to the verifier, *then* lets the machine
   update -- so the machine is in-policy at every instant, including the
   update window itself (old entries are retained; deduplication happens
   after the dust settles),
4. handles kernels specially: only the running kernel's modules are
   acceptable, and a newly installed kernel enters the policy just
   before the reboot that activates it.

:mod:`repro.dynpolicy.costmodel` prices the generator's work (mirror
refresh, download, decompress, hash) to reproduce Fig 3 / Table I's
minutes, and :mod:`repro.dynpolicy.orchestrator` runs the whole
sync -> generate -> push -> upgrade cycle on a schedule.
"""

from repro.dynpolicy.costmodel import CostModelConfig, GeneratorCostModel
from repro.dynpolicy.generator import DynamicPolicyGenerator, PolicyUpdateReport
from repro.dynpolicy.orchestrator import UpdateCycleReport, UpdateOrchestrator
from repro.dynpolicy.signedhashes import (
    ManifestAuthority,
    SignedManifest,
    merge_signed_manifests,
    verify_manifest,
)

__all__ = [
    "CostModelConfig",
    "DynamicPolicyGenerator",
    "GeneratorCostModel",
    "ManifestAuthority",
    "PolicyUpdateReport",
    "SignedManifest",
    "UpdateCycleReport",
    "UpdateOrchestrator",
    "merge_signed_manifests",
    "verify_manifest",
]
