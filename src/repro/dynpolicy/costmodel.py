"""Cost model for the dynamic policy generator.

We cannot rerun the authors' generator on their hardware, so the time
axis of Fig 3 and the "Time (mins)" column of Table I come from a
calibrated cost model.  The modelled pipeline follows the paper's
description of the generator: refresh the mirror, then for each
new/changed package *download* it from the mirror, *uncompress* it,
walk its executables and *hash* them.

The defaults are calibrated so a synthetic stream with the paper's
package statistics lands near the paper's numbers (daily mean ~2.4 min
with a heavy right tail from heavy update days; weekly per-update cost
roughly 3x daily).  The calibration lives in the config so ablations
can price alternative designs (e.g. full regeneration instead of the
incremental append).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import SeededRng
from repro.distro.package import Package

MB = 1_000_000.0


@dataclass(frozen=True)
class CostModelConfig:
    """Throughput and overhead parameters for the generator pipeline.

    Attributes:
        mirror_refresh_seconds: fixed cost of the rsync-style refresh.
        download_mb_per_s: mirror -> generator transfer rate.
        decompress_mb_per_s: package decompression rate.
        hash_mb_per_s: SHA-256 throughput over executable payloads.
        per_package_overhead_seconds: metadata parsing, temp dirs, etc.
        per_file_overhead_seconds: stat+open cost per measured file.
        jitter_sigma: log-normal noise on the total (system load).
        manifest_verify_seconds: one RSA signature verification plus
            manifest parse, for the signed-hashes variant (Section V's
            proposed improvement).
    """

    mirror_refresh_seconds: float = 35.0
    download_mb_per_s: float = 40.0
    decompress_mb_per_s: float = 18.0
    hash_mb_per_s: float = 160.0
    per_package_overhead_seconds: float = 1.1
    per_file_overhead_seconds: float = 0.045
    jitter_sigma: float = 0.35
    manifest_verify_seconds: float = 0.02


class GeneratorCostModel:
    """Prices one generator run over a batch of packages."""

    def __init__(self, config: CostModelConfig | None = None, rng: SeededRng | None = None) -> None:
        self.config = config if config is not None else CostModelConfig()
        self._rng = rng

    def package_seconds(self, package: Package) -> float:
        """Deterministic processing time for one package."""
        cfg = self.config
        payload = sum(pf.size for pf in package.files)
        exec_payload = sum(pf.size for pf in package.executables)
        seconds = cfg.per_package_overhead_seconds
        seconds += package.compressed_size / (cfg.download_mb_per_s * MB)
        seconds += payload / (cfg.decompress_mb_per_s * MB)
        seconds += exec_payload / (cfg.hash_mb_per_s * MB)
        seconds += len(package.executables) * cfg.per_file_overhead_seconds
        return seconds

    def batch_seconds(self, packages: list[Package], include_refresh: bool = True) -> float:
        """Total generator time for one update batch (with jitter)."""
        cfg = self.config
        seconds = cfg.mirror_refresh_seconds if include_refresh else 0.0
        for package in packages:
            seconds += self.package_seconds(package)
        if self._rng is not None and cfg.jitter_sigma > 0:
            seconds *= self._rng.lognormal(0.0, cfg.jitter_sigma)
        return seconds

    def manifest_batch_seconds(self, n_manifests: int, include_refresh: bool = True) -> float:
        """Generator time when maintainers ship signed hash manifests.

        No download, decompression or hashing -- one signature check per
        package.  This is the cost side of the paper's Section V
        improvement; the corresponding ablation bench compares it with
        :meth:`batch_seconds`.
        """
        cfg = self.config
        seconds = cfg.mirror_refresh_seconds if include_refresh else 0.0
        seconds += n_manifests * cfg.manifest_verify_seconds
        if self._rng is not None and cfg.jitter_sigma > 0:
            seconds *= self._rng.lognormal(0.0, cfg.jitter_sigma)
        return seconds

    def full_regeneration_seconds(self, packages: list[Package]) -> float:
        """Cost of regenerating the policy from *every* package.

        The ablation baseline: the paper's key efficiency claim is that
        appending only new/changed packages beats this by orders of
        magnitude on a ~4,000-package system.
        """
        return self.batch_seconds(packages, include_refresh=True)
