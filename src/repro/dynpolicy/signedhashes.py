"""Maintainer-signed package hashes (the paper's proposed improvement).

Section V: "the current method requires individual operators to build
file hashes themselves for the packages.  This can be substantially
improved if file hashes in packages are generated and then signed by
the package maintainers (similar to ostree)."

This module implements that improvement end-to-end:

* a :class:`ManifestAuthority` (the distro's signing infrastructure)
  produces a :class:`SignedManifest` per package version -- the
  executable measurements, signed;
* :func:`verify_manifest` checks one manifest against the distro key;
* :meth:`DynamicPolicyGenerator-style <merge_signed_manifests>` policy
  generation consumes manifests instead of downloading, decompressing
  and hashing packages -- turning the generator's per-package cost from
  I/O-bound work into one signature verification, and (the security
  win) guaranteeing the operator's policy reflects what the maintainer
  *shipped*, not what a possibly-tainted mirror holds.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from repro.common.errors import IntegrityError
from repro.common.rng import SeededRng
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.distro.package import Package
from repro.keylime.policy import RuntimePolicy

_MODULE_PATH = re.compile(r"^/lib/modules/([^/]+)/")


@dataclass(frozen=True)
class SignedManifest:
    """A package version's executable measurements, maintainer-signed."""

    package: str
    version: str
    measurements: dict[str, str]  # path -> sha256
    signature: bytes = field(repr=False)

    def signed_bytes(self) -> bytes:
        """Canonical encoding covered by the signature."""
        return manifest_bytes(self.package, self.version, self.measurements)


def manifest_bytes(package: str, version: str, measurements: dict[str, str]) -> bytes:
    """Canonical manifest encoding (sorted-key JSON)."""
    payload = {
        "format": "repro-manifest-v1",
        "package": package,
        "version": version,
        "measurements": {path: measurements[path] for path in sorted(measurements)},
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class ManifestAuthority:
    """The distribution's manifest-signing infrastructure."""

    def __init__(self, name: str, rng: SeededRng, key_bits: int = 1024) -> None:
        self.name = name
        self._keypair: RsaKeyPair = generate_keypair(rng.fork("manifest-key"), bits=key_bits)

    @property
    def public_key(self) -> RsaPublicKey:
        """The verification key operators pin."""
        return self._keypair.public

    def sign_package(self, package: Package) -> SignedManifest:
        """Produce the signed manifest for one package version."""
        measurements = package.measurements()
        return SignedManifest(
            package=package.name,
            version=package.version,
            measurements=measurements,
            signature=self._keypair.sign(
                manifest_bytes(package.name, package.version, measurements)
            ),
        )

    def sign_all(self, packages: list[Package]) -> list[SignedManifest]:
        """Manifests for a whole release batch."""
        return [self.sign_package(package) for package in packages]


def verify_manifest(manifest: SignedManifest, trusted_key: RsaPublicKey) -> None:
    """Check a manifest's signature; raises :class:`IntegrityError`."""
    if not trusted_key.verify(manifest.signed_bytes(), manifest.signature):
        raise IntegrityError(
            f"manifest signature invalid for {manifest.package}={manifest.version}",
            context={"package": manifest.package, "version": manifest.version},
        )


def merge_signed_manifests(
    policy: RuntimePolicy,
    manifests: list[SignedManifest],
    trusted_key: RsaPublicKey,
    allowed_kernels: set[str],
) -> tuple[int, list[SignedManifest]]:
    """Fold verified manifests into *policy*.

    Every manifest is signature-checked first; invalid ones are
    *rejected* (returned, not merged) rather than raising, so one bad
    mirror object cannot wedge the whole update.  Kernel-module paths
    outside *allowed_kernels* are skipped exactly as in the hashing
    generator.  Returns ``(entries_added, rejected_manifests)``.
    """
    added = 0
    rejected: list[SignedManifest] = []
    for manifest in manifests:
        try:
            verify_manifest(manifest, trusted_key)
        except IntegrityError:
            rejected.append(manifest)
            continue
        accepted = {
            path: digest
            for path, digest in manifest.measurements.items()
            if not (
                (match := _MODULE_PATH.match(path))
                and match.group(1) not in allowed_kernels
            )
        }
        added += policy.merge_measurements(accepted)
    return added, rejected
