"""The dynamic policy generator.

Measures package executables straight from the mirror and folds them
into the runtime policy.  Three behaviours from Section III-C:

* **Incremental append.**  Only new/changed packages are measured; the
  existing policy entries are retained so the machine stays in-policy
  during the brief update window (old binaries may still execute until
  every process restarts).  :meth:`DynamicPolicyGenerator.dedupe` runs
  after the update settles.
* **Kernel handling.**  Module paths under ``/lib/modules/<kver>/`` are
  only admitted for the *allowed kernels* -- normally just the running
  one.  A newly installed kernel is excluded until
  :meth:`prepare_for_reboot` admits it, immediately before the reboot
  that activates it (and drops the old kernel's modules).
* **SNAP scrubbing.**  Solution (a) for the SNAP false positives:
  :meth:`scrub_snap_prefixes` post-processes the policy, duplicating
  every ``/snap/<name>/<rev>/...`` entry under its confinement-relative
  (truncated) path so the measured entries match.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.common.events import EventLog
from repro.common.rng import SeededRng
from repro.distro.mirror import LocalMirror
from repro.distro.package import (
    Package,
    is_kernel_package,
    kernel_version_of,
)
from repro.dynpolicy.costmodel import GeneratorCostModel
from repro.keylime.policy import RuntimePolicy
from repro.obs import runtime as obs

_MODULE_PATH = re.compile(r"^/lib/modules/([^/]+)/")
_SNAP_PATH = re.compile(r"^/snap/[^/]+/[^/]+(/.*)$")


@dataclass(frozen=True)
class PolicyUpdateReport:
    """One generator run -- the row unit of Figs 3-5 and Table I.

    Attributes:
        time: when the run started (simulated seconds).
        duration_seconds: modelled generator runtime (Fig 3).
        packages_high: new/changed packages with executables, high
            priority (Fig 4 / Table I).
        packages_low: same, low priority.
        entries_added: policy lines appended (Fig 5).
        bytes_added: policy size growth (Section III-D's 0.16 MB).
        policy_lines_after: total policy size after the update.
        kernels_deferred: kernel versions seen but not yet admitted.
    """

    time: float
    duration_seconds: float
    packages_high: int
    packages_low: int
    entries_added: int
    bytes_added: int
    policy_lines_after: int
    kernels_deferred: tuple[str, ...] = field(default_factory=tuple)

    @property
    def packages_total(self) -> int:
        """Packages with executables in this update."""
        return self.packages_high + self.packages_low


class DynamicPolicyGenerator:
    """Measures mirror packages into runtime policies."""

    def __init__(
        self,
        mirror: LocalMirror,
        cost_model: GeneratorCostModel | None = None,
        events: EventLog | None = None,
        rng: SeededRng | None = None,
    ) -> None:
        self.mirror = mirror
        self.cost_model = cost_model if cost_model is not None else GeneratorCostModel(
            rng=rng.fork("cost") if rng is not None else None
        )
        self.events = events if events is not None else EventLog()

    # -- measurement core ---------------------------------------------------

    def measure_packages(
        self, packages: list[Package], allowed_kernels: set[str]
    ) -> tuple[dict[str, str], set[str]]:
        """path -> sha256 for the executables of *packages*.

        Kernel-module paths for kernels outside *allowed_kernels* are
        skipped; the versions seen-but-skipped are returned so the
        orchestrator knows a pre-reboot policy refresh is pending.
        """
        measurements: dict[str, str] = {}
        deferred: set[str] = set()
        for package in packages:
            for pf in package.executables:
                match = _MODULE_PATH.match(pf.path)
                if match and match.group(1) not in allowed_kernels:
                    deferred.add(match.group(1))
                    continue
                if pf.path.startswith("/boot/"):
                    kver = kernel_version_of(package)
                    if kver is not None and kver not in allowed_kernels:
                        deferred.add(kver)
                        continue
                measurements[pf.path] = package.sha256_of(pf.path)
        return measurements, deferred

    def generate_full(
        self,
        excludes: list[str],
        allowed_kernels: set[str],
        name: str = "dynamic-policy",
    ) -> tuple[RuntimePolicy, PolicyUpdateReport]:
        """Build the initial policy from the whole mirror (day-0 run)."""
        with obs.get().tracer.span("dynpolicy.generate", mode="full") as span:
            packages = self.mirror.packages()
            policy = RuntimePolicy(excludes=excludes, name=name)
            measurements, deferred = self.measure_packages(packages, allowed_kernels)
            added = policy.merge_measurements(measurements)
            report = self._report(
                packages, added, policy, deferred,
                duration=self.cost_model.batch_seconds(packages),
            )
            span.set_attribute("packages", report.packages_total)
            span.set_attribute("entries_added", added)
        return policy, report

    def generate_update(
        self,
        policy: RuntimePolicy,
        changed_packages: list[Package],
        allowed_kernels: set[str],
    ) -> PolicyUpdateReport:
        """Append measurements for one update batch to *policy* in place."""
        with obs.get().tracer.span("dynpolicy.generate", mode="update") as span:
            measurements, deferred = self.measure_packages(
                changed_packages, allowed_kernels
            )
            size_before = policy.size_bytes()
            added = policy.merge_measurements(measurements)
            report = self._report(
                changed_packages, added, policy, deferred,
                duration=self.cost_model.batch_seconds(changed_packages),
                size_before=size_before,
            )
            span.set_attribute("packages", report.packages_total)
            span.set_attribute("entries_added", added)
        self.events.emit(
            report.time, "dynpolicy", "policy.generated",
            packages=report.packages_total, entries=added,
            duration=report.duration_seconds,
        )
        return report

    def generate_update_from_manifests(
        self,
        policy: RuntimePolicy,
        changed_packages: list[Package],
        trusted_key,
        allowed_kernels: set[str],
    ) -> PolicyUpdateReport:
        """Append one update batch using maintainer-signed manifests.

        The Section V pipeline: for each changed package, fetch its
        signed manifest from the archive (via the mirror), verify, and
        merge -- no download/decompress/hash.  Packages without a
        manifest (or with an invalid one) fall back to the operator
        hashing path, so a partially-signed archive still updates.
        *trusted_key* is the pinned
        :class:`repro.crypto.rsa.RsaPublicKey` of the manifest
        authority.
        """
        from repro.dynpolicy.signedhashes import merge_signed_manifests

        with obs.get().tracer.span("dynpolicy.generate", mode="manifests") as span:
            manifests = []
            fallback: list[Package] = []
            for package in changed_packages:
                manifest = self.mirror.archive.manifest_for(package)
                if manifest is None:
                    fallback.append(package)
                else:
                    manifests.append((package, manifest))

            size_before = policy.size_bytes()
            added, rejected = merge_signed_manifests(
                policy, [manifest for _pkg, manifest in manifests],
                trusted_key, allowed_kernels,
            )
            rejected_packages = {manifest.package for manifest in rejected}
            fallback.extend(
                package for package, manifest in manifests
                if manifest.package in rejected_packages
            )
            deferred: set[str] = set()
            if fallback:
                measurements, deferred = self.measure_packages(fallback, allowed_kernels)
                added += policy.merge_measurements(measurements)
            for package in changed_packages:
                for pf in package.executables:
                    match = _MODULE_PATH.match(pf.path)
                    if match and match.group(1) not in allowed_kernels:
                        deferred.add(match.group(1))

            duration = self.cost_model.manifest_batch_seconds(len(manifests))
            if fallback:
                duration += self.cost_model.batch_seconds(
                    fallback, include_refresh=False
                )
            report = self._report(
                changed_packages, added, policy, deferred,
                duration=duration, size_before=size_before,
            )
            span.set_attribute("packages", report.packages_total)
            span.set_attribute("fallback", len(fallback))
        self.events.emit(
            report.time, "dynpolicy", "policy.generated.manifests",
            packages=report.packages_total, entries=added,
            fallback=len(fallback), rejected=len(rejected),
        )
        return report

    def _report(
        self,
        packages: list[Package],
        added: int,
        policy: RuntimePolicy,
        deferred: set[str],
        duration: float,
        size_before: int | None = None,
    ) -> PolicyUpdateReport:
        with_exec = [pkg for pkg in packages if pkg.has_executables]
        high = sum(1 for pkg in with_exec if pkg.priority.is_high)
        size_after = policy.size_bytes()
        registry = obs.get().registry
        registry.counter("dynpolicy_runs_total", "Generator runs executed").inc()
        registry.counter(
            "dynpolicy_packages_measured_total",
            "Packages with executables measured into policies",
        ).inc(len(with_exec))
        registry.counter(
            "dynpolicy_entries_added_total", "Policy lines appended by the generator",
        ).inc(added)
        registry.histogram(
            "dynpolicy_generate_sim_seconds",
            "Modelled generator runtime per run (simulated seconds, Fig 3)",
            buckets=(1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 3600.0),
        ).observe(duration)
        registry.gauge(
            "dynpolicy_policy_lines", "Runtime policy size after the last run",
        ).set(policy.line_count())
        return PolicyUpdateReport(
            time=self.mirror.last_sync_time or 0.0,
            duration_seconds=duration,
            packages_high=high,
            packages_low=len(with_exec) - high,
            entries_added=added,
            bytes_added=size_after - (size_before if size_before is not None else 0),
            policy_lines_after=policy.line_count(),
            kernels_deferred=tuple(sorted(deferred)),
        )

    # -- kernel lifecycle -------------------------------------------------

    def prepare_for_reboot(
        self,
        policy: RuntimePolicy,
        new_kernel: str,
        old_kernel: str | None = None,
    ) -> int:
        """Admit *new_kernel* to the policy just before the reboot.

        Measures the kernel package from the mirror with the new kernel
        allowed.  Old-kernel module entries are left in place for the
        update window; post-reboot dedup can drop them.  Returns the
        number of entries added.
        """
        kernel_packages = [
            pkg for pkg in self.mirror.packages()
            if is_kernel_package(pkg) and kernel_version_of(pkg) == new_kernel
        ]
        measurements, _ = self.measure_packages(kernel_packages, {new_kernel})
        return policy.merge_measurements(measurements)

    # -- post-update cleanup --------------------------------------------------

    def dedupe(self, policy: RuntimePolicy, installed: dict[str, Package]) -> int:
        """Drop superseded digests once the update has settled.

        For every path shipped by the currently installed package set,
        keep only the installed version's digest.  Returns the number
        of digests removed.
        """
        keep: dict[str, str] = {}
        for package in installed.values():
            for pf in package.executables:
                keep[pf.path] = package.sha256_of(pf.path)
        return policy.dedupe_for_paths(keep)

    # -- SNAP handling ---------------------------------------------------------

    @staticmethod
    def scrub_snap_prefixes(policy: RuntimePolicy) -> int:
        """Duplicate SNAP entries under their truncated measured paths.

        Returns the number of entries added.  (Solution (b), disabling
        SNAP, is simply not installing SNAPs -- nothing to implement.)
        """
        added = 0
        for path, digests in list(policy.digests.items()):
            match = _SNAP_PATH.match(path)
            if not match:
                continue
            truncated = match.group(1)
            for digest in digests:
                if policy.add_digest(truncated, digest):
                    added += 1
        return added
