"""The paper's four recommended mitigations (Section IV-C).

* **M1 -- enrich Keylime/IMA policies** (counters P1, P3):
  :func:`apply_m1_keylime_policy` drops the directory excludes so
  unknown executables in ``/tmp`` & co. raise NOT_IN_POLICY, and
  :func:`mitigated_ima_policy` narrows the fsmagic excludes so tmpfs /
  ramfs / overlayfs / proc executions are measured.
* **M2 -- never stop polling** (counters P2):
  :func:`apply_m2_continue_polling` flips the verifier to evaluate the
  *whole* log and keep attesting past failures.
* **M3 -- IMA re-evaluation on path change** (counters P4):
  :func:`apply_m3_reevaluation` enables the proposed kernel patch in
  the machine's IMA policy.
* **M4 -- script execution control** (partially counters P5):
  :func:`apply_m4_script_exec_control` enables the O_MAYEXEC-style
  feature for opted-in interpreters.  Inline code (``python -c``)
  remains invisible by design -- this is why Aoyama stays undetected.

:func:`apply_all` applies every mitigation to a running rig, which is
how the experiment harness produces Table II's "Mitigat." column.
"""

from repro.mitigations.apply import (
    MITIGATED_EXCLUDED_FSTYPES,
    MitigationSet,
    apply_all,
    apply_m1_keylime_policy,
    apply_m2_continue_polling,
    apply_m3_reevaluation,
    apply_m4_script_exec_control,
    mitigated_ima_policy,
)

__all__ = [
    "MITIGATED_EXCLUDED_FSTYPES",
    "MitigationSet",
    "apply_all",
    "apply_m1_keylime_policy",
    "apply_m2_continue_polling",
    "apply_m3_reevaluation",
    "apply_m4_script_exec_control",
    "mitigated_ima_policy",
]
