"""Implementations of mitigations M1-M4."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernelsim.ima import ImaPolicy
from repro.kernelsim.kernel import Machine
from repro.kernelsim.vfs import FilesystemType
from repro.keylime.policy import RuntimePolicy
from repro.keylime.verifier import KeylimeVerifier

#: Directory excludes M1 removes from the Keylime policy.  ``/run`` and
#: ``/var/log`` stay excluded: nothing executable legitimately lives
#: there and the paper only calls out the *attack-usable* exclusions.
M1_DANGEROUS_EXCLUDES = (
    r"^/tmp(/.*)?$",
    r"^/var/tmp(/.*)?$",
)

#: Filesystems the mitigated IMA policy still skips: pure-metadata
#: pseudo filesystems where nothing executable can be planted.  tmpfs,
#: ramfs, overlayfs, proc and debugfs become *measured* under M1.
#: devtmpfs cannot stay excluded: it reports TPMFS_MAGIC, so an fsmagic
#: rule for it would re-exclude every tmpfs -- exactly the hole M1 is
#: closing.
MITIGATED_EXCLUDED_FSTYPES = (
    FilesystemType.SYSFS,
    FilesystemType.SECURITYFS,
)

#: Interpreters opted into script execution control under M4.
M4_DEFAULT_INTERPRETERS = (
    "/usr/bin/python3",
    "/usr/bin/python3.10",
    "/bin/bash",
    "/usr/bin/bash",
    "/bin/sh",
    "/usr/bin/perl",
)


@dataclass(frozen=True)
class MitigationSet:
    """Which mitigations a run has applied (for reporting)."""

    m1_policy: bool = False
    m1_ima: bool = False
    m2_continue: bool = False
    m3_reevaluate: bool = False
    m4_script_control: bool = False

    def describe(self) -> str:
        """Short human-readable summary, e.g. ``"M1+M2+M3+M4"``."""
        parts = []
        if self.m1_policy or self.m1_ima:
            parts.append("M1")
        if self.m2_continue:
            parts.append("M2")
        if self.m3_reevaluate:
            parts.append("M3")
        if self.m4_script_control:
            parts.append("M4")
        return "+".join(parts) if parts else "none"


def apply_m1_keylime_policy(policy: RuntimePolicy) -> list[str]:
    """M1 (Keylime half): drop the attack-usable directory excludes.

    Returns the removed patterns.  Unknown executables under those
    directories will now raise NOT_IN_POLICY instead of being skipped.
    """
    removed = []
    for pattern in M1_DANGEROUS_EXCLUDES:
        if pattern in policy.excludes:
            policy.remove_exclude(pattern)
            removed.append(pattern)
    return removed


def mitigated_ima_policy(base: ImaPolicy | None = None) -> ImaPolicy:
    """M1 (IMA half): an IMA policy that measures the risky filesystems."""
    base = base if base is not None else ImaPolicy()
    return ImaPolicy(
        excluded_fstypes=MITIGATED_EXCLUDED_FSTYPES,
        measure_hooks=base.measure_hooks,
        re_evaluate_on_path_change=base.re_evaluate_on_path_change,
    )


def apply_m2_continue_polling(verifier: KeylimeVerifier) -> None:
    """M2: evaluate the full log and keep polling past failures."""
    verifier.continue_on_failure = True


def apply_m3_reevaluation(machine: Machine) -> None:
    """M3: the proposed IMA patch -- re-measure on path change.

    Mutates the machine's live IMA policy; takes effect for the current
    boot's engine as well, since the engine holds the same object.
    """
    machine.ima_policy.re_evaluate_on_path_change = True


def apply_m4_script_exec_control(
    machine: Machine, interpreters: tuple[str, ...] = M4_DEFAULT_INTERPRETERS
) -> None:
    """M4: enable script execution control for the common interpreters."""
    machine.enable_script_exec_control(list(interpreters))


def apply_all(
    machine: Machine, verifier: KeylimeVerifier, policy: RuntimePolicy
) -> MitigationSet:
    """Apply M1-M4 to a running rig.

    The IMA half of M1 replaces the machine's policy object in place so
    the *current* engine honours it too (a real deployment would reboot
    with a new policy; the experiments that need reboot semantics
    perform the reboot explicitly).
    """
    apply_m1_keylime_policy(policy)
    new_ima = mitigated_ima_policy(machine.ima_policy)
    machine.ima_policy.excluded_fstypes = new_ima.excluded_fstypes
    apply_m2_continue_polling(verifier)
    apply_m3_reevaluation(machine)
    apply_m4_script_exec_control(machine)
    return MitigationSet(
        m1_policy=True, m1_ima=True, m2_continue=True,
        m3_reevaluate=True, m4_script_control=True,
    )
