"""Packages, priorities, and deterministic file contents.

A package is a named, versioned set of files, some of which are
executables (binaries, shared libraries, kernel modules, maintainer
scripts).  File *content* is derived deterministically from
``(package, version, path)`` so that:

* two machines installing the same package version get byte-identical
  files (and therefore identical IMA hashes), and
* a new version of a package changes every file's hash -- which is what
  makes a stale Keylime policy fire "hash mismatch" false positives.

Priorities mirror Debian's: the paper buckets "Essential", "Required",
"Important" and "Standard" as *high priority* and "Optional"/"Extra" as
*low priority* when counting packages per update (Fig 4, Table I).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum


class Priority(Enum):
    """Debian package priorities."""

    ESSENTIAL = "essential"
    REQUIRED = "required"
    IMPORTANT = "important"
    STANDARD = "standard"
    OPTIONAL = "optional"
    EXTRA = "extra"

    @property
    def is_high(self) -> bool:
        """The paper's high-priority bucket."""
        return self in (
            Priority.ESSENTIAL,
            Priority.REQUIRED,
            Priority.IMPORTANT,
            Priority.STANDARD,
        )


@dataclass(frozen=True)
class PackageFile:
    """One file shipped by a package.

    Attributes:
        path: absolute install path.
        executable: whether the file carries an execute bit (the only
            files IMA measures and the policy generator hashes).
        size: nominal size in bytes, used by the generator cost model.
    """

    path: str
    executable: bool
    size: int = 4096


def file_content(package: str, version: str, path: str) -> bytes:
    """Deterministic content bytes for a packaged file.

    The bytes are a hash-expanded token: unique per (package, version,
    path) triple, so version bumps change every file hash.
    """
    seed = f"{package}={version}:{path}".encode("utf-8")
    return hashlib.sha256(seed).digest() + seed


def file_sha256(package: str, version: str, path: str) -> str:
    """SHA-256 the policy generator records for a packaged file."""
    return hashlib.sha256(file_content(package, version, path)).hexdigest()


@dataclass(frozen=True)
class Package:
    """A versioned package.

    Instances are immutable; a package *update* is a new instance with
    the same name and a later version (and usually the same file list).
    """

    name: str
    version: str
    priority: Priority
    files: tuple[PackageFile, ...]
    repository: str = "main"
    compressed_size: int = 0  # bytes on the mirror; drives the cost model

    def __post_init__(self) -> None:
        if self.compressed_size == 0:
            # Roughly 35% compression over the nominal payload.
            total = sum(pf.size for pf in self.files)
            object.__setattr__(self, "compressed_size", max(1024, int(total * 0.35)))

    @property
    def key(self) -> tuple[str, str]:
        """(name, version) identity."""
        return (self.name, self.version)

    @property
    def executables(self) -> tuple[PackageFile, ...]:
        """Files with the execute bit set."""
        return tuple(pf for pf in self.files if pf.executable)

    @property
    def has_executables(self) -> bool:
        """True when the package ships at least one executable.

        Fig 4 and Table I only count packages in this category.
        """
        return any(pf.executable for pf in self.files)

    def content_of(self, path: str) -> bytes:
        """Deterministic content of one of this package's files."""
        return file_content(self.name, self.version, path)

    def sha256_of(self, path: str) -> str:
        """SHA-256 of one of this package's files."""
        return file_sha256(self.name, self.version, path)

    def measurements(self) -> dict[str, str]:
        """path -> sha256 for every executable (what the generator emits)."""
        return {pf.path: self.sha256_of(pf.path) for pf in self.executables}

    def bump_version(self, new_version: str) -> "Package":
        """A new release of this package (same files, new content)."""
        return Package(
            name=self.name,
            version=new_version,
            priority=self.priority,
            files=self.files,
            repository=self.repository,
        )


@dataclass(frozen=True)
class KernelPackage:
    """Marker wrapper identifying a kernel image package.

    Kernel packages need the special handling of Section III-C: their
    modules belong to ``/lib/modules/<kver>/`` and the new kernel does
    not *run* until reboot, so the policy generator treats them
    separately.
    """

    package: Package
    kernel_version: str


def make_kernel_package(kernel_version: str, module_count: int = 24) -> KernelPackage:
    """Build a kernel image package for *kernel_version*."""
    files = [
        PackageFile(path=f"/boot/vmlinuz-{kernel_version}", executable=True, size=9_000_000),
        PackageFile(path=f"/boot/initrd.img-{kernel_version}", executable=False, size=40_000_000),
    ]
    for index in range(module_count):
        files.append(
            PackageFile(
                path=f"/lib/modules/{kernel_version}/kernel/mod{index:03d}.ko",
                executable=True,
                size=150_000,
            )
        )
    package = Package(
        name=f"linux-image-{kernel_version}",
        version=kernel_version,
        priority=Priority.OPTIONAL,
        files=tuple(files),
        repository="updates",
    )
    return KernelPackage(package=package, kernel_version=kernel_version)


def is_kernel_package(package: Package) -> bool:
    """True for kernel image packages (by naming convention, as in apt)."""
    return package.name.startswith("linux-image-")


def kernel_version_of(package: Package) -> str | None:
    """Extract the kernel version from a kernel image package name."""
    if not is_kernel_package(package):
        return None
    return package.name[len("linux-image-"):]
