"""The upstream distribution archive: repositories and timed releases.

The archive is the simulation's stand-in for ``archive.ubuntu.com``: it
holds the authoritative package index per repository ("main",
"security", "updates") and a timeline of :class:`Release` events.  A
release publishes new package versions (and occasionally brand-new
packages) into one or more repositories at a specific simulated time --
the timing matters because the paper's one real false positive came
from a release landing *after* the mirror's daily sync.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, NotFoundError
from repro.distro.package import Package

STANDARD_REPOSITORIES = ("main", "security", "updates")


@dataclass(frozen=True)
class Release:
    """One publication event.

    Attributes:
        time: simulated time at which the packages become available.
        packages: the published package versions (each carries its
            target repository in ``package.repository``).
        label: human-readable tag for logs ("daily 2024-03-27" etc.).
    """

    time: float
    packages: tuple[Package, ...]
    label: str = ""

    @property
    def packages_with_executables(self) -> tuple[Package, ...]:
        """The subset Fig 4 counts."""
        return tuple(pkg for pkg in self.packages if pkg.has_executables)


class Repository:
    """One named repository: latest version of each package."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._latest: dict[str, Package] = {}

    def __len__(self) -> int:
        return len(self._latest)

    def __contains__(self, package_name: str) -> bool:
        return package_name in self._latest

    def publish(self, package: Package) -> None:
        """Make *package* the latest version of its name."""
        self._latest[package.name] = package

    def latest(self, package_name: str) -> Package:
        """Latest version of *package_name*."""
        try:
            return self._latest[package_name]
        except KeyError:
            raise NotFoundError(
                f"package {package_name!r} not in repository {self.name!r}"
            ) from None

    def packages(self) -> list[Package]:
        """All latest versions, sorted by name."""
        return [self._latest[name] for name in sorted(self._latest)]


class UbuntuArchive:
    """The upstream archive with its release timeline."""

    def __init__(self, repositories: tuple[str, ...] = STANDARD_REPOSITORIES) -> None:
        if not repositories:
            raise ConfigurationError("archive needs at least one repository")
        self.repositories: dict[str, Repository] = {
            name: Repository(name) for name in repositories
        }
        self._releases: list[Release] = []
        self.signer = None  # optional ArchiveSigner (see enable_signing)
        self.manifest_authority = None  # optional ManifestAuthority
        self._manifests: dict[tuple[str, str], object] = {}

    def enable_signing(self, signer) -> None:
        """Attach a release signer; syncs can then be verified.

        *signer* is a :class:`repro.distro.release_signing.ArchiveSigner`
        (kept untyped here to avoid a dependency cycle).
        """
        self.signer = signer

    def enable_manifests(self, authority) -> None:
        """Attach a manifest authority: every published package version
        gets a maintainer-signed hash manifest (the paper's Section V
        proposal).  Already-published packages are signed retroactively.

        *authority* is a
        :class:`repro.dynpolicy.signedhashes.ManifestAuthority`.
        """
        self.manifest_authority = authority
        for repository in self.repositories.values():
            for package in repository.packages():
                self._sign_manifest(package)

    def _sign_manifest(self, package: Package) -> None:
        if self.manifest_authority is None or package.key in self._manifests:
            return
        self._manifests[package.key] = self.manifest_authority.sign_package(package)

    def manifest_for(self, package: Package):
        """The signed manifest for one package version (or ``None``)."""
        return self._manifests.get(package.key)

    def effective_index(self, repositories: tuple[str, ...]) -> dict[str, Package]:
        """name -> effective package for a subset of repositories.

        Same precedence as :meth:`latest_index` (security > updates >
        main), restricted to *repositories* -- the view a mirror
        subscribing to those repos sees.
        """
        index: dict[str, Package] = {}
        for repo_name in ("main", "updates", "security"):
            if repo_name not in repositories or repo_name not in self.repositories:
                continue
            for package in self.repositories[repo_name].packages():
                index[package.name] = package
        return index

    def inrelease_for(self, repositories: tuple[str, ...], now: float):
        """The signed index snapshot a syncing mirror downloads.

        Requires :meth:`enable_signing`; applies due releases first so
        the signature covers exactly what is served at *now*.
        """
        if self.signer is None:
            raise ConfigurationError("archive signing is not enabled")
        self.apply_releases_until(now)
        return self.signer.sign_index(now, self.effective_index(repositories))

    def repository(self, name: str) -> Repository:
        """Look up a repository by name."""
        try:
            return self.repositories[name]
        except KeyError:
            raise NotFoundError(f"archive has no repository {name!r}") from None

    def seed(self, packages: list[Package]) -> None:
        """Publish the initial package population at time zero."""
        for package in packages:
            self.repository(package.repository).publish(package)
            self._sign_manifest(package)

    def schedule_release(self, release: Release) -> None:
        """Add a future release to the timeline (must stay time-ordered)."""
        if self._releases and release.time < self._releases[-1].time:
            raise ConfigurationError(
                "releases must be scheduled in chronological order"
            )
        self._releases.append(release)

    def releases_between(self, since: float, until: float) -> list[Release]:
        """Releases with ``since < time <= until`` (mirror-sync window)."""
        return [r for r in self._releases if since < r.time <= until]

    def apply_releases_until(self, now: float) -> list[Release]:
        """Publish every scheduled release due by *now* into the repos.

        Idempotent: already-applied releases are tracked and skipped.
        Returns the newly applied releases.
        """
        applied = []
        for release in self._releases:
            if release.time <= now and not getattr(release, "_applied", False):
                for package in release.packages:
                    self.repository(package.repository).publish(package)
                    self._sign_manifest(package)
                object.__setattr__(release, "_applied", True)
                applied.append(release)
        return applied

    def latest_index(self) -> dict[str, Package]:
        """name -> latest package across all repositories.

        When a name exists in several repositories (e.g. a security
        rebuild of a main package), "security" wins over "updates" wins
        over "main" -- apt's effective pin ordering for this layout.
        """
        index: dict[str, Package] = {}
        for repo_name in ("main", "updates", "security"):
            repo = self.repositories.get(repo_name)
            if repo is None:
                continue
            for package in repo.packages():
                index[package.name] = package
        return index
