"""The package installer: applies archive/mirror packages to a machine.

``AptInstaller`` is the simulation's ``apt``: it tracks what is
installed on one machine and writes package files into the machine's
VFS on install/upgrade.  Two behaviours from the paper:

* **Unattended upgrades** -- Ubuntu updates itself daily unless told
  otherwise; the false-positive experiment's alerts come from exactly
  this path (``upgrade_from`` pointed at the *official archive*).
* **Kernel installs do not switch kernels.**  Installing a
  ``linux-image-*`` package writes ``/boot`` and ``/lib/modules`` files
  and marks the kernel *pending*; the machine keeps running the old
  kernel until reboot (Section III-C's kernel-module handling).

Version ordering: the synthetic archive only ever moves forward, so the
installer treats "version differs from installed" as an upgrade.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.events import EventLog
from repro.distro.package import Package, is_kernel_package, kernel_version_of
from repro.kernelsim.kernel import Machine


@dataclass(frozen=True)
class UpdateReport:
    """Outcome of one upgrade run.

    Attributes:
        time: when the upgrade ran (simulated seconds).
        upgraded: packages that moved to a new version.
        newly_installed: packages installed for the first time.
        files_written: count of files written to the filesystem.
        executables_written: subset of those with the execute bit.
        bytes_downloaded: compressed bytes fetched from the source.
        source: label of the package source ("mirror" / "official").
    """

    time: float
    upgraded: tuple[Package, ...] = field(default_factory=tuple)
    newly_installed: tuple[Package, ...] = field(default_factory=tuple)
    files_written: int = 0
    executables_written: int = 0
    bytes_downloaded: int = 0
    source: str = "mirror"

    @property
    def packages(self) -> tuple[Package, ...]:
        """Everything this run touched."""
        return self.upgraded + self.newly_installed

    @property
    def is_empty(self) -> bool:
        """True when nothing needed doing."""
        return not self.packages


class AptInstaller:
    """Per-machine package state and install operations."""

    def __init__(self, machine: Machine, events: EventLog | None = None) -> None:
        self.machine = machine
        self.events = events if events is not None else machine.events
        self._installed: dict[str, Package] = {}

    @property
    def installed(self) -> dict[str, Package]:
        """name -> installed package (a copy)."""
        return dict(self._installed)

    def installed_version(self, package_name: str) -> str | None:
        """Installed version of *package_name*, or ``None``."""
        package = self._installed.get(package_name)
        return package.version if package else None

    def is_installed(self, package_name: str) -> bool:
        """True when the package is installed."""
        return package_name in self._installed

    # -- operations --------------------------------------------------------

    def install(self, package: Package) -> int:
        """Install or upgrade a single package; returns files written."""
        files_written = 0
        for pf in package.files:
            self.machine.install_file(
                pf.path, package.content_of(pf.path), executable=pf.executable
            )
            files_written += 1
        self._installed[package.name] = package
        if is_kernel_package(package):
            kver = kernel_version_of(package)
            if kver != self.machine.current_kernel:
                self.machine.pending_kernel = kver
        self.events.emit(
            self.machine.clock.now, "apt", "apt.installed",
            package=package.name, version=package.version, files=files_written,
        )
        return files_written

    def install_baseline(self, packages: list[Package]) -> int:
        """Install the initial system image; returns total files written."""
        total = 0
        for package in packages:
            total += self.install(package)
        return total

    def upgrade_from(
        self,
        source_index: dict[str, Package],
        source: str = "mirror",
        install_new: bool = False,
        install_kernels: bool = True,
    ) -> UpdateReport:
        """Upgrade installed packages to the versions in *source_index*.

        With ``install_new`` true, packages present in the source but
        not installed are installed too (release upgrades); unattended
        upgrades leave it false.  Kernel image packages are versioned
        *names* (``linux-image-5.15.0-92-generic``), so a kernel update
        always looks like a new package; the ``linux-generic``
        metapackage pulls it in, modelled by ``install_kernels``.
        """
        upgraded: list[Package] = []
        newly_installed: list[Package] = []
        files_written = 0
        executables_written = 0
        bytes_downloaded = 0

        for name, available in sorted(source_index.items()):
            current = self._installed.get(name)
            if current is None:
                pulled_by_metapackage = install_kernels and is_kernel_package(available)
                if not install_new and not pulled_by_metapackage:
                    continue
                if (
                    pulled_by_metapackage
                    and not install_new
                    and not any(is_kernel_package(pkg) for pkg in self._installed.values())
                ):
                    continue  # machine has no kernel lineage to follow
                newly_installed.append(available)
            elif current.version == available.version:
                continue
            else:
                upgraded.append(available)
            files_written += self.install(available)
            executables_written += len(available.executables)
            bytes_downloaded += available.compressed_size

        report = UpdateReport(
            time=self.machine.clock.now,
            upgraded=tuple(upgraded),
            newly_installed=tuple(newly_installed),
            files_written=files_written,
            executables_written=executables_written,
            bytes_downloaded=bytes_downloaded,
            source=source,
        )
        self.events.emit(
            self.machine.clock.now, "apt", "apt.upgraded",
            package_source=source, upgraded=len(upgraded), new=len(newly_installed),
            files=files_written,
        )
        return report
