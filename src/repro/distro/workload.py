"""Synthetic release stream and benign-operations workload.

We obviously cannot replay Canonical's actual February--June 2024
archive, so this module generates a synthetic stand-in calibrated to the
statistics the paper reports for exactly that window:

* packages with executables per daily update: mean 16.5, sd 26.8
  (heavy-tailed; modelled log-normal) -- Fig 4;
* high-priority packages per daily update: mean 0.9, sd 2.2 (most days
  zero, occasional bursts; modelled as a Poisson mixture) -- Fig 4;
* policy entries added per daily update: mean ~1,271 -- Fig 5 -- which
  pins the executables-per-package distribution at mean ~77;
* a new kernel roughly every two weeks (Section III-C's kernel-module
  handling exists because of these).

The :class:`BenignWorkload` drives the prover through the paper's
"normal operations": executing system binaries, running scripts both
ways, and (optionally) running SNAP applications.  The workload is what
turns a stale policy into *fired* false positives: an updated file only
mismatches the policy once something executes it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.clock import days, hours
from repro.common.rng import SeededRng
from repro.distro.archive import Release, UbuntuArchive
from repro.distro.package import (
    Package,
    PackageFile,
    Priority,
    make_kernel_package,
)
from repro.kernelsim.kernel import ExecResult, Machine

#: Directory mix for generated executables (weight, template).
_EXEC_DIRS = (
    (0.25, "/usr/bin/{pkg}-{i}"),
    (0.05, "/usr/sbin/{pkg}d-{i}"),
    (0.40, "/usr/lib/{pkg}/helper-{i}"),
    (0.25, "/usr/lib/x86_64-linux-gnu/lib{pkg}-{i}.so"),
    (0.05, "/usr/libexec/{pkg}/exec-{i}"),
)


def _pick_exec_path(rng: SeededRng, pkg: str, index: int) -> str:
    roll = rng.random()
    cumulative = 0.0
    for weight, template in _EXEC_DIRS:
        cumulative += weight
        if roll <= cumulative:
            return template.format(pkg=pkg, i=index)
    return _EXEC_DIRS[-1][1].format(pkg=pkg, i=index)


def _make_package(
    rng: SeededRng,
    name: str,
    version: str,
    priority: Priority,
    repository: str,
    exec_files: int,
) -> Package:
    """Build a package with *exec_files* executables plus support files."""
    files: list[PackageFile] = []
    for index in range(exec_files):
        files.append(
            PackageFile(
                path=_pick_exec_path(rng, name, index),
                executable=True,
                size=max(1024, int(rng.lognormal(math.log(60_000), 1.2))),
            )
        )
    for index in range(rng.randint(1, 6)):  # docs, configs, changelogs
        files.append(
            PackageFile(
                path=f"/usr/share/doc/{name}/file-{index}",
                executable=False,
                size=rng.randint(200, 20_000),
            )
        )
    return Package(
        name=name,
        version=version,
        priority=priority,
        files=tuple(files),
        repository=repository,
    )


def _exec_file_count(rng: SeededRng, mean: float) -> int:
    """Per-package executable count: log-normal with the given mean."""
    sigma = 0.9
    mu = math.log(mean) - sigma * sigma / 2.0
    return max(1, min(600, round(rng.lognormal(mu, sigma))))


#: Canonical packages every machine needs, with fixed well-known paths.
#: The interpreter paths are load-bearing: P5 scenarios execute
#: ``/usr/bin/python3`` and ``/bin/bash`` explicitly.
def essential_packages() -> list[Package]:
    """The hand-written core of the base system."""

    def pkg(name, version, priority, files):
        return Package(
            name=name, version=version, priority=priority,
            files=tuple(files), repository="main",
        )

    return [
        pkg("bash", "5.1-6ubuntu1", Priority.ESSENTIAL, [
            PackageFile("/bin/bash", True, 1_200_000),
            PackageFile("/usr/bin/bash", True, 1_200_000),
        ]),
        pkg("dash", "0.5.11", Priority.ESSENTIAL, [
            PackageFile("/bin/sh", True, 120_000),
        ]),
        pkg("coreutils", "8.32-4.1ubuntu1", Priority.REQUIRED, [
            PackageFile(f"/usr/bin/{tool}", True, 100_000)
            for tool in ("ls", "cat", "cp", "mv", "rm", "chmod", "mkdir", "touch", "sha256sum")
        ]),
        pkg("python3.10", "3.10.6-1~22.04", Priority.IMPORTANT, [
            PackageFile("/usr/bin/python3", True, 5_900_000),
            PackageFile("/usr/bin/python3.10", True, 5_900_000),
        ]),
        pkg("perl-base", "5.34.0-3ubuntu1", Priority.ESSENTIAL, [
            PackageFile("/usr/bin/perl", True, 2_100_000),
        ]),
        pkg("tar", "1.34+dfsg-1", Priority.REQUIRED, [
            PackageFile("/usr/bin/tar", True, 450_000),
        ]),
        pkg("gzip", "1.10-4ubuntu4", Priority.REQUIRED, [
            PackageFile("/usr/bin/gzip", True, 90_000),
        ]),
        pkg("gcc-12", "12.1.0-2ubuntu1", Priority.OPTIONAL, [
            PackageFile("/usr/bin/gcc", True, 1_000_000),
            PackageFile("/usr/bin/make", True, 240_000),
            PackageFile("/usr/bin/ld", True, 1_800_000),
        ]),
        pkg("insmod-tools", "29-1ubuntu1", Priority.IMPORTANT, [
            PackageFile("/usr/sbin/insmod", True, 80_000),
            PackageFile("/usr/sbin/rmmod", True, 80_000),
        ]),
        pkg("wget", "1.21.2-2ubuntu1", Priority.STANDARD, [
            PackageFile("/usr/bin/wget", True, 500_000),
        ]),
    ]


def build_base_system(
    rng: SeededRng,
    n_filler_packages: int = 120,
    mean_exec_files: float = 12.0,
    kernel_version: str = "5.15.0-91-generic",
) -> list[Package]:
    """The initial installed system: essentials + filler + a kernel.

    ``n_filler_packages`` controls scale.  The paper's machine produced
    a 323,734-line initial policy (~4,200 packages at ~77 executables
    each); the default here is a scaled-down system that keeps the unit
    suite fast, and the long-run experiments pass larger values.
    """
    packages = essential_packages()
    stream_rng = rng.fork("base")
    for index in range(n_filler_packages):
        name = f"lib{_syllables(stream_rng.fork(str(index)))}{index}"
        priority = (
            Priority.STANDARD if stream_rng.bernoulli(0.06) else
            (Priority.OPTIONAL if stream_rng.bernoulli(0.85) else Priority.EXTRA)
        )
        packages.append(
            _make_package(
                stream_rng.fork(f"pkg{index}"),
                name=name,
                version="1.0.0",
                priority=priority,
                repository="main",
                exec_files=_exec_file_count(stream_rng, mean_exec_files),
            )
        )
    packages.append(make_kernel_package(kernel_version).package)
    return packages


def _syllables(rng: SeededRng) -> str:
    consonants = "bcdfghklmnprstvz"
    vowels = "aeiou"
    return "".join(
        rng.choice(consonants) + rng.choice(vowels) for _ in range(rng.randint(2, 3))
    )


@dataclass
class ReleaseStreamConfig:
    """Calibration knobs for the synthetic archive releases.

    Defaults reproduce the paper's daily-update statistics; tests use
    smaller values.
    """

    mean_packages_per_day: float = 16.5
    sd_packages_per_day: float = 26.8
    high_priority_burst_probability: float = 0.10
    high_priority_burst_mean: float = 6.0
    high_priority_quiet_mean: float = 0.3
    mean_exec_files_per_package: float = 77.0
    new_package_fraction: float = 0.15
    kernel_release_every_days: int = 14
    release_hour_min: float = 6.0   # releases land between these local hours
    release_hour_max: float = 22.0
    security_fraction: float = 0.25  # fraction of updates landing in "security"


class SyntheticReleaseStream:
    """Generates and schedules archive releases day by day."""

    def __init__(
        self,
        archive: UbuntuArchive,
        base_packages: list[Package],
        rng: SeededRng,
        config: ReleaseStreamConfig | None = None,
    ) -> None:
        self.archive = archive
        self.rng = rng
        self.config = config if config is not None else ReleaseStreamConfig()
        self._population: dict[str, Package] = {
            pkg.name: pkg for pkg in base_packages
        }
        self._new_counter = 0
        self._kernel_counter = 91
        # Log-normal parameters from the target mean/sd.
        mean = self.config.mean_packages_per_day
        sd = self.config.sd_packages_per_day
        cv2 = (sd / mean) ** 2
        self._ln_sigma = math.sqrt(math.log(1 + cv2))
        self._ln_mu = math.log(mean) - self._ln_sigma**2 / 2

    def _daily_package_count(self, day_rng: SeededRng) -> int:
        return max(0, min(400, round(day_rng.lognormal(self._ln_mu, self._ln_sigma))))

    def _daily_high_priority_count(self, day_rng: SeededRng, total: int) -> int:
        cfg = self.config
        if day_rng.bernoulli(cfg.high_priority_burst_probability):
            count = day_rng.poisson(cfg.high_priority_burst_mean)
        else:
            count = day_rng.poisson(cfg.high_priority_quiet_mean)
        return min(count, total)

    def generate_day(self, day_index: int) -> Release:
        """Create (and schedule) the release for simulated day *day_index*."""
        cfg = self.config
        day_rng = self.rng.fork(f"day{day_index}")
        total = self._daily_package_count(day_rng)
        high = self._daily_high_priority_count(day_rng, total)

        packages: list[Package] = []
        updatable = sorted(self._population)
        for slot in range(total):
            repo = "security" if day_rng.bernoulli(cfg.security_fraction) else "updates"
            # The high-priority mixture is the *sole* source of
            # high-priority updates (the calibration target is the
            # per-update count the paper reports, mean 0.9/day); all
            # other slots are explicitly low priority, matching how
            # real archives skew -- essential packages update rarely.
            if slot < high:
                priority = day_rng.choice(
                    [Priority.REQUIRED, Priority.IMPORTANT, Priority.STANDARD]
                )
            else:
                priority = (
                    Priority.EXTRA if day_rng.bernoulli(0.1) else Priority.OPTIONAL
                )
            if updatable and not day_rng.bernoulli(cfg.new_package_fraction):
                name = day_rng.choice(updatable)
                base = self._population[name]
                updated = Package(
                    name=base.name,
                    version=f"{base.version.split('+')[0]}+u{day_index}.{slot}",
                    priority=priority,
                    files=base.files,
                    repository=repo,
                )
            else:
                self._new_counter += 1
                name = f"new{_syllables(day_rng.fork(f'name{slot}'))}{self._new_counter}"
                updated = _make_package(
                    day_rng.fork(f"new{slot}"),
                    name=name,
                    version=f"0.{day_index}.1",
                    priority=priority,
                    repository=repo,
                    exec_files=_exec_file_count(day_rng, cfg.mean_exec_files_per_package),
                )
            self._population[updated.name] = updated
            packages.append(updated)

        if cfg.kernel_release_every_days and day_index > 0 and (
            day_index % cfg.kernel_release_every_days == 0
        ):
            self._kernel_counter += 1
            kernel = make_kernel_package(f"5.15.0-{self._kernel_counter}-generic")
            self._population[kernel.package.name] = kernel.package
            packages.append(kernel.package)

        hour = day_rng.uniform(cfg.release_hour_min, cfg.release_hour_max)
        release = Release(
            time=days(day_index) + hours(hour),
            packages=tuple(packages),
            label=f"daily-{day_index}",
        )
        self.archive.schedule_release(release)
        return release

    def generate_days(self, start_day: int, n_days: int) -> list[Release]:
        """Generate consecutive daily releases."""
        return [self.generate_day(start_day + offset) for offset in range(n_days)]


class BenignWorkload:
    """The paper's "normal operations only" workload.

    Executes a rotating sample of the machine's installed executables,
    runs scripts both by shebang and through the interpreter, and pokes
    SNAP applications when present.  Nothing here is malicious; any
    attestation failure while only this workload runs is a false
    positive by definition.
    """

    def __init__(self, machine: Machine, rng: SeededRng) -> None:
        self.machine = machine
        self.rng = rng
        self._snaps: list = []

    def register_snap(self, snap) -> None:
        """Include an installed SNAP in the daily rotation."""
        self._snaps.append(snap)

    def _executables(self, limit: int = 50_000) -> list[str]:
        paths = []
        for prefix in ("/bin", "/usr"):
            for stat in self.machine.vfs.walk(prefix):
                if stat.executable:
                    paths.append(stat.path)
                    if len(paths) >= limit:
                        return paths
        return paths

    def run_session(self, n_execs: int = 25) -> list[ExecResult]:
        """One interactive session: execute a sample of system binaries."""
        candidates = self._executables()
        if not candidates:
            return []
        count = min(n_execs, len(candidates))
        results = []
        for path in self.rng.sample(candidates, count):
            results.append(self.machine.exec_file(path))
        return results

    def exec_updated_files(self, report, limit: int = 200) -> list[ExecResult]:
        """Execute the executables an update just replaced.

        This models daemons restarting and users running refreshed
        tools -- the step that actually surfaces stale-policy
        mismatches as alerts.
        """
        results = []
        executed = 0
        for package in report.packages:
            for pf in package.executables:
                results.append(self.machine.exec_file(pf.path))
                executed += 1
                if executed >= limit:
                    return results
        return results

    def run_scripts(self) -> list[ExecResult]:
        """Run a maintenance script both ways (shebang and interpreter)."""
        script = "/usr/local/bin/maintenance.py"
        if not self.machine.vfs.exists(script):
            self.machine.install_file(
                script, b"#!/usr/bin/python3\nprint('rotate logs')\n", executable=True
            )
        results = [
            self.machine.exec_shebang_script(script, "/usr/bin/python3"),
            self.machine.run_with_interpreter("/usr/bin/python3", script),
        ]
        return results

    def run_snaps(self) -> list[ExecResult]:
        """Execute each registered SNAP's first binary under confinement."""
        results = []
        for snap in self._snaps:
            results.append(snap.run(self.machine, snap.binaries[0]))
        return results

    def daily(self, n_execs: int = 25) -> list[ExecResult]:
        """One day of benign activity."""
        results = self.run_session(n_execs=n_execs)
        results.extend(self.run_scripts())
        results.extend(self.run_snaps())
        return results
