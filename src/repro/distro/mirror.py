"""The operator's local mirror of the distribution archive.

Section III-C: to control updates, the operator disables unattended
upgrades and mirrors the "Main", "Security" and "Updates" repositories
locally.  Machines install from the mirror, and the dynamic policy
generator measures packages from the mirror, so policy and filesystem
can never disagree -- *as long as machines really do install from the
mirror*.  The paper's single observed false positive was an operator
installing from the official archive after the 05:00 mirror sync had
already run; :class:`LocalMirror` keeps enough state (sync timestamps,
package snapshots) to reproduce exactly that incident.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.common.errors import ConfigurationError
from repro.common.events import EventLog
from repro.distro.archive import STANDARD_REPOSITORIES, UbuntuArchive
from repro.distro.package import Package
from repro.obs import runtime as obs


@dataclass(frozen=True)
class SyncReport:
    """Outcome of one mirror sync."""

    time: float
    new_packages: tuple[Package, ...]
    changed_packages: tuple[Package, ...]

    @property
    def total(self) -> int:
        """Number of package versions pulled."""
        return len(self.new_packages) + len(self.changed_packages)


class LocalMirror:
    """A synced snapshot of selected archive repositories."""

    def __init__(
        self,
        archive: UbuntuArchive,
        repositories: tuple[str, ...] = STANDARD_REPOSITORIES,
        events: EventLog | None = None,
    ) -> None:
        for name in repositories:
            if name not in archive.repositories:
                raise ConfigurationError(
                    f"cannot mirror {name!r}: archive does not carry it"
                )
        self.archive = archive
        self.repositories = repositories
        self.events = events if events is not None else EventLog()
        self._index: dict[str, Package] = {}
        self.last_sync_time: float | None = None

    def __contains__(self, package_name: str) -> bool:
        return package_name in self._index

    def __len__(self) -> int:
        return len(self._index)

    def packages(self) -> list[Package]:
        """Every mirrored package (latest synced version), sorted by name."""
        return [self._index[name] for name in sorted(self._index)]

    def latest(self, package_name: str) -> Package:
        """The mirrored version of *package_name*."""
        from repro.common.errors import NotFoundError

        try:
            return self._index[package_name]
        except KeyError:
            raise NotFoundError(f"mirror does not carry {package_name!r}") from None

    def index(self) -> dict[str, Package]:
        """name -> mirrored package (a copy)."""
        return dict(self._index)

    def sync(self, now: float, trusted_key=None) -> SyncReport:
        """Pull the archive state as of *now* into the mirror.

        Releases published to the archive *after* this instant are not
        visible until the next sync -- the gap the paper's incident fell
        into.

        With *trusted_key* (the pinned archive release key, an
        :class:`repro.crypto.rsa.RsaPublicKey`), the sync verifies the
        archive's signed index (InRelease) against the content served
        and **aborts without adopting anything** when verification
        fails -- apt's behaviour on a tampered mirror.
        """
        telemetry = obs.get()
        wall_start = perf_counter()
        with telemetry.tracer.span("mirror.sync") as span:
            self.archive.apply_releases_until(now)
            # Security wins over updates wins over main, matching the archive.
            upstream = self.archive.effective_index(self.repositories)

            if trusted_key is not None:
                from repro.distro.release_signing import verify_inrelease

                inrelease = self.archive.inrelease_for(self.repositories, now)
                verify_inrelease(inrelease, upstream, trusted_key)

            new: list[Package] = []
            changed: list[Package] = []
            for name, package in upstream.items():
                existing = self._index.get(name)
                if existing is None:
                    new.append(package)
                elif existing.version != package.version:
                    changed.append(package)
            self._index = upstream
            self.last_sync_time = now
            span.set_attribute("new", len(new))
            span.set_attribute("changed", len(changed))

        registry = telemetry.registry
        registry.histogram(
            "mirror_sync_wall_seconds", "Wall-clock duration of one mirror sync",
        ).observe(perf_counter() - wall_start)
        registry.counter("mirror_syncs_total", "Mirror syncs executed").inc()
        packages_counter = registry.counter(
            "mirror_packages_synced_total", "Package versions pulled", ("kind",),
        )
        packages_counter.labels(kind="new").inc(len(new))
        packages_counter.labels(kind="changed").inc(len(changed))
        registry.gauge(
            "mirror_index_size", "Packages currently in the mirror index",
        ).set(len(self._index))

        report = SyncReport(
            time=now, new_packages=tuple(new), changed_packages=tuple(changed)
        )
        self.events.emit(
            now, "mirror", "mirror.synced",
            new=len(new), changed=len(changed), total_index=len(self._index),
        )
        return report
