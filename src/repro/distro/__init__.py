"""An Ubuntu-like distribution substrate.

The paper's dynamic policy generator sits on top of a real distribution
pipeline: Canonical publishes package updates into the "Main",
"Security" and "Updates" repositories of the Jammy archive; operators
mirror those repositories locally, and machines install from the mirror
on a controlled schedule.  This package simulates that pipeline:

* :mod:`repro.distro.package` -- packages, priorities, and deterministic
  per-version file contents.
* :mod:`repro.distro.archive` -- the upstream archive: repositories and
  timed releases.
* :mod:`repro.distro.mirror` -- the operator's local mirror with its
  sync schedule (the 05:00 sync in the paper's incident).
* :mod:`repro.distro.apt` -- the package installer that applies updates
  to a machine's filesystem (and models unattended upgrades).
* :mod:`repro.distro.snap` -- SNAP packages: squashfs images executed
  under confinement, producing the truncated IMA paths of Section III.
* :mod:`repro.distro.workload` -- the synthetic release stream and the
  benign operations workload, calibrated to the statistics the paper
  reports (packages/day, files/update, priority mix).
"""

from repro.distro.apt import AptInstaller, UpdateReport
from repro.distro.archive import Release, Repository, UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.package import Package, PackageFile, Priority
from repro.distro.release_signing import ArchiveSigner, InRelease, verify_inrelease
from repro.distro.snap import SnapPackage, install_snap
from repro.distro.workload import BenignWorkload, ReleaseStreamConfig, SyntheticReleaseStream

__all__ = [
    "AptInstaller",
    "ArchiveSigner",
    "BenignWorkload",
    "InRelease",
    "LocalMirror",
    "Package",
    "PackageFile",
    "Priority",
    "Release",
    "ReleaseStreamConfig",
    "Repository",
    "SnapPackage",
    "SyntheticReleaseStream",
    "UbuntuArchive",
    "UpdateReport",
    "install_snap",
    "verify_inrelease",
]
