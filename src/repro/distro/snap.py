"""SNAP packages: confined applications with truncated IMA paths.

Section III-B: SNAPs are applications shipped with their dependencies
in a squashfs image mounted under ``/snap/<name>/<revision>/``.  They
execute inside a confinement whose filesystem root is the image, so IMA
records their paths *relative to that root*: the policy says
``/snap/core20/1234/usr/bin/tool`` but the measurement list says
``/usr/bin/tool``.  Keylime then fails to match the entry -- the SNAP
false-positive class.

:func:`install_snap` mounts the image on a machine;
:meth:`SnapPackage.run` executes one of its binaries with the
confinement applied, exercising the truncation through the kernel's
ordinary chroot path logic (no SNAP special-casing in the kernel).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import NotFoundError
from repro.distro.package import file_content
from repro.kernelsim.kernel import ExecResult, Machine
from repro.kernelsim.vfs import FilesystemType


@dataclass(frozen=True)
class SnapPackage:
    """An installed SNAP: name, revision, and its binaries."""

    name: str
    revision: int
    binaries: tuple[str, ...]  # paths inside the image, e.g. "usr/bin/tool"

    @property
    def mount_root(self) -> str:
        """Where the squashfs image is mounted."""
        return f"/snap/{self.name}/{self.revision}"

    def binary_path(self, binary: str) -> str:
        """Absolute (host-view) path of one of the SNAP's binaries."""
        if binary not in self.binaries:
            raise NotFoundError(f"snap {self.name} ships no binary {binary!r}")
        return f"{self.mount_root}/{binary}"

    def confined_path(self, binary: str) -> str:
        """The path IMA will record when the binary runs confined."""
        return "/" + binary

    def run(self, machine: Machine, binary: str) -> ExecResult:
        """Execute a SNAP binary under confinement (truncated path)."""
        return machine.exec_file(self.binary_path(binary), chroot=self.mount_root)

    def run_unconfined(self, machine: Machine, binary: str) -> ExecResult:
        """Execute the same binary without confinement (full path)."""
        return machine.exec_file(self.binary_path(binary))


def install_snap(
    machine: Machine,
    name: str,
    revision: int,
    binaries: list[str],
) -> SnapPackage:
    """Mount a SNAP image on *machine* and install its binaries.

    The image is a dedicated squashfs mount (read-only in reality;
    immutability is not enforced here because no workload writes to it).
    """
    snap = SnapPackage(name=name, revision=revision, binaries=tuple(binaries))
    machine.vfs.mount(snap.mount_root, FilesystemType.SQUASHFS)
    for binary in binaries:
        path = snap.binary_path(binary)
        machine.install_file(
            path, file_content(f"snap:{name}", str(revision), binary), executable=True
        )
    machine.events.emit(
        machine.clock.now, "snapd", "snap.installed",
        name=name, revision=revision, binaries=len(binaries),
    )
    return snap
