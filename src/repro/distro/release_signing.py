"""Signed archive indexes (apt's ``InRelease`` model).

Real apt never trusts a mirror: the archive signs its package index
(the ``InRelease`` file), the signature travels with the mirrored
content, and every client verifies it before believing any package
version exists.  The reproduction's dynamic policy generator inherits
its trust from the same chain -- a mirror that forges package versions
could otherwise feed forged hashes straight into the runtime policy.

* :class:`ArchiveSigner` holds the archive's signing key and produces
  an :class:`InRelease` over the current index;
* :func:`verify_inrelease` checks one against the pinned archive key
  and the index actually served;
* :meth:`LocalMirror.sync` accepts a ``trusted_key`` and refuses to
  adopt an index whose InRelease does not verify (see
  :mod:`repro.distro.mirror`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.common.errors import IntegrityError
from repro.common.rng import SeededRng
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.distro.package import Package


@dataclass(frozen=True)
class InRelease:
    """A signed snapshot of the archive's package index."""

    time: float
    index: dict[str, str]  # package name -> version
    signature: bytes = field(repr=False)

    def signed_bytes(self) -> bytes:
        """Canonical encoding covered by the signature."""
        return inrelease_bytes(self.time, self.index)


def inrelease_bytes(time: float, index: dict[str, str]) -> bytes:
    """Canonical InRelease payload encoding."""
    payload = {
        "format": "repro-inrelease-v1",
        "time": time,
        "index": {name: index[name] for name in sorted(index)},
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class ArchiveSigner:
    """The archive's release-signing infrastructure."""

    def __init__(self, name: str, rng: SeededRng, key_bits: int = 1024) -> None:
        self.name = name
        self._keypair: RsaKeyPair = generate_keypair(rng.fork("release-key"), bits=key_bits)

    @property
    def public_key(self) -> RsaPublicKey:
        """The key clients pin (shipped in the OS image, like apt's)."""
        return self._keypair.public

    def sign_index(self, time: float, packages: dict[str, Package]) -> InRelease:
        """Produce the InRelease for the given index snapshot."""
        index = {name: package.version for name, package in packages.items()}
        return InRelease(
            time=time,
            index=index,
            signature=self._keypair.sign(inrelease_bytes(time, index)),
        )


def verify_inrelease(
    inrelease: InRelease,
    served_index: dict[str, Package],
    trusted_key: RsaPublicKey,
) -> None:
    """Check an InRelease against the key *and* the content served.

    Two distinct failures, both :class:`IntegrityError`:

    * bad signature -- the InRelease itself is forged;
    * index mismatch -- the InRelease is genuine but the mirror serves
      different package versions than the archive signed (a tampered or
      stale-and-spliced mirror).
    """
    if not trusted_key.verify(inrelease.signed_bytes(), inrelease.signature):
        raise IntegrityError(
            "InRelease signature does not verify against the pinned archive key"
        )
    served = {name: package.version for name, package in served_index.items()}
    if served != inrelease.index:
        missing = sorted(set(inrelease.index) - set(served))
        extra = sorted(set(served) - set(inrelease.index))
        changed = sorted(
            name for name in set(served) & set(inrelease.index)
            if served[name] != inrelease.index[name]
        )
        raise IntegrityError(
            "mirror content does not match the signed index",
            context={"missing": missing, "extra": extra, "changed": changed},
        )
