"""Digest and hex helpers shared by the TPM, IMA and policy layers.

Everything in the attestation stack speaks in hex-encoded digests: IMA
log lines, Keylime runtime policies, PCR values, quote structures.  This
module centralises the handful of conversions so that the encoding rules
live in exactly one place.
"""

from __future__ import annotations

import hashlib

SHA1_ZEROS = "0" * 40
SHA256_ZEROS = "0" * 64
SHA1_FF = "f" * 40
SHA256_FF = "f" * 64

DIGEST_SIZES = {"sha1": 20, "sha256": 32, "sha384": 48, "sha512": 64}


def sha1_hex(data: bytes) -> str:
    """SHA-1 digest of *data*, hex-encoded."""
    return hashlib.sha1(data).hexdigest()


def sha256_hex(data: bytes) -> str:
    """SHA-256 digest of *data*, hex-encoded."""
    return hashlib.sha256(data).hexdigest()


def digest_hex(algorithm: str, data: bytes) -> str:
    """Digest *data* with the named algorithm, hex-encoded."""
    if algorithm not in DIGEST_SIZES:
        raise ValueError(f"unsupported digest algorithm: {algorithm!r}")
    return hashlib.new(algorithm, data).hexdigest()


def digest_size(algorithm: str) -> int:
    """Digest size in bytes for the named algorithm."""
    try:
        return DIGEST_SIZES[algorithm]
    except KeyError:
        raise ValueError(f"unsupported digest algorithm: {algorithm!r}") from None


def zero_digest(algorithm: str) -> str:
    """The all-zero digest for the named algorithm (PCR reset value)."""
    return "0" * (2 * digest_size(algorithm))


def is_hex_digest(value: str, algorithm: str | None = None) -> bool:
    """True when *value* is a well-formed hex digest.

    When *algorithm* is given, the length must match that algorithm's
    digest size; otherwise any known digest length is accepted.
    """
    if not isinstance(value, str) or not value:
        return False
    try:
        bytes.fromhex(value)
    except ValueError:
        return False
    if algorithm is not None:
        return len(value) == 2 * digest_size(algorithm)
    return len(value) in {2 * size for size in DIGEST_SIZES.values()}


def extend_digest(algorithm: str, current_hex: str, new_hex: str) -> str:
    """TPM PCR extend: ``H(current || new)``, all values hex-encoded.

    This is the single place where the extend rule is implemented; both
    the TPM PCR bank and the verifier-side IMA log replay call it, so a
    mismatch between them can only come from the *inputs*, exactly as in
    the real system.
    """
    current = bytes.fromhex(current_hex)
    new = bytes.fromhex(new_hex)
    expected = digest_size(algorithm)
    if len(current) != expected:
        raise ValueError(
            f"current value has {len(current)} bytes, expected {expected} for {algorithm}"
        )
    if len(new) != expected:
        raise ValueError(
            f"extend value has {len(new)} bytes, expected {expected} for {algorithm}"
        )
    return hashlib.new(algorithm, current + new).hexdigest()
