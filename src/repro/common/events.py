"""A structured, queryable event log.

Every interesting thing that happens during a simulation run -- a file
measured by IMA, a quote validated, an attestation failure, a mirror
sync, an attack step -- is appended to an :class:`EventLog` as an
:class:`EventRecord`.  The experiment harness then *queries* the log to
build the paper's tables instead of each component keeping ad-hoc
counters, which keeps measurement concerns out of the modelled system.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class EventRecord:
    """One timestamped event.

    Attributes:
        time: simulated time (seconds) at which the event occurred.
        source: dotted name of the emitting component, e.g.
            ``"keylime.verifier"`` or ``"kernel.ima"``.
        kind: short machine-readable event type, e.g.
            ``"attestation.failed"`` or ``"mirror.synced"``.
        details: free-form structured payload.
    """

    time: float
    source: str
    kind: str
    details: dict[str, Any] = field(default_factory=dict)

    def matches(self, source: str | None = None, kind: str | None = None) -> bool:
        """True when the record matches the given source/kind prefixes."""
        if source is not None and not self.source.startswith(source):
            return False
        if kind is not None and not self.kind.startswith(kind):
            return False
        return True


class EventLog:
    """Append-only log of :class:`EventRecord` with simple queries."""

    def __init__(self) -> None:
        self._records: list[EventRecord] = []
        self._subscribers: list[Callable[[EventRecord], None]] = []
        self._by_kind: dict[str, list[EventRecord]] = {}
        self._by_source: dict[str, list[EventRecord]] = {}
        self._times: list[float] = []
        self._times_sorted = True

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    def emit(self, time: float, source: str, kind: str, /, **details: Any) -> EventRecord:
        """Append a record and notify subscribers."""
        record = EventRecord(time=time, source=source, kind=kind, details=details)
        self._records.append(record)
        self._by_kind.setdefault(kind, []).append(record)
        self._by_source.setdefault(source, []).append(record)
        if self._times_sorted and self._times and time < self._times[-1]:
            self._times_sorted = False
        self._times.append(time)
        # Snapshot: a subscriber that (un)subscribes during its callback
        # must not perturb this notification round.
        for subscriber in tuple(self._subscribers):
            subscriber(record)
        return record

    def subscribe(self, callback: Callable[[EventRecord], None]) -> Callable[[], None]:
        """Register *callback* for every future record; returns an unsubscriber."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

        return unsubscribe

    # -- queries -------------------------------------------------------

    def select(
        self,
        source: str | None = None,
        kind: str | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[EventRecord]:
        """Records matching the given source/kind prefixes and time window."""
        out = []
        for record in self._records:
            if since is not None and record.time < since:
                continue
            if until is not None and record.time > until:
                continue
            if record.matches(source=source, kind=kind):
                out.append(record)
        return out

    def count(self, source: str | None = None, kind: str | None = None) -> int:
        """Number of records matching the given prefixes."""
        return len(self.select(source=source, kind=kind))

    def last(self, source: str | None = None, kind: str | None = None) -> EventRecord | None:
        """Most recent matching record, or ``None``."""
        for record in reversed(self._records):
            if record.matches(source=source, kind=kind):
                return record
        return None

    def by_kind(self, kind: str) -> list[EventRecord]:
        """Records whose kind is exactly *kind* (indexed, O(1) lookup)."""
        return list(self._by_kind.get(kind, ()))

    def by_source(self, source: str) -> list[EventRecord]:
        """Records whose source is exactly *source* (indexed, O(1) lookup)."""
        return list(self._by_source.get(source, ()))

    def records_between(self, t0: float, t1: float) -> list[EventRecord]:
        """Records with ``t0 <= time <= t1``, in emission order.

        Emission times are normally monotone (the simulation clock only
        advances), so this bisects; a log with out-of-order timestamps
        falls back to a linear scan.
        """
        if t1 < t0:
            return []
        if self._times_sorted:
            lo = bisect_left(self._times, t0)
            hi = bisect_right(self._times, t1)
            return self._records[lo:hi]
        return [record for record in self._records if t0 <= record.time <= t1]

    def kinds(self) -> dict[str, int]:
        """Histogram of event kinds, for quick inspection in tests."""
        return {kind: len(records) for kind, records in self._by_kind.items()}
