"""Simulated time and a discrete-event scheduler.

The paper's experiments are *continuous*: a verifier polls an agent every
few seconds for 66 days, mirrors sync at 05:00 daily, updates are applied
on schedules, and attacks strike at chosen instants.  Re-running that in
wall-clock time is obviously impossible, so the whole reproduction runs
on a :class:`SimClock` -- a monotonically advancing virtual time measured
in seconds since the start of the experiment -- and a :class:`Scheduler`
that dispatches callbacks in timestamp order.

Design notes
------------

* Time is a ``float`` number of seconds.  Helpers convert to and from
  days/minutes because the paper reports both.
* The scheduler is deliberately simple (a heap of ``(time, seq, fn)``)
  rather than generator-based coroutines: every periodic process in the
  system (verifier polling, mirror sync, update orchestration) is
  naturally expressed as "do work, then reschedule myself".
* Events scheduled at the same timestamp run in scheduling order, which
  keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import SimulationError

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0


def minutes(value: float) -> float:
    """Convert *value* minutes to seconds."""
    return value * SECONDS_PER_MINUTE


def hours(value: float) -> float:
    """Convert *value* hours to seconds."""
    return value * SECONDS_PER_HOUR


def days(value: float) -> float:
    """Convert *value* days to seconds."""
    return value * SECONDS_PER_DAY


class SimClock:
    """A monotonically advancing virtual clock.

    The clock only moves forward, and only through :meth:`advance_to` /
    :meth:`advance_by`; nothing in the library reads wall-clock time.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time, in seconds since experiment start."""
        return self._now

    @property
    def now_minutes(self) -> float:
        """Current virtual time in minutes."""
        return self._now / SECONDS_PER_MINUTE

    @property
    def now_days(self) -> float:
        """Current virtual time in days."""
        return self._now / SECONDS_PER_DAY

    def day_index(self) -> int:
        """Zero-based index of the current simulated day."""
        return int(self._now // SECONDS_PER_DAY)

    def time_of_day(self) -> float:
        """Seconds elapsed since the current day's midnight."""
        return self._now - self.day_index() * SECONDS_PER_DAY

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to *timestamp*.

        Raises :class:`SimulationError` if *timestamp* is in the past --
        virtual time never rewinds.
        """
        if timestamp < self._now:
            raise SimulationError(
                f"cannot rewind clock from t={self._now} to t={timestamp}"
            )
        self._now = float(timestamp)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by *delta* seconds (non-negative)."""
        if delta < 0:
            raise SimulationError(f"cannot advance clock by negative delta {delta}")
        self._now += float(delta)


@dataclass(order=True)
class _ScheduledEvent:
    when: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`Scheduler.call_at` to allow cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def when(self) -> float:
        """Timestamp at which the event will fire."""
        return self._event.when

    @property
    def label(self) -> str:
        """Human-readable label given at scheduling time."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True


class RepeatingHandle:
    """Stop handle for :meth:`Scheduler.every`, with timer metadata.

    Exposes the timer's *label* and *interval* so periodic work can be
    attributed per timer (``fleet-poll-batch`` vs ``poll:{agent_id}``)
    instead of globally, plus fire bookkeeping (:attr:`fires`,
    :attr:`last_fired_at`).  The handle doubles as the stop callable --
    ``handle()`` and ``handle.stop()`` are equivalent -- so existing
    callers that stored a plain ``stop`` function keep working.
    """

    def __init__(self, label: str, interval: float) -> None:
        self.label = label
        self.interval = interval
        self.fires = 0
        self.last_fired_at: float | None = None
        self._stopped = False
        self._handle: EventHandle | None = None

    @property
    def stopped(self) -> bool:
        """Whether the timer has been stopped."""
        return self._stopped

    def stop(self) -> None:
        """Prevent any further repetitions.  Idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    def __call__(self) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "stopped" if self._stopped else "active"
        return (
            f"RepeatingHandle(label={self.label!r}, "
            f"interval={self.interval}, fires={self.fires}, {state})"
        )


class Scheduler:
    """A discrete-event scheduler over a :class:`SimClock`.

    Callbacks are plain callables; a callback that needs to repeat simply
    reschedules itself.  The scheduler advances the shared clock to each
    event's timestamp before invoking it, so callbacks always observe
    ``clock.now`` equal to their scheduled time.
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[_ScheduledEvent] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def call_at(
        self, when: float, action: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Schedule *action* to run at absolute time *when*."""
        if when < self.clock.now:
            raise SimulationError(
                f"cannot schedule event '{label}' at t={when}; now is t={self.clock.now}"
            )
        event = _ScheduledEvent(when=when, seq=next(self._seq), action=action, label=label)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def call_in(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Schedule *action* to run *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event '{label}' {delay}s in the past")
        return self.call_at(self.clock.now + delay, action, label=label)

    def every(
        self,
        interval: float,
        action: Callable[[], None],
        label: str = "",
        start: float | None = None,
    ) -> RepeatingHandle:
        """Schedule *action* to repeat every *interval* seconds.

        Returns a :class:`RepeatingHandle` carrying the timer's label
        and interval; calling it (or its ``stop()``) prevents any
        further repetitions (the currently scheduled one is cancelled
        too).
        """
        if interval <= 0:
            raise SimulationError(f"repeat interval must be positive, got {interval}")
        handle = RepeatingHandle(label=label, interval=interval)

        def tick() -> None:
            if handle.stopped:
                return
            handle.fires += 1
            handle.last_fired_at = self.clock.now
            action()
            if not handle.stopped:
                handle._handle = self.call_in(interval, tick, label=label)

        first = self.clock.now + interval if start is None else start
        handle._handle = self.call_at(first, tick, label=label)
        return handle

    def step(self) -> bool:
        """Run the next pending event.  Returns ``False`` when idle."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.when)
            event.action()
            return True
        return False

    def run_until(self, deadline: float) -> int:
        """Run every event scheduled at or before *deadline*.

        The clock finishes exactly at *deadline* even if the last event
        fires earlier.  Returns the number of events dispatched.
        """
        dispatched = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.when > deadline:
                break
            self.step()
            dispatched += 1
        if deadline > self.clock.now:
            self.clock.advance_to(deadline)
        return dispatched

    def run_for(self, duration: float) -> int:
        """Run every event in the next *duration* seconds."""
        return self.run_until(self.clock.now + duration)

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the event queue completely (bounded by *max_events*)."""
        dispatched = 0
        while self.step():
            dispatched += 1
            if dispatched >= max_events:
                raise SimulationError(
                    f"scheduler did not quiesce after {max_events} events; "
                    "a periodic task is probably never stopped"
                )
        return dispatched
