"""Formatting helpers for sizes, durations and simple statistics.

The analysis layer renders the paper's tables in ASCII; these helpers
keep formatting consistent (the paper reports "0.16 MB", "2.36 minutes",
means with standard deviations, and so on).
"""

from __future__ import annotations

import math
from typing import Iterable


def format_bytes(num_bytes: float) -> str:
    """Render a byte count the way the paper does (MB with 2 decimals)."""
    if num_bytes < 1024:
        return f"{num_bytes:.0f} B"
    if num_bytes < 1024**2:
        return f"{num_bytes / 1024:.1f} KB"
    if num_bytes < 1024**3:
        return f"{num_bytes / 1024 ** 2:.2f} MB"
    return f"{num_bytes / 1024 ** 3:.2f} GB"


def format_minutes(seconds: float) -> str:
    """Render a duration in minutes with 2 decimals, as in Fig 3/Table I."""
    return f"{seconds / 60.0:.2f} min"


def format_duration(seconds: float) -> str:
    """Render a duration in the largest natural unit."""
    if seconds < 1:
        return f"{seconds * 1000:.0f} ms"
    if seconds < 120:
        return f"{seconds:.1f} s"
    if seconds < 7200:
        return f"{seconds / 60:.1f} min"
    if seconds < 2 * 86400:
        return f"{seconds / 3600:.1f} h"
    return f"{seconds / 86400:.1f} d"


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    items = list(values)
    if not items:
        return 0.0
    return sum(items) / len(items)


def stddev(values: Iterable[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two items."""
    items = list(values)
    if len(items) < 2:
        return 0.0
    mu = mean(items)
    return math.sqrt(sum((value - mu) ** 2 for value in items) / len(items))


def percentile(values: Iterable[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100])."""
    items = sorted(values)
    if not items:
        return 0.0
    if len(items) == 1:
        return items[0]
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    rank = (q / 100.0) * (len(items) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return items[low]
    weight = rank - low
    # Monotone form: lo*(1-w)+hi*w underflows to 0.0 for subnormal
    # inputs (e.g. 5e-324), breaking min <= p50 <= max.
    return items[low] + weight * (items[high] - items[low])


def summarize(values: Iterable[float]) -> dict[str, float]:
    """Mean/std/min/max/median summary used throughout the benches."""
    items = list(values)
    if not items:
        return {"n": 0, "mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0, "median": 0.0}
    return {
        "n": len(items),
        "mean": mean(items),
        "std": stddev(items),
        "min": min(items),
        "max": max(items),
        "median": percentile(items, 50),
    }
