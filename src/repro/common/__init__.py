"""Shared infrastructure for the reproduction.

This subpackage contains primitives used by every other layer of the
system:

* :mod:`repro.common.errors` -- the exception hierarchy.
* :mod:`repro.common.clock` -- the simulated clock and discrete-event
  scheduler that every "continuous" process in the reproduction runs on.
* :mod:`repro.common.rng` -- seeded, named random streams so that every
  experiment is reproducible bit-for-bit.
* :mod:`repro.common.hexutil` -- digest/hex helpers shared by the TPM,
  IMA, and policy layers.
* :mod:`repro.common.events` -- a structured, queryable event log used to
  record what happened during a simulation run.
* :mod:`repro.common.units` -- human-readable formatting of sizes and
  durations used by the analysis layer.
"""

from repro.common.clock import Scheduler, SimClock
from repro.common.errors import ReproError
from repro.common.events import EventLog, EventRecord
from repro.common.rng import SeededRng

__all__ = [
    "EventLog",
    "EventRecord",
    "ReproError",
    "Scheduler",
    "SeededRng",
    "SimClock",
]
