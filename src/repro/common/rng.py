"""Seeded, named random streams.

Every stochastic choice in the reproduction -- how many packages an
Ubuntu release day contains, which files a ransomware sample encrypts,
jitter on generator runtimes -- draws from a :class:`SeededRng`.  A
single experiment seed fans out into independent named streams so that
adding a draw to one subsystem does not perturb the sequences seen by
another (the classic "seed hygiene" problem in simulation studies).
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class SeededRng:
    """A deterministic random stream with cheap named sub-streams.

    The stream is a thin wrapper over :class:`random.Random`; the value
    added is :meth:`fork`, which derives an independent child stream
    from a (seed, name) pair via SHA-256 so that streams are stable
    under refactoring.
    """

    def __init__(self, seed: int | str = 0, _material: bytes | None = None) -> None:
        if _material is None:
            _material = hashlib.sha256(repr(seed).encode("utf-8")).digest()
        self._material = _material
        self._random = random.Random(int.from_bytes(_material[:16], "big"))
        self.seed_repr = repr(seed)

    def fork(self, name: str) -> "SeededRng":
        """Derive an independent child stream identified by *name*."""
        material = hashlib.sha256(self._material + b"/" + name.encode("utf-8")).digest()
        child = SeededRng(_material=material, seed=f"{self.seed_repr}/{name}")
        return child

    # -- persistence ---------------------------------------------------

    def getstate(self) -> tuple:
        """The underlying generator state (for durable snapshots)."""
        return self._random.getstate()

    def setstate(self, state: tuple) -> None:
        """Restore a state captured by :meth:`getstate`.

        The snapshot layer round-trips the state through JSON, which
        turns the inner tuple into a list; normalise either shape.
        """
        version, internal, gauss_next = state
        self._random.setstate((version, tuple(internal), gauss_next))

    # -- draws ---------------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly choose one element of *seq*."""
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """Choose *k* distinct elements of *seq*."""
        return self._random.sample(seq, k)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle *items* in place."""
        self._random.shuffle(items)

    def expovariate(self, rate: float) -> float:
        """Exponential draw with the given rate (1/mean)."""
        return self._random.expovariate(rate)

    def lognormal(self, mu: float, sigma: float) -> float:
        """Log-normal draw with underlying normal (mu, sigma)."""
        return self._random.lognormvariate(mu, sigma)

    def poisson(self, mean: float) -> int:
        """Poisson draw via inversion (adequate for the small means used here)."""
        if mean <= 0:
            return 0
        if mean > 700:
            # Normal approximation to avoid exp underflow for huge means.
            value = self._random.gauss(mean, mean**0.5)
            return max(0, round(value))
        import math

        threshold = math.exp(-mean)
        count = 0
        product = self._random.random()
        while product > threshold:
            count += 1
            product *= self._random.random()
        return count

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        return self._random.random() < probability

    def token(self, nbytes: int = 16) -> bytes:
        """*nbytes* of deterministic pseudo-random bytes."""
        return self._random.randbytes(nbytes)

    def hexid(self, nbytes: int = 8) -> str:
        """A deterministic hex identifier string."""
        return self.token(nbytes).hex()
