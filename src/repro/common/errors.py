"""Exception hierarchy for the reproduction.

Every error raised by the library derives from :class:`ReproError` so
that callers can catch library failures without catching unrelated
programming errors.  Each layer of the system has its own subtree; the
classes here are only the ones shared across layers -- layer-specific
errors (for example quote verification failures) live next to the code
that raises them but still inherit from these bases.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A component was configured inconsistently.

    Raised, for example, when a Keylime verifier is started without a
    runtime policy, or when a mirror is asked to sync repositories it
    was not configured to carry.
    """


class SimulationError(ReproError):
    """The simulation was driven into an impossible state.

    These indicate bugs in the *calling* code (scheduling an event in
    the past, running a machine that was powered off) rather than
    behaviours of the modelled system.
    """


class IntegrityError(ReproError):
    """Cryptographic or log integrity verification failed.

    Base class for quote-signature failures, IMA log/PCR mismatches and
    policy digest mismatches.  Carries an optional ``context`` mapping
    with structured details for the analysis layer.
    """

    def __init__(self, message: str, context: dict | None = None) -> None:
        super().__init__(message)
        self.context: dict = dict(context or {})


class TransientTransportError(ReproError):
    """The wire between verifier and agent failed, not the evidence.

    Raised for injected (or modelled) network faults -- dropped
    messages, delays past the per-attempt timeout, partitions.  This is
    the *retryable* half of the fault taxonomy: a transient transport
    error says nothing about the prover's integrity, so the verifier's
    retry policy may re-issue the round.  Contrast
    :class:`IntegrityError`, which is terminal for the round: corrupt
    or replayed evidence must never be retried away (a retry would let
    an attacker disguise tampering as packet loss).

    ``kind`` names the fault family (``drop``/``delay``/``partition``/
    ``...``) for metrics and event details.
    """

    def __init__(self, message: str, kind: str = "transport") -> None:
        super().__init__(message)
        self.kind = kind


class NotFoundError(ReproError):
    """A named entity (file, package, agent, policy entry) is missing."""


class StateError(ReproError):
    """An operation was attempted in a state that does not allow it.

    For example: quoting a TPM that has no attestation key loaded, or
    executing a file whose execute bit is not set.
    """
