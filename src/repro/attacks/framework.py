"""The attack framework: samples, modes, reports, persistence.

An attack is a sequence of ordinary machine operations -- write a file,
set its exec bit, execute it, load a module, move things around.  The
framework records what the attack did (:class:`AttackReport`) so the
experiment harness can later re-trigger the attack's *persistence*
after a reboot ("detectable upon reboot" scenarios) and so tests can
assert on the artifact set.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from enum import Enum

from repro.attacks.problems import Problem
from repro.kernelsim.kernel import ExecResult, Machine


class AttackMode(Enum):
    """Whether the attacker knows Keylime is watching."""

    BASIC = "basic"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class PersistenceSpec:
    """How the attack relaunches itself after a reboot.

    ``method`` is one of:

    * ``"exec"`` -- direct execution of ``path``;
    * ``"module"`` -- ``insmod path``;
    * ``"interpreter"`` -- ``interpreter path`` (P5-style invocation);
    * ``"inline"`` -- ``interpreter -c <code>`` (no file at all).
    """

    method: str
    path: str
    interpreter: str | None = None
    code: str | None = None

    def relaunch(self, machine: Machine) -> ExecResult | None:
        """Re-trigger the persistence on (possibly rebooted) *machine*."""
        if self.method == "exec":
            if not machine.vfs.exists(self.path):
                return None
            return machine.exec_file(self.path)
        if self.method == "module":
            if not machine.vfs.exists(self.path):
                return None
            return machine.load_kernel_module(self.path)
        if self.method == "interpreter":
            if not machine.vfs.exists(self.path):
                return None
            assert self.interpreter is not None
            return machine.run_with_interpreter(self.interpreter, self.path)
        if self.method == "inline":
            assert self.interpreter is not None and self.code is not None
            return machine.run_interpreter_inline(self.interpreter, self.code)
        raise ValueError(f"unknown persistence method {self.method!r}")


@dataclass
class AttackReport:
    """What one attack run did to the machine."""

    name: str
    mode: AttackMode
    artifacts: list[str] = field(default_factory=list)
    executions: list[ExecResult] = field(default_factory=list)
    persistence: list[PersistenceSpec] = field(default_factory=list)
    problems_used: tuple[Problem, ...] = ()
    notes: list[str] = field(default_factory=list)
    #: P2 bait: benign-looking files planted to trip a false positive.
    #: An alert pointing at a decoy is an FP from the operator's point
    #: of view, not a detection of the attack, so the experiment's
    #: detection metric excludes these paths.
    decoys: list[str] = field(default_factory=list)

    @property
    def measured_paths(self) -> set[str]:
        """Paths that actually produced IMA entries during the run."""
        paths: set[str] = set()
        for result in self.executions:
            for entry in result.entries:
                paths.add(entry.path)
        return paths


class AttackSample(abc.ABC):
    """Base class for the 8 samples.

    Subclasses define the metadata Table II reports and the two
    behaviours.  ``problems_exploitable`` is the row's dot set: which
    of P1-P5 this sample *can* leverage.
    """

    name: str = "attack"
    category: str = "generic"
    problems_exploitable: tuple[Problem, ...] = ()
    #: True when the sample ships scripts/Makefiles (P5-relevant).
    uses_scripts: bool = True

    def run(self, machine: Machine, mode: AttackMode) -> AttackReport:
        """Execute the sample in the given mode."""
        report = AttackReport(name=self.name, mode=mode)
        if mode is AttackMode.BASIC:
            self.run_basic(machine, report)
        else:
            self.run_adaptive(machine, report)
        return report

    @abc.abstractmethod
    def run_basic(self, machine: Machine, report: AttackReport) -> None:
        """Deploy as a Keylime-unaware attacker would."""

    @abc.abstractmethod
    def run_adaptive(self, machine: Machine, report: AttackReport) -> None:
        """Deploy exploiting P1-P5 to stay out of the attestation log."""

    # -- shared helpers ------------------------------------------------------

    def drop(
        self, machine: Machine, report: AttackReport, path: str, payload: bytes,
        executable: bool = True,
    ) -> None:
        """Write an attack artifact."""
        machine.install_file(path, payload, executable=executable)
        report.artifacts.append(path)

    def execute(self, machine: Machine, report: AttackReport, path: str) -> ExecResult:
        """Directly execute an artifact, recording the result."""
        result = machine.exec_file(path)
        report.executions.append(result)
        return result

    def payload(self, label: str) -> bytes:
        """Deterministic payload bytes for this sample."""
        return f"{self.name}:{label}".encode("utf-8") * 7


def all_attacks() -> list[AttackSample]:
    """The 8 samples in Table II's order."""
    from repro.attacks.botnets import Aoyama, Bashlite, Mirai, MortemQbot
    from repro.attacks.ransomware import AvosLocker
    from repro.attacks.rootkits import Diamorphine, Reptile, Vlany

    return [
        AvosLocker(),
        Diamorphine(),
        Reptile(),
        Vlany(),
        Mirai(),
        Bashlite(),
        MortemQbot(),
        Aoyama(),
    ]
