"""Ransomware: AvosLocker.

AvosLocker's Linux variant is a single statically linked binary: no
deployment scripts, no interpreter involvement (hence no P5 dot in
Table II).  The behavioural model: drop the locker, execute it, and
"encrypt" (overwrite) data files; persistence is a copy of the binary
that relaunches at boot.
"""

from __future__ import annotations

from repro.attacks.framework import AttackMode, AttackReport, AttackSample, PersistenceSpec
from repro.attacks.problems import Problem, p2_blind_verifier, p4_stage_move_run
from repro.kernelsim.kernel import Machine

#: Files the locker encrypts in the simulation.
_TARGET_FILES = (
    "/home/ubuntu/documents/report.odt",
    "/home/ubuntu/documents/ledger.xlsx",
    "/var/backups/db-dump.sql",
)


class AvosLocker(AttackSample):
    """The AvosLocker ransomware sample."""

    name = "AvosLocker"
    category = "ransomware"
    problems_exploitable = (
        Problem.P1_UNMONITORED_DIRS,
        Problem.P2_INCOMPLETE_LOG,
        Problem.P3_UNMONITORED_FILESYSTEMS,
        Problem.P4_NO_REEVALUATION,
    )
    uses_scripts = False  # binary-only: the one sample P5 cannot help

    def _encrypt_targets(self, machine: Machine, report: AttackReport) -> None:
        for target in _TARGET_FILES:
            if not machine.vfs.exists(target):
                machine.install_file(target, b"plaintext user data")
            original = machine.vfs.read_file(target)
            machine.vfs.write_file(target + ".avos", b"ENC:" + original)
            machine.vfs.unlink(target)
            report.notes.append(f"encrypted {target}")

    def run_basic(self, machine: Machine, report: AttackReport) -> None:
        """Keylime-unaware deployment: locker dropped into /usr/bin.

        The unknown binary is executed from a monitored directory; its
        NOT_IN_POLICY measurement is what detects the attack.
        """
        locker = "/usr/bin/avoslocker"
        self.drop(machine, report, locker, self.payload("locker"))
        self.execute(machine, report, locker)
        self._encrypt_targets(machine, report)
        report.persistence.append(PersistenceSpec(method="exec", path=locker))

    def run_adaptive(self, machine: Machine, report: AttackReport) -> None:
        """Keylime-aware deployment: blind the verifier, stage via /tmp.

        P2 first (halt polling with a benign decoy), then P4: stage the
        locker in the excluded /tmp, move it into /usr/bin, and run it
        there without producing a single attributable log entry.
        """
        decoy = p2_blind_verifier(machine, decoy_name="avos-decoy")
        report.decoys.append(decoy)
        report.problems_used = (Problem.P2_INCOMPLETE_LOG, Problem.P4_NO_REEVALUATION)

        staged, destination, result = p4_stage_move_run(
            machine, "avoslocker", self.payload("locker"), "/usr/bin/avoslocker"
        )
        report.artifacts.append(staged)
        report.artifacts.append(destination)
        report.executions.append(result)
        self._encrypt_targets(machine, report)
        report.persistence.append(PersistenceSpec(method="exec", path=destination))
