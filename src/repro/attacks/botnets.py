"""Botnet command-and-control: Mirai, BASHLITE, Mortem-qBot, Aoyama.

The four C&C samples differ in exactly the dimensions the paper's
problems care about:

* **Mirai** -- drops an ELF bot binary; adaptively it executes from a
  tmpfs filesystem (P3), producing *no* IMA entry at all.
* **BASHLITE** -- shell-script loader plus an ELF bot; adaptively the
  loader runs via ``bash loader.sh`` (P5) and keeps the bot in /tmp (P1).
* **Mortem-qBot** -- the sample whose deployment script's use of /tmp
  as a working directory led the authors to P1 in the first place.
* **Aoyama** -- implemented entirely in Python.  Adaptively it feeds
  its payload to the interpreter inline, which no file-based
  measurement -- including the M4 mitigation -- can observe; it is the
  one sample that stays undetected even after all recommended fixes
  (the ✗ in Table II's mitigation column).
"""

from __future__ import annotations

from repro.attacks.framework import AttackMode, AttackReport, AttackSample, PersistenceSpec
from repro.attacks.problems import (
    P1_STAGING_DIR,
    P3_STAGING_DIR,
    Problem,
    p1_stage_and_run,
    p3_stage_and_run,
    p5_run_inline,
    p5_run_script,
)
from repro.kernelsim.kernel import Machine

_ALL_PROBLEMS = (
    Problem.P1_UNMONITORED_DIRS,
    Problem.P2_INCOMPLETE_LOG,
    Problem.P3_UNMONITORED_FILESYSTEMS,
    Problem.P4_NO_REEVALUATION,
    Problem.P5_SCRIPT_INTERPRETERS,
)


class Mirai(AttackSample):
    """Mirai: self-propagating IoT botnet, ELF bot binary."""

    name = "Mirai"
    category = "botnet"
    problems_exploitable = _ALL_PROBLEMS
    uses_scripts = True

    def run_basic(self, machine: Machine, report: AttackReport) -> None:
        """wget the bot into /usr/bin and run it (measured, detected)."""
        machine.exec_file("/usr/bin/wget")  # the downloader itself is in-policy
        bot = "/usr/bin/dvrHelper"  # Mirai's historical drop name
        self.drop(machine, report, bot, self.payload("bot"))
        self.execute(machine, report, bot)
        report.persistence.append(PersistenceSpec(method="exec", path=bot))

    def run_adaptive(self, machine: Machine, report: AttackReport) -> None:
        """Run the bot from tmpfs (P3): IMA never produces an entry."""
        report.problems_used = (Problem.P3_UNMONITORED_FILESYSTEMS,)
        machine.exec_file("/usr/bin/wget")
        path, result = p3_stage_and_run(machine, "dvrHelper", self.payload("bot"))
        report.artifacts.append(path)
        report.executions.append(result)
        report.persistence.append(PersistenceSpec(method="exec", path=path))


class Bashlite(AttackSample):
    """BASHLITE/Gafgyt: shell loader + ELF bot."""

    name = "BASHLITE"
    category = "botnet"
    problems_exploitable = _ALL_PROBLEMS
    uses_scripts = True

    def run_basic(self, machine: Machine, report: AttackReport) -> None:
        """Loader installed executable in /usr/bin and run directly."""
        loader = "/usr/bin/gafgyt-loader.sh"
        self.drop(machine, report, loader, b"#!/bin/sh\nwget bot && ./bot\n")
        result = machine.exec_shebang_script(loader, "/bin/sh")
        report.executions.append(result)
        bot = "/usr/bin/gafgyt"
        self.drop(machine, report, bot, self.payload("bot"))
        self.execute(machine, report, bot)
        report.persistence.append(PersistenceSpec(method="exec", path=bot))

    def run_adaptive(self, machine: Machine, report: AttackReport) -> None:
        """Loader via ``bash loader.sh`` (P5); bot lives in /tmp (P1)."""
        report.problems_used = (
            Problem.P1_UNMONITORED_DIRS,
            Problem.P5_SCRIPT_INTERPRETERS,
        )
        loader_result = p5_run_script(
            machine,
            f"{P1_STAGING_DIR}/gafgyt-loader.sh",
            b"#!/bin/bash\nwget bot -O /tmp/gafgyt && /tmp/gafgyt\n",
            interpreter="/bin/bash",
        )
        report.artifacts.append(f"{P1_STAGING_DIR}/gafgyt-loader.sh")
        report.executions.append(loader_result)
        path, result = p1_stage_and_run(machine, "gafgyt", self.payload("bot"))
        report.artifacts.append(path)
        report.executions.append(result)
        report.persistence.append(PersistenceSpec(method="exec", path=path))


class MortemQbot(AttackSample):
    """Mortem-qBot: the sample whose /tmp working directory exposed P1."""

    name = "Mortem-qBot"
    category = "botnet"
    problems_exploitable = _ALL_PROBLEMS
    uses_scripts = True

    def run_basic(self, machine: Machine, report: AttackReport) -> None:
        """Deployment script stages in /tmp but installs the bot to /usr.

        The staging itself is invisible (P1 -- this is how the authors
        found the problem), but the installed bot executing from
        /usr/sbin is measured and detected.
        """
        staged, stage_result = p1_stage_and_run(
            machine, "qbot-build", self.payload("builder")
        )
        report.artifacts.append(staged)
        report.executions.append(stage_result)
        report.notes.append("staging in /tmp produced no verifier-visible entry")
        bot = "/usr/sbin/qbotd"
        self.drop(machine, report, bot, self.payload("bot"))
        self.execute(machine, report, bot)
        report.persistence.append(PersistenceSpec(method="exec", path=bot))

    def run_adaptive(self, machine: Machine, report: AttackReport) -> None:
        """Never leave /tmp: build, deploy and run under the exclusion."""
        report.problems_used = (
            Problem.P1_UNMONITORED_DIRS,
            Problem.P5_SCRIPT_INTERPRETERS,
        )
        deploy = p5_run_script(
            machine,
            f"{P1_STAGING_DIR}/qbot-deploy.sh",
            b"#!/bin/bash\ncd /tmp && tar xf qbot.tgz && make && ./qbotd\n",
            interpreter="/bin/bash",
        )
        report.executions.append(deploy)
        machine.exec_file("/usr/bin/tar")
        machine.exec_file("/usr/bin/make")
        path, result = p1_stage_and_run(machine, "qbotd", self.payload("bot"))
        report.artifacts.append(path)
        report.executions.append(result)
        report.persistence.append(PersistenceSpec(method="exec", path=path))


class Aoyama(AttackSample):
    """Aoyama: a botnet client implemented entirely in Python."""

    name = "Aoyama"
    category = "botnet"
    problems_exploitable = (
        Problem.P1_UNMONITORED_DIRS,
        Problem.P2_INCOMPLETE_LOG,
        Problem.P3_UNMONITORED_FILESYSTEMS,
        Problem.P5_SCRIPT_INTERPRETERS,
    )
    uses_scripts = True

    _BOT_CODE = "import socket\n# ... aoyama C&C loop ...\n"

    def run_basic(self, machine: Machine, report: AttackReport) -> None:
        """Bot script dropped executable and run via shebang (detected)."""
        bot = "/usr/local/lib/aoyama.py"
        self.drop(machine, report, bot, b"#!/usr/bin/python3\n" + self._BOT_CODE.encode())
        # /usr/local is excluded by the IBM-style policy, so the basic
        # sample also drops a launcher into a monitored path, which is
        # what gets it caught.
        launcher = "/usr/bin/aoyama-launcher"
        self.drop(machine, report, launcher, self.payload("launcher"))
        self.execute(machine, report, launcher)
        result = machine.exec_shebang_script(bot, "/usr/bin/python3")
        report.executions.append(result)
        report.persistence.append(PersistenceSpec(method="exec", path=launcher))

    def run_adaptive(self, machine: Machine, report: AttackReport) -> None:
        """Pure-interpreter execution: nothing for IMA to measure.

        The payload is piped to ``python3 -c`` -- no file ever crosses
        an exec boundary, so the attack evades even a machine with
        script execution control (M4) enabled.  Re-infection at boot
        re-fetches the payload the same way.
        """
        report.problems_used = (Problem.P5_SCRIPT_INTERPRETERS,)
        result = p5_run_inline(machine, self._BOT_CODE, interpreter="/usr/bin/python3")
        report.executions.append(result)
        report.persistence.append(
            PersistenceSpec(
                method="inline", path="", interpreter="/usr/bin/python3",
                code=self._BOT_CODE,
            )
        )
