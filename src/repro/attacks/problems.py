"""The five problems (P1-P5) as reusable exploit primitives.

Each primitive performs the machine operations that exploit one
problem; the *evasion* itself is an emergent property of the kernel and
Keylime models (IMA's cache and fsmagic rules, the policy's excludes,
the verifier's halt-on-failure), not of anything in this module.

| Problem | Layer   | Mechanism                                              |
|---------|---------|--------------------------------------------------------|
| P1      | Keylime | policy excludes directories (``/tmp``)                 |
| P2      | Keylime | verifier halts on first failure -> incomplete log      |
| P3      | IMA     | fsmagic rules exclude whole filesystems (tmpfs, proc)  |
| P4      | IMA     | measure-once-per-inode -> move after staging           |
| P5      | IMA     | interpreter invocation measures interpreter, not script|
"""

from __future__ import annotations

from enum import Enum

from repro.kernelsim.kernel import ExecResult, Machine


class Problem(Enum):
    """The paper's P1-P5."""

    P1_UNMONITORED_DIRS = "P1"
    P2_INCOMPLETE_LOG = "P2"
    P3_UNMONITORED_FILESYSTEMS = "P3"
    P4_NO_REEVALUATION = "P4"
    P5_SCRIPT_INTERPRETERS = "P5"


#: Directory the study's policy excludes (P1).  It is on the root ext4
#: filesystem, so IMA *does* measure files here -- under a path Keylime
#: then ignores.
P1_STAGING_DIR = "/tmp"

#: A tmpfs location (P3).  IMA's fsmagic rules skip the whole
#: filesystem, so nothing executed from here is ever measured.
P3_STAGING_DIR = "/dev/shm"


def p1_stage_and_run(
    machine: Machine, name: str, payload: bytes
) -> tuple[str, ExecResult]:
    """P1: deploy and execute inside the policy-excluded ``/tmp``.

    IMA measures the execution (``/tmp`` is ext4), but the recorded
    path matches the policy's exclude regex, so the verifier skips it.
    """
    path = f"{P1_STAGING_DIR}/{name}"
    machine.install_file(path, payload, executable=True)
    return path, machine.exec_file(path)


def p2_blind_verifier(machine: Machine, decoy_name: str = "decoy-helper") -> str:
    """P2: trip a self-inflicted false positive to halt attestation.

    The attacker drops a *benign* unknown executable in a monitored
    directory and runs it.  The verifier sees NOT_IN_POLICY, marks the
    agent failed and stops polling -- everything the attacker does
    afterwards lands in a log nobody reads.
    """
    path = f"/usr/bin/{decoy_name}"
    machine.install_file(path, b"#!/bin/sh\necho harmless\n", executable=True)
    machine.exec_file(path)
    return path


def p3_stage_and_run(
    machine: Machine, name: str, payload: bytes
) -> tuple[str, ExecResult]:
    """P3: deploy and execute from a tmpfs filesystem.

    The fsmagic ``dont_measure`` rule means IMA produces no entry at
    all; even a perfect Keylime policy sees nothing.
    """
    path = f"{P3_STAGING_DIR}/{name}"
    machine.install_file(path, payload, executable=True)
    return path, machine.exec_file(path)


def p4_stage_move_run(
    machine: Machine, name: str, payload: bytes, destination: str
) -> tuple[str, str, ExecResult]:
    """P4: stage in ``/tmp``, execute once, then move and re-execute.

    The staging execution is measured under the Keylime-excluded
    ``/tmp`` path.  The move stays within the root filesystem, so the
    inode -- and IMA's cache entry -- survive; the execution at the
    destination produces *no new measurement* and the destination path
    never appears in the log.
    """
    staged = f"{P1_STAGING_DIR}/{name}"
    machine.install_file(staged, payload, executable=True)
    machine.exec_file(staged)  # measured as /tmp/<name>: excluded by policy
    machine.move_file(staged, destination)
    result = machine.exec_file(destination)  # cache hit: silent
    return staged, destination, result


def p5_run_script(
    machine: Machine,
    script_path: str,
    script_body: bytes,
    interpreter: str = "/usr/bin/python3",
) -> ExecResult:
    """P5: invoke a script through its interpreter.

    ``python ./script.py`` execs only the interpreter; the script file
    is opened as data and IMA never sees it.  The script needs no exec
    bit and can live in a fully monitored directory.
    """
    machine.install_file(script_path, script_body, executable=False)
    return machine.run_with_interpreter(interpreter, script_path)


def p5_run_inline(
    machine: Machine, code: str, interpreter: str = "/usr/bin/python3"
) -> ExecResult:
    """P5 variant that defeats even script execution control (M4).

    The payload arrives via ``-c``/stdin -- no file is opened for
    execution, so there is nothing for an opted-in interpreter to flag.
    """
    return machine.run_interpreter_inline(interpreter, code)
