"""The false-negative study's attack corpus.

Behavioural re-implementations of the paper's 8 samples across three
categories (Table II):

* **Ransomware** -- AvosLocker (:mod:`repro.attacks.ransomware`).
* **Rootkits** -- Diamorphine, Reptile, Vlany
  (:mod:`repro.attacks.rootkits`).
* **Botnet C&C** -- Mirai, BASHLITE, Mortem-qBot, Aoyama
  (:mod:`repro.attacks.botnets`).

Each sample runs in two modes (:class:`AttackMode`):

* ``BASIC`` -- the attacker is unaware of Keylime and deploys normally
  (all 8 are detected, per the paper);
* ``ADAPTIVE`` -- the attacker exploits the discovered problems P1-P5
  (:mod:`repro.attacks.problems`) and evades in all 8 cases.

Detection is *never* decided inside this package: attacks only perform
filesystem/exec operations on the machine; whether Keylime notices is
determined by the verifier exactly as in production.
"""

from repro.attacks.botnets import Aoyama, Bashlite, Mirai, MortemQbot
from repro.attacks.framework import (
    AttackMode,
    AttackReport,
    AttackSample,
    PersistenceSpec,
    all_attacks,
)
from repro.attacks.problems import Problem
from repro.attacks.ransomware import AvosLocker
from repro.attacks.rootkits import Diamorphine, Reptile, Vlany

__all__ = [
    "Aoyama",
    "AttackMode",
    "AttackReport",
    "AttackSample",
    "AvosLocker",
    "Bashlite",
    "Diamorphine",
    "Mirai",
    "MortemQbot",
    "PersistenceSpec",
    "Problem",
    "Reptile",
    "Vlany",
    "all_attacks",
]
