"""Rootkits: Diamorphine, Reptile (LKM) and Vlany (LD_PRELOAD).

All three ship as source that must be built on the victim (Makefiles,
helper scripts -- the P5 dots), then loaded: Diamorphine and Reptile as
kernel modules (MODULE_CHECK hook), Vlany as a preloaded shared library
(FILE_MMAP hook).  The paper's P4 discovery came from exactly these
samples: their installers stage under ``/tmp`` and ``mv`` the built
artifact into ``/usr``/``/lib``, which IMA never re-measures.
"""

from __future__ import annotations

from repro.attacks.framework import AttackMode, AttackReport, AttackSample, PersistenceSpec
from repro.attacks.problems import (
    P1_STAGING_DIR,
    Problem,
    p5_run_script,
)
from repro.kernelsim.kernel import Machine

_ALL_PROBLEMS = (
    Problem.P1_UNMONITORED_DIRS,
    Problem.P2_INCOMPLETE_LOG,
    Problem.P3_UNMONITORED_FILESYSTEMS,
    Problem.P4_NO_REEVALUATION,
    Problem.P5_SCRIPT_INTERPRETERS,
)


class _LkmRootkit(AttackSample):
    """Shared behaviour of the two loadable-kernel-module rootkits."""

    category = "rootkit"
    problems_exploitable = _ALL_PROBLEMS
    uses_scripts = True
    module_name = "rootkit.ko"

    def _compile(self, machine: Machine, report: AttackReport, workdir: str) -> str:
        """Unpack sources and 'make' the module in *workdir*."""
        source = f"{workdir}/{self.name.lower()}/module.c"
        machine.install_file(source, self.payload("source"), executable=False)
        report.artifacts.append(source)
        # make invokes gcc -- both are in-policy system binaries.
        machine.exec_file("/usr/bin/make")
        machine.exec_file("/usr/bin/gcc")
        built = f"{workdir}/{self.name.lower()}/{self.module_name}"
        machine.install_file(built, self.payload("ko"), executable=True)
        report.artifacts.append(built)
        return built

    def run_basic(self, machine: Machine, report: AttackReport) -> None:
        """Build under /usr/src and insmod from there (measured, detected)."""
        built = self._compile(machine, report, "/usr/src")
        result = machine.load_kernel_module(built)
        report.executions.append(result)
        report.persistence.append(PersistenceSpec(method="module", path=built))

    def run_adaptive(self, machine: Machine, report: AttackReport) -> None:
        """Build under /tmp and insmod straight from it (P1 + P5).

        The module *is* measured by IMA (MODULE_CHECK, /tmp is ext4),
        but its recorded path falls under the policy's /tmp exclude.
        The deployment script runs through bash, so even its activity
        is invisible (P5).
        """
        report.problems_used = (
            Problem.P1_UNMONITORED_DIRS,
            Problem.P5_SCRIPT_INTERPRETERS,
        )
        deploy = p5_run_script(
            machine,
            f"{P1_STAGING_DIR}/{self.name.lower()}-setup.sh",
            b"#!/bin/bash\nmake && insmod " + self.module_name.encode() + b"\n",
            interpreter="/bin/bash",
        )
        report.executions.append(deploy)
        built = self._compile(machine, report, P1_STAGING_DIR)
        result = machine.load_kernel_module(built)
        report.executions.append(result)
        report.persistence.append(PersistenceSpec(method="module", path=built))


class Diamorphine(_LkmRootkit):
    """Diamorphine: the classic syscall-table LKM rootkit."""

    name = "Diamorphine"
    module_name = "diamorphine.ko"


class Reptile(_LkmRootkit):
    """Reptile: khook-based LKM rootkit with userland components."""

    name = "Reptile"
    module_name = "reptile.ko"

    def run_basic(self, machine: Machine, report: AttackReport) -> None:
        """Reptile also installs a userland client next to the module."""
        super().run_basic(machine, report)
        client = "/usr/bin/reptile_cmd"
        self.drop(machine, report, client, self.payload("client"))
        self.execute(machine, report, client)


class Vlany(AttackSample):
    """Vlany: an LD_PRELOAD (shared library) rootkit.

    The library is injected into every dynamically linked process via
    ``/etc/ld.so.preload``; the load is a PROT_EXEC mmap, so IMA's
    FILE_MMAP hook measures the library -- once per inode (P4).
    """

    name = "Vlany"
    category = "rootkit"
    problems_exploitable = _ALL_PROBLEMS
    uses_scripts = True

    def _preload(self, machine: Machine, report: AttackReport, library: str) -> None:
        machine.install_file("/etc/ld.so.preload", library.encode() + b"\n")
        report.artifacts.append("/etc/ld.so.preload")
        # ld.so maps the preloaded library into the next process start.
        report.executions.append(machine.mmap_library(library))

    def run_basic(self, machine: Machine, report: AttackReport) -> None:
        """Install the library directly under /lib (measured, detected)."""
        library = "/lib/x86_64-linux-gnu/libselinux.so.9"  # typosquatted name
        self.drop(machine, report, library, self.payload("so"))
        self._preload(machine, report, library)
        report.persistence.append(PersistenceSpec(method="exec", path=library))

    def run_adaptive(self, machine: Machine, report: AttackReport) -> None:
        """Stage in /tmp, mmap once there, then move under /lib (P4).

        The install script (bash -- P5) first loads the library from
        /tmp (measured under the excluded path), then moves it to its
        final home; subsequent loads hit IMA's cache and are silent.
        """
        report.problems_used = (
            Problem.P1_UNMONITORED_DIRS,
            Problem.P4_NO_REEVALUATION,
            Problem.P5_SCRIPT_INTERPRETERS,
        )
        deploy = p5_run_script(
            machine,
            f"{P1_STAGING_DIR}/vlany-install.sh",
            b"#!/bin/bash\ncp vlany.so /lib && echo /lib/vlany.so > /etc/ld.so.preload\n",
            interpreter="/bin/bash",
        )
        report.executions.append(deploy)

        staged = f"{P1_STAGING_DIR}/vlany.so"
        machine.install_file(staged, self.payload("so"), executable=True)
        report.artifacts.append(staged)
        self._preload(machine, report, staged)  # measured under /tmp: excluded

        library = "/lib/x86_64-linux-gnu/libselinux.so.9"
        machine.move_file(staged, library)
        report.artifacts.append(library)
        self._preload(machine, report, library)  # cache hit: no entry
        report.persistence.append(PersistenceSpec(method="exec", path=library))
