"""E7: the attack detection matrix (Table II, Section IV).

For every sample x mode x ruleset the harness builds a *fresh* testbed
(the paper re-images the VM between attacks), lets attestation reach a
clean steady state, runs the attack, and then decides detection the
only honest way: **did the verifier record a policy failure pointing at
one of the attack's artifacts?**  Alerts caused by the attacker's P2
decoys are false positives from the operator's point of view and do
not count as detection.

Rulesets:

* ``stock`` -- Keylime and IMA as shipped (halt-on-failure, the
  documented excludes).  Expected: basic 8/8 detected, adaptive 0/8.
* ``mitigated`` -- M1-M4 applied.  Expected: adaptive 7/8 detected
  (live or on the post-reboot fresh attestation); Aoyama evades via
  inline interpreter execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.framework import AttackMode, AttackReport, AttackSample, all_attacks
from repro.experiments.testbed import Testbed, TestbedConfig, build_testbed
from repro.keylime.verifier import FailureKind
from repro.mitigations import apply_all


@dataclass(frozen=True)
class AttackTrial:
    """One cell group of Table II."""

    name: str
    category: str
    mode: AttackMode
    ruleset: str
    detected_live: bool
    detected_after_reboot: bool
    failing_paths: tuple[str, ...]
    problems_used: tuple[str, ...]

    @property
    def detected(self) -> bool:
        """Detected at any point (live or on fresh attestation)."""
        return self.detected_live or self.detected_after_reboot


@dataclass
class FnMatrixResult:
    """All trials of one matrix run."""

    ruleset: str
    trials: list[AttackTrial] = field(default_factory=list)

    def trial(self, name: str, mode: AttackMode) -> AttackTrial:
        """Look up one sample's trial."""
        for trial in self.trials:
            if trial.name == name and trial.mode is mode:
                return trial
        raise KeyError(f"no trial for {name} in mode {mode}")

    def detected_count(self, mode: AttackMode) -> int:
        """How many samples were detected in the given mode."""
        return sum(1 for t in self.trials if t.mode is mode and t.detected)

    def total(self, mode: AttackMode) -> int:
        """How many samples ran in the given mode."""
        return sum(1 for t in self.trials if t.mode is mode)


def _attack_failures(testbed: Testbed, report: AttackReport, since: float) -> list[str]:
    """Paths of policy failures attributable to the attack."""
    interesting = set(report.artifacts) - set(report.decoys)
    paths = []
    for failure in testbed.verifier.failures_of(testbed.agent_id):
        if failure.time < since or failure.kind is not FailureKind.POLICY:
            continue
        assert failure.policy_failure is not None
        if failure.policy_failure.path in interesting:
            paths.append(failure.policy_failure.path)
    return paths


def run_attack_trial(
    sample: AttackSample,
    mode: AttackMode,
    mitigated: bool,
    seed: int | str = 0,
    config: TestbedConfig | None = None,
    push: bool = False,
) -> AttackTrial:
    """Run one sample in one mode on a fresh testbed.

    With *push* the agent drives every round through the push exchange
    (negotiate -> submit -> verdict) instead of being polled; on the
    same seed the trial outcome must be identical either way.
    """
    if config is None:
        config = TestbedConfig(seed=f"{seed}/{sample.name}/{mode.value}")
    testbed = build_testbed(config)
    if mitigated:
        apply_all(testbed.machine, testbed.verifier, testbed.policy)

    def attest_round():
        return testbed.push_round() if push else testbed.poll()

    # Clean steady state: some benign activity, then a green round.
    testbed.workload.daily(5)
    baseline = attest_round()
    if baseline is None or not baseline.ok:
        raise RuntimeError(
            f"testbed not clean before attack {sample.name}: "
            f"{baseline.failures if baseline else 'round abandoned'}"
        )

    attack_start = testbed.scheduler.clock.now
    testbed.scheduler.clock.advance_by(60.0)
    report = sample.run(testbed.machine, mode)
    testbed.scheduler.clock.advance_by(60.0)

    # The verifier's next round (stock Keylime polls until it halts).
    attest_round()
    live_failures = _attack_failures(testbed, report, attack_start)

    # Fresh attestation after a reboot: persistence relaunches, the
    # operator has restarted attestation (resolving any decoy FP by
    # accepting the decoy into the policy, as ops teams do).
    for decoy in report.decoys:
        if testbed.machine.vfs.exists(decoy):
            from repro.common.hexutil import sha256_hex

            testbed.policy.add_digest(
                decoy, sha256_hex(testbed.machine.vfs.read_file(decoy))
            )
    testbed.machine.reboot()
    for spec in report.persistence:
        spec.relaunch(testbed.machine)
    testbed.verifier.restart_attestation(testbed.agent_id)
    testbed.scheduler.clock.advance_by(60.0)
    attest_round()
    reboot_failures = _attack_failures(
        testbed, report, attack_start + 120.0 + 60.0
    )

    return AttackTrial(
        name=sample.name,
        category=sample.category,
        mode=mode,
        ruleset="mitigated" if mitigated else "stock",
        detected_live=bool(live_failures),
        detected_after_reboot=bool(reboot_failures),
        failing_paths=tuple(sorted(set(live_failures + reboot_failures))),
        problems_used=tuple(problem.value for problem in report.problems_used),
    )


def run_attack_matrix(
    mitigated: bool = False,
    seed: int | str = 0,
    modes: tuple[AttackMode, ...] = (AttackMode.BASIC, AttackMode.ADAPTIVE),
    samples: list[AttackSample] | None = None,
    push: bool = False,
) -> FnMatrixResult:
    """Run the full matrix for one ruleset."""
    samples = samples if samples is not None else all_attacks()
    result = FnMatrixResult(ruleset="mitigated" if mitigated else "stock")
    for sample in samples:
        for mode in modes:
            result.trials.append(
                run_attack_trial(
                    sample, mode, mitigated=mitigated, seed=seed, push=push
                )
            )
    return result
