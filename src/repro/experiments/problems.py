"""E8: one focused demonstration per problem P1-P5 (Section IV-B).

Each demo builds a clean testbed, performs the *minimal* action that
exercises one problem, and reports what the measurement pipeline saw.
These are the falsifiable claims behind Table II: if a future change to
the kernel or Keylime models fixed (or broke) one of the mechanisms,
the corresponding demo's booleans would flip and the test suite would
catch it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.problems import (
    p1_stage_and_run,
    p2_blind_verifier,
    p3_stage_and_run,
    p4_stage_move_run,
    p5_run_script,
)
from repro.experiments.testbed import Testbed, TestbedConfig, build_testbed
from repro.keylime.verifier import AgentState, FailureKind


@dataclass(frozen=True)
class ProblemDemo:
    """Outcome of one demonstration."""

    problem: str
    claim: str
    ima_measured: bool
    verifier_alerted: bool
    details: dict


def _fresh(seed: str) -> Testbed:
    testbed = build_testbed(TestbedConfig(seed=seed))
    testbed.workload.daily(3)
    result = testbed.poll()
    assert result.ok, "testbed must start clean"
    return testbed


def _alerted_for(testbed: Testbed, path: str) -> bool:
    return any(
        failure.policy_failure is not None and failure.policy_failure.path == path
        for failure in testbed.verifier.failures_of(testbed.agent_id)
    )


def demo_p1() -> ProblemDemo:
    """P1: /tmp executions are measured by IMA but excluded by Keylime."""
    testbed = _fresh("p1")
    path, result = p1_stage_and_run(
        testbed.machine, "payload", b"attacker payload"
    )
    testbed.poll()
    return ProblemDemo(
        problem="P1",
        claim="policy-excluded directory hides measured executions",
        ima_measured=result.measured,
        verifier_alerted=_alerted_for(testbed, path),
        details={"path": path, "recorded": result.recorded_path},
    )


def demo_p2() -> ProblemDemo:
    """P2: a self-induced FP halts polling; later attacks go unexamined."""
    testbed = _fresh("p2")
    decoy = p2_blind_verifier(testbed.machine)
    first = testbed.poll()  # sees the decoy, halts
    halted = testbed.verifier.state_of(testbed.agent_id) is AgentState.FAILED

    # The *real* attack happens while nobody is polling.
    attack = "/usr/bin/backdoor"
    testbed.machine.install_file(attack, b"backdoor", executable=True)
    testbed.machine.exec_file(attack)

    # Operator restarts attestation without resolving the FP: the
    # replay halts at the decoy again, never reaching the backdoor.
    testbed.verifier.restart_attestation(testbed.agent_id)
    second = testbed.poll()
    return ProblemDemo(
        problem="P2",
        claim="halt-on-failure leaves the log suffix unexamined",
        ima_measured=True,
        verifier_alerted=_alerted_for(testbed, attack),
        details={
            "halted_after_decoy": halted,
            "decoy": decoy,
            "entries_skipped_first": first.entries_skipped,
            "entries_skipped_after_restart": second.entries_skipped,
        },
    )


def demo_p3() -> ProblemDemo:
    """P3: tmpfs executions produce no IMA entry at all."""
    testbed = _fresh("p3")
    path, result = p3_stage_and_run(
        testbed.machine, "payload", b"attacker payload"
    )
    testbed.poll()
    return ProblemDemo(
        problem="P3",
        claim="fsmagic-excluded filesystems are invisible to IMA",
        ima_measured=result.measured,
        verifier_alerted=_alerted_for(testbed, path),
        details={"path": path},
    )


def demo_p4() -> ProblemDemo:
    """P4: a file moved within a filesystem is not re-measured."""
    testbed = _fresh("p4")
    staged, destination, result = p4_stage_move_run(
        testbed.machine, "payload", b"attacker payload", "/usr/bin/payload"
    )
    testbed.poll()
    measured_paths = testbed.machine.require_booted().measured_paths()
    return ProblemDemo(
        problem="P4",
        claim="inode cache suppresses re-measurement after rename",
        ima_measured=result.measured,  # False: the move was silent
        verifier_alerted=_alerted_for(testbed, destination),
        details={
            "staged": staged,
            "destination": destination,
            "staged_in_log": staged in measured_paths,
            "destination_in_log": destination in measured_paths,
        },
    )


def demo_p5() -> ProblemDemo:
    """P5: `python script.py` measures the interpreter, not the script."""
    testbed = _fresh("p5")
    script = "/usr/bin/implant.py"
    result = p5_run_script(
        testbed.machine, script, b"import os  # implant", "/usr/bin/python3"
    )
    testbed.poll()
    measured_paths = testbed.machine.require_booted().measured_paths()
    return ProblemDemo(
        problem="P5",
        claim="interpreter invocation never measures the script file",
        ima_measured=script in measured_paths,
        verifier_alerted=_alerted_for(testbed, script),
        details={
            "script": script,
            "interpreter_in_log": "/usr/bin/python3" in measured_paths,
        },
    )


def run_all_demos() -> list[ProblemDemo]:
    """All five demonstrations."""
    return [demo_p1(), demo_p2(), demo_p3(), demo_p4(), demo_p5()]
