"""A federated fleet run: N telemetry shards, one mission-control view.

The ROADMAP's sharded multi-verifier fleet does not exist yet, but its
*observability contract* can be proven today: this scenario provisions
N completely independent verifier shards -- each with its own
:class:`~repro.obs.runtime.Telemetry` bundle, scheduler, event log,
mirror, fleet and TSDB-backed :class:`~repro.obs.health.HealthWatch` --
and advances them in lockstep slices of simulated time.  On its own
cadence, each shard serialises a metrics snapshot through the JSON wire
pair (:func:`repro.obs.federation.snapshot_to_json` /
``snapshot_from_json`` -- a real encode/decode round-trip, exactly what
a cross-process shard would ship) into one
:class:`~repro.obs.federation.FederationHub`, whose store then drives
the ``repro-cli obs top`` dashboard: fleet rollups summed across
sources, per-source staleness (shards snapshot at *different* cadences,
so the staleness column is visibly non-uniform), and per-agent
freshness rows tagged by shard.

Because each shard's scheduler only runs while its own telemetry is
active, the instrumented hot paths record into the right registry
without any shard-awareness in the instrumented code -- the same
process-global :func:`repro.obs.runtime.activate` idiom the rest of
the codebase already uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.clock import Scheduler, days, hours
from repro.common.events import EventLog
from repro.common.rng import SeededRng
from repro.distro.archive import UbuntuArchive
from repro.distro.mirror import LocalMirror
from repro.distro.workload import (
    ReleaseStreamConfig,
    SyntheticReleaseStream,
    build_base_system,
)
from repro.dynpolicy.generator import DynamicPolicyGenerator
from repro.experiments.fleet_run import DEFAULT_KERNEL, ChaosInjection
from repro.keylime.fleet import Fleet
from repro.keylime.policy import IBM_STYLE_EXCLUDES
from repro.obs import runtime as obs_runtime
from repro.obs.federation import (
    FederationHub,
    registry_snapshot,
    snapshot_to_json,
)
from repro.obs.health import HealthWatch
from repro.obs.rules import Observatory
from repro.tpm.device import TpmManufacturer


@dataclass
class ObservatoryShard:
    """One independent verifier shard and its private plumbing."""

    name: str
    telemetry: Any
    scheduler: Scheduler
    events: EventLog
    fleet: Fleet
    watch: HealthWatch
    observatory: Observatory
    stream: SyntheticReleaseStream
    #: this shard snapshots to the hub every N lockstep slices.
    snapshot_every: int
    update_reports: list = field(default_factory=list)
    snapshots_sent: int = 0


@dataclass
class FederatedObservatoryResult:
    """Outcome of one federated observatory run."""

    hub: FederationHub
    shards: list[ObservatoryShard]
    n_days: int
    poll_interval: float
    scrape_interval: float
    #: ``(sim_time, top_frame_record)`` pairs captured during the run.
    frames: list[tuple[float, dict]] = field(default_factory=list)

    @property
    def end_time(self) -> float:
        """The simulated end of the run."""
        return days(self.n_days + 1)


def _build_shard(
    index: int,
    seed: int | str,
    nodes: int,
    n_filler_packages: int,
    poll_interval: float,
    chaos: ChaosInjection | None,
) -> ObservatoryShard:
    """Provision one shard under its own (already active) telemetry."""
    name = f"shard-{index}"
    rng = SeededRng(f"{seed}-{name}")
    scheduler = Scheduler()
    events = EventLog()
    telemetry = obs_runtime.get()
    telemetry.bind_clock(scheduler.clock)

    archive = UbuntuArchive()
    base = build_base_system(
        rng.fork("base"),
        n_filler_packages=n_filler_packages,
        mean_exec_files=4.0,
        kernel_version=DEFAULT_KERNEL,
    )
    archive.seed(base)
    stream = SyntheticReleaseStream(
        archive, base, rng.fork("stream"),
        ReleaseStreamConfig(
            mean_packages_per_day=2.0,
            sd_packages_per_day=1.0,
            mean_exec_files_per_package=4.0,
            kernel_release_every_days=0,
        ),
    )
    mirror = LocalMirror(archive, events=events)
    mirror.sync(0.0)
    generator = DynamicPolicyGenerator(mirror, events=events, rng=rng.fork("gen"))
    policy, _ = generator.generate_full(list(IBM_STYLE_EXCLUDES), {DEFAULT_KERNEL})

    fault_plan = None
    retry_policy = None
    quarantine_after = 3
    if chaos is not None:
        node_ids = [f"agent-node-{i:03d}" for i in range(nodes)]
        fault_plan = chaos.build_plan(node_ids)
        retry_policy = chaos.build_retry_policy()
        quarantine_after = chaos.quarantine_after
    fleet = Fleet(
        nodes, mirror, TpmManufacturer("Infineon", rng.fork("tpm")),
        scheduler, rng.fork("fleet"), policy,
        events=events, kernel_version=DEFAULT_KERNEL,
        fault_plan=fault_plan, retry_policy=retry_policy,
        quarantine_after=quarantine_after,
    )

    observatory = Observatory(
        registry=telemetry.registry, poll_interval=poll_interval
    )
    telemetry.observatory = observatory
    watch = HealthWatch(
        tick_interval=poll_interval, observatory=observatory
    )
    fleet.start_polling(poll_interval)
    fleet.watch_health(watch, poll_interval)
    fleet.observe(observatory)

    # Staggered snapshot cadence: even shards ship every slice, odd
    # shards every other slice, so the hub's per-source staleness
    # column shows real spread instead of N identical ages.
    return ObservatoryShard(
        name=name, telemetry=telemetry, scheduler=scheduler, events=events,
        fleet=fleet, watch=watch, observatory=observatory, stream=stream,
        snapshot_every=(index % 2) + 1,
    )


def run_federated_observatory(
    seed: int | str = "observatory",
    n_shards: int = 2,
    nodes_per_shard: int = 2,
    n_days: int = 1,
    n_filler_packages: int = 12,
    poll_interval: float = 1800.0,
    scrape_interval: float = 1800.0,
    sync_hour: float = 5.0,
    chaos: ChaosInjection | None = None,
    chaos_shard: int = 0,
    on_frame: Callable[[float, FederationHub], dict | None] | None = None,
    frame_every: int = 0,
) -> FederatedObservatoryResult:
    """Run *n_shards* independent fleets federated into one hub.

    Shards advance in *scrape_interval* lockstep slices; within a
    slice each shard's scheduler runs under its *own* activated
    telemetry, then (on its cadence) serialises a registry snapshot
    through the JSON wire pair into the hub.  *chaos* applies a seeded
    fault plan to ``chaos_shard`` only, so the dashboard shows one
    noisy source next to healthy ones.  *on_frame* (with
    ``frame_every`` > 0, in slices) is called after hub rule
    evaluation; a returned dict is kept in ``result.frames``.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    previous = obs_runtime.get()
    hub = FederationHub(poll_interval=poll_interval)
    shards: list[ObservatoryShard] = []
    try:
        for index in range(n_shards):
            obs_runtime.activate(clock=None)
            shards.append(_build_shard(
                index, seed, nodes_per_shard, n_filler_packages,
                poll_interval,
                chaos if index == chaos_shard else None,
            ))

        # Daily release + update cycles, per shard.
        for shard in shards:
            obs_runtime.activate(shard.telemetry)
            for day in range(1, n_days + 1):
                shard.stream.generate_day(day - 1)
                shard.scheduler.call_at(
                    days(day) + hours(sync_hour),
                    lambda s=shard: s.update_reports.append(
                        s.fleet.run_update_cycle()
                    ),
                    label=f"{shard.name}-update-day{day}",
                )

        result = FederatedObservatoryResult(
            hub=hub, shards=shards, n_days=n_days,
            poll_interval=poll_interval, scrape_interval=scrape_interval,
        )
        end = result.end_time
        now = 0.0
        slice_index = 0
        while now < end:
            now = min(now + scrape_interval, end)
            slice_index += 1
            for shard in shards:
                obs_runtime.activate(shard.telemetry)
                shard.scheduler.run_until(now)
                if slice_index % shard.snapshot_every == 0:
                    blob = snapshot_to_json(registry_snapshot(
                        shard.telemetry.registry, shard.name, now
                    ))
                    hub.ingest_json(blob)
                    shard.snapshots_sent += 1
            hub.evaluate(now)
            if on_frame is not None and frame_every > 0:
                if slice_index % frame_every == 0:
                    frame = on_frame(now, hub)
                    if frame is not None:
                        result.frames.append((now, frame))

        for shard in shards:
            obs_runtime.activate(shard.telemetry)
            shard.watch.finalize(end)
        return result
    finally:
        if previous.enabled:
            obs_runtime.activate(previous)
        else:
            obs_runtime.deactivate()
